//! Planar-family generators, **planar by construction**.
//!
//! §III of the paper highlights planar graphs as a headline application
//! of the degeneracy protocol ("planar graphs have degeneracy 5"). These
//! generators produce certified members of the planar hierarchy without
//! needing a planarity test: each family is grown by local operations
//! that preserve a planar embedding.
//!
//! * [`random_apollonian`] — random Apollonian networks (planar 3-trees):
//!   maximal planar, degeneracy exactly 3, treewidth 3.
//! * [`random_planar_triangulation`] — maximal planar graphs on `n ≥ 3`
//!   vertices built by vertex insertion into faces plus random edge
//!   flips; `m = 3n − 6`, degeneracy ≤ 5 (tight for some instances).
//! * [`fan`] / [`random_outerplanar`] — (maximal) outerplanar graphs,
//!   degeneracy ≤ 2, treewidth ≤ 2.
//! * [`random_series_parallel`] — series-parallel graphs (treewidth ≤ 2)
//!   grown by edge subdivisions and parallel-path additions on a
//!   simple-graph invariant.
//! * [`wheel`] — the wheel `W_n` (planar, degeneracy 3 for n ≥ 3... the
//!   hub sees every rim vertex).
//! * [`circulant`] / [`complete_binary_tree`] — non-planar foils and a
//!   canonical low-degeneracy tree for the same experiments.

use super::structured;
use crate::{GraphError, LabelledGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Random Apollonian network: start from a triangle, repeatedly pick a
/// random triangular face and insert a new vertex joined to its three
/// corners. Requires `n ≥ 3`. The result is a planar 3-tree: maximal
/// planar, `m = 3n − 6`, degeneracy = treewidth = 3 (for `n ≥ 4`).
pub fn random_apollonian(n: usize, rng: &mut impl Rng) -> Result<LabelledGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::Parse(format!("apollonian network needs n ≥ 3, got {n}")));
    }
    let mut g = LabelledGraph::new(n);
    g.add_edge(1, 2)?;
    g.add_edge(2, 3)?;
    g.add_edge(1, 3)?;
    // Track subdividable faces (both sides of the initial triangle).
    let mut faces: Vec<[VertexId; 3]> = vec![[1, 2, 3], [1, 2, 3]];
    for v in 4..=n as VertexId {
        let idx = rng.gen_range(0..faces.len());
        let [a, b, c] = faces[idx];
        g.add_edge(v, a)?;
        g.add_edge(v, b)?;
        g.add_edge(v, c)?;
        faces.swap_remove(idx);
        faces.push([a, b, v]);
        faces.push([a, c, v]);
        faces.push([b, c, v]);
    }
    Ok(g)
}

/// Random maximal planar triangulation on `n ≥ 3` vertices: an
/// Apollonian growth pass followed by `flips` random diagonal flips
/// (each flip replaces an edge shared by two triangles with the other
/// diagonal when that diagonal is absent — a planarity-preserving local
/// move that walks the triangulation flip graph, de-biasing the stacked
/// 3-tree shape). `m = 3n − 6` always.
pub fn random_planar_triangulation(
    n: usize,
    flips: usize,
    rng: &mut impl Rng,
) -> Result<LabelledGraph, GraphError> {
    // Grow with explicit face tracking so flips can maintain the face
    // list (a face is an oriented triangle; we keep unoriented records
    // and resolve incidence by search).
    if n < 3 {
        return Err(GraphError::Parse(format!("triangulation needs n ≥ 3, got {n}")));
    }
    let mut g = LabelledGraph::new(n);
    g.add_edge(1, 2)?;
    g.add_edge(2, 3)?;
    g.add_edge(1, 3)?;
    let mut faces: Vec<[VertexId; 3]> = vec![[1, 2, 3], [1, 2, 3]];
    for v in 4..=n as VertexId {
        let idx = rng.gen_range(0..faces.len());
        let [a, b, c] = faces[idx];
        g.add_edge(v, a)?;
        g.add_edge(v, b)?;
        g.add_edge(v, c)?;
        faces.swap_remove(idx);
        faces.push([a, b, v]);
        faces.push([a, c, v]);
        faces.push([b, c, v]);
    }
    // Random flips. Pick an edge {u,v}; find the two faces containing
    // it; if their opposite corners x ≠ y are non-adjacent, replace
    // {u,v} by {x,y} and update both faces.
    for _ in 0..flips {
        let edges: Vec<_> = g.edges().collect();
        let e = edges[rng.gen_range(0..edges.len())];
        let (u, v) = (e.0, e.1);
        let incident: Vec<usize> = faces
            .iter()
            .enumerate()
            .filter(|(_, f)| f.contains(&u) && f.contains(&v))
            .map(|(i, _)| i)
            .collect();
        if incident.len() != 2 {
            continue; // boundary-ish duplicate face records; skip
        }
        let opposite = |f: &[VertexId; 3]| *f.iter().find(|&&w| w != u && w != v).unwrap();
        let (x, y) = (opposite(&faces[incident[0]]), opposite(&faces[incident[1]]));
        if x == y || g.has_edge(x, y) {
            continue;
        }
        g.remove_edge(u, v)?;
        g.add_edge(x, y)?;
        faces[incident[0]] = [u, x, y];
        faces[incident[1]] = [v, x, y];
    }
    Ok(g)
}

/// The fan `F_n`: a path on `n − 1` vertices plus a hub adjacent to all
/// of them. Maximal outerplanar for `n ≥ 3`; degeneracy 2.
pub fn fan(n: usize) -> Result<LabelledGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::Parse(format!("fan needs n ≥ 2, got {n}")));
    }
    let mut g = LabelledGraph::new(n);
    for v in 2..=n as VertexId {
        g.add_edge(1, v)?;
    }
    for v in 2..n as VertexId {
        g.add_edge(v, v + 1)?;
    }
    Ok(g)
}

/// Random maximal outerplanar graph: a convex polygon `1..n` (boundary
/// cycle) triangulated by a random fan-free recursive diagonal split.
/// Degeneracy 2, treewidth 2, planar.
pub fn random_outerplanar(n: usize, rng: &mut impl Rng) -> Result<LabelledGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::Parse(format!("outerplanar polygon needs n ≥ 3, got {n}")));
    }
    let mut g = structured::cycle(n)?;
    // Triangulate the polygon: recursively split the interval [i, j]
    // (vertices i..=j on the boundary) by a random apex k.
    let mut stack = vec![(1 as VertexId, n as VertexId)];
    while let Some((i, j)) = stack.pop() {
        if j - i < 2 {
            continue;
        }
        let k = rng.gen_range(i + 1..j);
        if !g.has_edge(i, k) {
            g.add_edge(i, k)?;
        }
        if !g.has_edge(k, j) {
            g.add_edge(k, j)?;
        }
        stack.push((i, k));
        stack.push((k, j));
    }
    Ok(g)
}

/// Random series-parallel graph on `n` vertices: start from a single
/// edge and repeatedly either *subdivide* an edge (series) or add a
/// vertex in *parallel* to an existing edge's endpoints. Both moves
/// preserve series-parallelness; the result has treewidth ≤ 2 and
/// degeneracy ≤ 2.
pub fn random_series_parallel(
    n: usize,
    rng: &mut impl Rng,
) -> Result<LabelledGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::Parse(format!("series-parallel needs n ≥ 2, got {n}")));
    }
    let mut g = LabelledGraph::new(n);
    g.add_edge(1, 2)?;
    for v in 3..=n as VertexId {
        let edges: Vec<_> = g.edges().collect();
        let e = edges[rng.gen_range(0..edges.len())];
        if rng.gen_bool(0.5) {
            // Series: subdivide {u,w} through v.
            g.remove_edge(e.0, e.1)?;
            g.add_edge(e.0, v)?;
            g.add_edge(v, e.1)?;
        } else {
            // Parallel: new vertex adjacent to both endpoints.
            g.add_edge(e.0, v)?;
            g.add_edge(e.1, v)?;
        }
    }
    Ok(g)
}

/// The wheel `W_n`: a cycle on vertices `2..=n` plus hub `1` adjacent to
/// every rim vertex. Planar; degeneracy 3 for `n ≥ 5`.
pub fn wheel(n: usize) -> Result<LabelledGraph, GraphError> {
    if n < 4 {
        return Err(GraphError::Parse(format!("wheel needs n ≥ 4, got {n}")));
    }
    let mut g = LabelledGraph::new(n);
    for v in 2..=n as VertexId {
        g.add_edge(1, v)?;
    }
    for v in 2..n as VertexId {
        g.add_edge(v, v + 1)?;
    }
    g.add_edge(n as VertexId, 2)?;
    Ok(g)
}

/// Circulant graph `C_n(jumps)`: vertex `i` adjacent to `i ± j (mod n)`
/// for every jump `j`. With jumps `{1, 2}` this is a (generally
/// non-planar for large n… actually squared-cycle) 4-regular foil for
/// the planar experiments; with jumps `{1}` it degenerates to a cycle.
pub fn circulant(n: usize, jumps: &[usize]) -> Result<LabelledGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::Parse("circulant needs n ≥ 1".into()));
    }
    let mut g = LabelledGraph::new(n);
    for &j in jumps {
        if j == 0 || j > n / 2 {
            return Err(GraphError::Parse(format!(
                "jump {j} out of range 1..={} for n = {n}",
                n / 2
            )));
        }
        for i in 0..n {
            let u = (i + 1) as VertexId;
            let v = ((i + j) % n + 1) as VertexId;
            if u != v {
                g.add_edge_if_absent(u, v)?;
            }
        }
    }
    Ok(g)
}

/// Complete binary tree with `levels` levels (`2^levels − 1` vertices,
/// heap-indexed: children of `i` are `2i` and `2i + 1`). Degeneracy 1.
pub fn complete_binary_tree(levels: u32) -> LabelledGraph {
    let n = (1usize << levels) - 1;
    let mut g = LabelledGraph::new(n);
    for i in 2..=n {
        g.add_edge((i / 2) as VertexId, i as VertexId).expect("tree edge");
    }
    g
}

/// Random planar *subgraph* sample: a triangulation thinned by keeping
/// each edge independently with probability `keep`. Stays planar (edge
/// deletion preserves planarity); degeneracy ≤ 5 still holds.
pub fn random_planar(
    n: usize,
    keep: f64,
    rng: &mut impl Rng,
) -> Result<LabelledGraph, GraphError> {
    let full = random_planar_triangulation(n, 2 * n, rng)?;
    let mut g = LabelledGraph::new(n);
    let mut edges: Vec<_> = full.edges().collect();
    edges.shuffle(rng);
    for e in edges {
        if rng.gen_bool(keep.clamp(0.0, 1.0)) {
            g.add_edge(e.0, e.1)?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{degeneracy_ordering, is_connected, treewidth_exact, Diameter};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn apollonian_is_planar_3_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 4, 5, 10, 50, 200] {
            let g = random_apollonian(n, &mut rng).unwrap();
            assert_eq!(g.m(), 3 * n - 6, "n = {n}");
            assert!(is_connected(&g));
            let k = degeneracy_ordering(&g).degeneracy;
            assert_eq!(k, if n == 3 { 2 } else { 3 }, "n = {n}");
        }
        assert!(random_apollonian(2, &mut rng).is_err());
    }

    #[test]
    fn apollonian_treewidth_is_three() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_apollonian(12, &mut rng).unwrap();
        assert_eq!(treewidth_exact(&g), 3);
    }

    #[test]
    fn triangulation_edge_count_and_degeneracy() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [4usize, 8, 30, 100] {
            let g = random_planar_triangulation(n, 3 * n, &mut rng).unwrap();
            assert_eq!(g.m(), 3 * n - 6, "n = {n}");
            assert!(is_connected(&g), "n = {n}");
            // Planar ⇒ degeneracy ≤ 5 (the paper's headline class).
            assert!(degeneracy_ordering(&g).degeneracy <= 5, "n = {n}");
        }
    }

    #[test]
    fn flips_change_the_graph_but_not_the_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_planar_triangulation(40, 0, &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(4);
        let b = random_planar_triangulation(40, 200, &mut rng2).unwrap();
        assert_eq!(a.m(), b.m());
        // Flips should actually perturb the edge set (same growth seed).
        assert_ne!(a, b);
    }

    #[test]
    fn fan_and_outerplanar_are_degeneracy_2() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = fan(10).unwrap();
        assert_eq!(f.m(), 9 + 8);
        assert_eq!(degeneracy_ordering(&f).degeneracy, 2);
        for n in [3usize, 5, 12, 60] {
            let g = random_outerplanar(n, &mut rng).unwrap();
            // maximal outerplanar: 2n − 3 edges
            assert_eq!(g.m(), 2 * n - 3, "n = {n}");
            assert!(degeneracy_ordering(&g).degeneracy <= 2, "n = {n}");
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn outerplanar_treewidth_at_most_2() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in [4usize, 7, 10] {
            let g = random_outerplanar(n, &mut rng).unwrap();
            assert!(treewidth_exact(&g) <= 2, "n = {n}");
        }
    }

    #[test]
    fn series_parallel_treewidth_at_most_2() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 6, 10, 14] {
            let g = random_series_parallel(n, &mut rng).unwrap();
            assert!(is_connected(&g), "n = {n}");
            assert!(treewidth_exact(&g) <= 2, "n = {n}");
            assert!(degeneracy_ordering(&g).degeneracy <= 2, "n = {n}");
        }
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(7).unwrap(); // hub + 6-cycle rim
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(1), 6);
        assert_eq!(degeneracy_ordering(&g).degeneracy, 3);
        assert_eq!(treewidth_exact(&g), 3);
        assert!(matches!(crate::algo::diameter(&g), Diameter::Finite(2)));
        assert!(wheel(3).is_err());
    }

    #[test]
    fn circulant_families() {
        // C_n({1}) is the cycle.
        let c = circulant(8, &[1]).unwrap();
        assert_eq!(c, structured::cycle(8).unwrap());
        // C_8({1,2}) is 4-regular.
        let g = circulant(8, &[1, 2]).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 16);
        // jump n/2 gives a perfect matching worth of edges (degree 1 each).
        let m = circulant(6, &[3]).unwrap();
        assert_eq!(m.m(), 3);
        // bad jumps rejected
        assert!(circulant(8, &[0]).is_err());
        assert!(circulant(8, &[5]).is_err());
    }

    #[test]
    fn binary_tree_is_a_tree() {
        let g = complete_binary_tree(5);
        assert_eq!(g.n(), 31);
        assert_eq!(g.m(), 30);
        assert!(crate::algo::is_forest(&g));
        assert!(is_connected(&g));
        assert_eq!(degeneracy_ordering(&g).degeneracy, 1);
    }

    #[test]
    fn random_planar_subgraph_stays_degenerate() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_planar(60, 0.7, &mut rng).unwrap();
        assert!(g.m() <= 3 * 60 - 6);
        assert!(degeneracy_ordering(&g).degeneracy <= 5);
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = random_apollonian(20, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = random_apollonian(20, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1, g2);
    }
}
