//! Chordal-graph recognition (Lex-BFS + perfect-elimination check) and
//! chordal-specific exact invariants.
//!
//! Chordal graphs are the "easy" end of the treewidth world: a graph is
//! chordal iff it has a *perfect elimination order* (every vertex's
//! later neighbours form a clique), in which case treewidth = ω − 1 with
//! **no** fill-in and the Theorem 5 protocol's `k` equals the largest
//! clique minus one. The k-trees of the Theorem 5 experiments and the
//! Apollonian networks of the planar experiments are all chordal, so
//! this module gives those tests an independent exact oracle:
//!
//! * [`lex_bfs`] — lexicographic BFS ordering by partition refinement
//!   (a simple `O(n·m)`-worst-case variant; the graphs it serves here
//!   are reconstruction-scale, not streaming-scale);
//! * [`is_chordal`] — Lex-BFS order reversed is a perfect elimination
//!   order iff the graph is chordal (Rose–Tarjan–Lueker);
//! * [`perfect_elimination_order`] — the witness, when chordal;
//! * [`chordal_max_clique`] — ω(G) read off the elimination order;
//! * [`chordal_treewidth`] — ω(G) − 1, exact for chordal graphs.

use crate::{LabelledGraph, VertexId};

/// Lexicographic BFS: returns a visit order (first visited first).
/// Implemented with partition refinement over a list of buckets.
pub fn lex_bfs(g: &LabelledGraph) -> Vec<VertexId> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Buckets of unvisited vertices, ordered by label priority.
    let mut buckets: Vec<Vec<VertexId>> = vec![(1..=n as VertexId).collect()];
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n + 1];
    while let Some(first) = buckets.iter_mut().find(|b| !b.is_empty()) {
        let v = first.pop().expect("nonempty bucket");
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        order.push(v);
        // Split every bucket into (neighbours of v, the rest), with the
        // neighbour part gaining priority.
        let mut next: Vec<Vec<VertexId>> = Vec::with_capacity(buckets.len() * 2);
        for bucket in buckets.drain(..) {
            let (nbrs, rest): (Vec<VertexId>, Vec<VertexId>) = bucket
                .into_iter()
                .filter(|&w| !visited[w as usize])
                .partition(|&w| g.has_edge(v, w));
            if !nbrs.is_empty() {
                next.push(nbrs);
            }
            if !rest.is_empty() {
                next.push(rest);
            }
        }
        buckets = next;
    }
    order
}

/// Verify that `order` **reversed** is a perfect elimination order:
/// for each vertex, its neighbours occurring *earlier* in `order` must
/// form a clique. (With `order` a Lex-BFS order, this succeeds iff the
/// graph is chordal.) `O(Σ deg²)` worst case.
fn reverse_is_peo(g: &LabelledGraph, order: &[VertexId]) -> bool {
    let n = g.n();
    let mut position = vec![usize::MAX; n + 1];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i;
    }
    // Standard optimization: it suffices to check, for each v, that its
    // earlier neighbourhood's *latest* member ("parent") is adjacent to
    // all other earlier neighbours.
    for &v in order.iter() {
        let earlier: Vec<VertexId> = g
            .neighbourhood(v)
            .iter()
            .copied()
            .filter(|&w| position[w as usize] < position[v as usize])
            .collect();
        let Some(&parent) = earlier.iter().max_by_key(|&&w| position[w as usize]) else {
            continue;
        };
        for &w in &earlier {
            if w != parent && !g.has_edge(parent, w) {
                return false;
            }
        }
    }
    true
}

/// Is `g` chordal (every cycle of length ≥ 4 has a chord)?
pub fn is_chordal(g: &LabelledGraph) -> bool {
    reverse_is_peo(g, &lex_bfs(g))
}

/// A perfect elimination order (first eliminated first), if one exists.
pub fn perfect_elimination_order(g: &LabelledGraph) -> Option<Vec<VertexId>> {
    let order = lex_bfs(g);
    if reverse_is_peo(g, &order) {
        let mut peo = order;
        peo.reverse();
        Some(peo)
    } else {
        None
    }
}

/// ω(G) for chordal `g`: 1 + the largest earlier-neighbourhood along
/// the Lex-BFS order. Returns `None` when `g` is not chordal.
pub fn chordal_max_clique(g: &LabelledGraph) -> Option<usize> {
    let order = lex_bfs(g);
    if !reverse_is_peo(g, &order) {
        return None;
    }
    let n = g.n();
    if n == 0 {
        return Some(0);
    }
    let mut position = vec![usize::MAX; n + 1];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i;
    }
    let best = order
        .iter()
        .map(|&v| {
            g.neighbourhood(v)
                .iter()
                .filter(|&&w| position[w as usize] < position[v as usize])
                .count()
        })
        .max()
        .unwrap_or(0);
    Some(best + 1)
}

/// Exact treewidth of a chordal graph: ω(G) − 1. `None` if not chordal.
pub fn chordal_treewidth(g: &LabelledGraph) -> Option<usize> {
    chordal_max_clique(g).map(|w| w.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{has_induced_subgraph, treewidth_exact, width_of_order};
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    /// Reference: chordal iff no induced cycle of length ≥ 4. At the
    /// test sizes, checking C4..C7 suffices.
    fn brute_chordal(g: &LabelledGraph) -> bool {
        (4..=g.n().min(7)).all(|k| !has_induced_subgraph(g, &generators::cycle(k).unwrap()))
    }

    #[test]
    fn named_families() {
        assert!(is_chordal(&generators::path(8)));
        assert!(is_chordal(&generators::complete(6)));
        assert!(is_chordal(&generators::star(7).unwrap()));
        assert!(is_chordal(&generators::complete(3))); // C3 is chordal
        assert!(!is_chordal(&generators::cycle(4).unwrap()));
        assert!(!is_chordal(&generators::cycle(7).unwrap()));
        assert!(!is_chordal(&generators::grid(3, 3)));
        assert!(!is_chordal(&generators::petersen()));
        assert!(is_chordal(&LabelledGraph::new(4)));
        assert!(is_chordal(&LabelledGraph::new(0)));
    }

    #[test]
    fn k_trees_and_apollonians_are_chordal() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 1..=4usize {
            let g = generators::k_tree(14, k, &mut rng);
            assert!(is_chordal(&g), "k = {k}");
            assert_eq!(chordal_max_clique(&g), Some(k + 1), "k = {k}");
            assert_eq!(chordal_treewidth(&g), Some(k), "k = {k}");
        }
        let ap = generators::random_apollonian(20, &mut rng).unwrap();
        assert!(is_chordal(&ap));
        assert_eq!(chordal_treewidth(&ap), Some(3));
    }

    #[test]
    fn chordal_treewidth_agrees_with_exact_dp() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=3usize {
            let g = generators::k_tree(12, k, &mut rng);
            assert_eq!(chordal_treewidth(&g), Some(treewidth_exact(&g)));
        }
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        for g in crate::enumerate::all_graphs(6) {
            assert_eq!(is_chordal(&g), brute_chordal(&g), "{g:?}");
        }
    }

    #[test]
    fn peo_witness_is_valid() {
        // A PEO eliminates with zero fill-in: simulated width equals
        // ω − 1 on chordal graphs.
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::k_tree(15, 3, &mut rng);
        let peo = perfect_elimination_order(&g).expect("chordal");
        assert_eq!(width_of_order(&g, &peo), 3);
        // Non-chordal graphs yield no witness.
        assert!(perfect_elimination_order(&generators::cycle(5).unwrap()).is_none());
    }

    #[test]
    fn lex_bfs_visits_everything_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnp(30, 0.1, &mut rng);
        let order = lex_bfs(&g);
        assert_eq!(order.len(), 30);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn disconnected_chordality() {
        let g = generators::path(4).disjoint_union(&generators::complete(4));
        assert!(is_chordal(&g));
        let h = generators::path(4).disjoint_union(&generators::cycle(5).unwrap());
        assert!(!is_chordal(&h));
    }
}
