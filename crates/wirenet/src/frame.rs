//! The wire codec: length-prefixed, versioned, typed, MAC-authenticated
//! binary framing of [`Envelope`]s.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//!  4 bytes  1    1      8       4      4     4      4      ⌈bits/8⌉     8
//! ┌────────┬────┬─────┬────────┬──────┬─────┬─────┬────────┬──────────┬─────────┐
//! │ length │ver │kind │session │round │from │ to  │len_bits│ payload  │ MAC tag │
//! └────────┴────┴─────┴────────┴──────┴─────┴─────┴────────┴──────────┴─────────┘
//!          └──────────────── MAC-covered (SipHash-2-4, 64-bit) ────────────────┘
//! ```
//!
//! `length` counts every byte after itself (the *body*). The session id
//! is the multiplexing key: one connection carries frames of a whole
//! fleet, demultiplexed by the receiver. The [`FrameKind`] byte types
//! the frame: [`Data`](FrameKind::Data) carries session envelopes;
//! [`Hello`](FrameKind::Hello), [`Announce`](FrameKind::Announce),
//! [`Partial`](FrameKind::Partial) and [`Verdict`](FrameKind::Verdict)
//! carry the per-connection key handshake and the sharded-referee
//! service traffic (see [`crate::shard`]) — all MAC'd identically. The
//! payload is the [`Message`]'s canonical byte serialization plus its
//! exact bit length, so `decode ∘ encode` is the identity on envelopes
//! (pinned by proptests).
//!
//! Decoding is *streaming*: [`decode_frame`] consumes a prefix of a byte
//! buffer and returns [`None`] while the frame is still incomplete.
//! Every malformed input — truncation that can never complete, version
//! or length lies, MAC mismatch, non-canonical payload padding — returns
//! a [`WireError`]; nothing panics on wire bytes. The MAC is verified
//! *before* any body field is interpreted (authenticate, then parse).

use crate::auth::AuthKey;
use referee_protocol::{DecodeError, Message};
use referee_simnet::{Envelope, SessionId};

/// Wire protocol version carried in every frame (bumped to 2 when the
/// frame-kind byte was added for the sharded referee service).
pub const WIRE_VERSION: u8 = 2;

/// What a frame carries. The kind byte sits inside the MAC-covered
/// region, so a frame's type can no more be forged than its contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A session envelope (the only kind the echo mailbox serves).
    Data = 0,
    /// Server → client at accept time: `from` is the connection id both
    /// ends feed to [`AuthKey::derive`] for the per-connection key.
    Hello = 1,
    /// Client → sharded server: declares a session and its network size
    /// (`n` in the payload) before any data, so frames can be routed to
    /// shard workers by node range.
    Announce = 2,
    /// Shard → shard: a serialized
    /// [`PartialState`](referee_protocol::shard::PartialState); `from`
    /// names the emitting shard.
    Partial = 3,
    /// Sharded server → client: the referee's verdict for a session
    /// (ok + message-vector digest, or a rejection class).
    Verdict = 4,
    /// Coordinator → shard host at connect time: registers the
    /// connection as one shard of a placement (mode, shard index, shard
    /// count, registration generation in the payload). The only frame a
    /// shard-host link carries under the registration key; everything
    /// after runs under the per-shard generation key (see
    /// `wirenet::placement`).
    Register = 5,
    /// Coordinator → shard host: a session's verdict shipped — drop its
    /// shard state (`from` = coordinator connection id).
    Finish = 6,
    /// Coordinator → shard host: a client connection died — drop all of
    /// its sessions (`from` = coordinator connection id).
    Retire = 7,
    /// Shard host → coordinator: a serialized
    /// [`TraceSnapshot`](referee_protocol::trace::TraceSnapshot) segment
    /// (`from` names the emitting shard) for cross-process timeline
    /// stitching. Shipped piggy-backed on session teardown, never on the
    /// hot path.
    Trace = 8,
    /// Server → client: a serialized
    /// [`EvidenceBundle`](referee_protocol::evidence::EvidenceBundle)
    /// proving a protocol violation (`session` names the session it was
    /// cut from, `from` the accused principal — or 0 when the violation
    /// is provable but not attributable). Shipped coordinator-ward at
    /// the point the offending frame was rejected, so the operator holds
    /// third-party-verifiable evidence before the session even fails.
    Evidence = 9,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Announce),
            3 => Some(FrameKind::Partial),
            4 => Some(FrameKind::Verdict),
            5 => Some(FrameKind::Register),
            6 => Some(FrameKind::Finish),
            7 => Some(FrameKind::Retire),
            8 => Some(FrameKind::Trace),
            9 => Some(FrameKind::Evidence),
            _ => None,
        }
    }
}

/// Bytes of header inside the body: version, kind, session, round, from,
/// to, payload bit length.
pub const HEADER_BYTES: usize = 1 + 1 + 8 + 4 + 4 + 4 + 4;

/// Bytes of MAC tag at the end of the body.
pub const TAG_BYTES: usize = 8;

/// Hard cap on a frame body — frugal protocols ship tiny messages, so
/// anything near this is an attack or a desynchronized stream, not data.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Why a frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The kind byte names no known [`FrameKind`].
    BadKind(u8),
    /// The length prefix is out of bounds or disagrees with the
    /// payload-size field.
    BadLength(String),
    /// MAC verification failed: the frame was corrupted or forged.
    BadMac,
    /// The MAC verified but the payload serialization is not canonical
    /// (a peer bug, not line noise).
    BadPayload(DecodeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadLength(s) => write!(f, "bad frame length: {s}"),
            WireError::BadMac => write!(f, "frame failed MAC verification"),
            WireError::BadPayload(e) => write!(f, "authenticated frame has bad payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for DecodeError {
    /// Surface wire-layer rejections through the protocol stack's
    /// existing rejection paths.
    fn from(e: WireError) -> DecodeError {
        match e {
            WireError::BadMac => {
                DecodeError::Inconsistent("wire frame failed MAC verification".into())
            }
            WireError::BadPayload(inner) => inner,
            other => DecodeError::Invalid(other.to_string()),
        }
    }
}

/// One successfully decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Bytes consumed from the front of the buffer (prefix + body).
    pub consumed: usize,
    /// What the frame carries.
    pub kind: FrameKind,
    /// The decoded envelope (its `session` field is the wire session id).
    pub envelope: Envelope,
}

/// Serialize `env` into one authenticated [`FrameKind::Data`] frame.
///
/// Panics if the payload exceeds [`MAX_BODY_BYTES`] — frugal protocols
/// never get near it, so an oversized payload is a caller bug.
pub fn encode_frame(key: &AuthKey, env: &Envelope) -> Vec<u8> {
    encode_wire_frame(key, FrameKind::Data, env)
}

/// Serialize `env` into one authenticated wire frame of the given kind.
/// Control kinds reuse the envelope container with kind-specific field
/// meanings (see [`FrameKind`]).
pub fn encode_wire_frame(key: &AuthKey, kind: FrameKind, env: &Envelope) -> Vec<u8> {
    let payload = env.payload.as_bytes();
    let body_len = HEADER_BYTES + payload.len() + TAG_BYTES;
    let mut out = Vec::with_capacity(4 + body_len);
    encode_frame_into(key, kind, env, &mut out);
    out
}

/// Serialize `env` into one authenticated wire frame *appended* to
/// `out`, returning the number of bytes written. The MAC is computed in
/// place over the appended span, so a reused buffer makes the whole
/// encode allocation-free — this is the batched write path's hot
/// function: frames coalesce into one per-connection buffer and flush
/// with one `write(2)` per sweep.
///
/// Panics if the payload exceeds [`MAX_BODY_BYTES`], like
/// [`encode_wire_frame`].
pub fn encode_frame_into(
    key: &AuthKey,
    kind: FrameKind,
    env: &Envelope,
    out: &mut Vec<u8>,
) -> usize {
    let payload = env.payload.as_bytes();
    let body_len = HEADER_BYTES + payload.len() + TAG_BYTES;
    assert!(body_len <= MAX_BODY_BYTES, "payload of {} bytes exceeds frame cap", payload.len());
    let start = out.len();
    out.reserve(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.push(WIRE_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&env.session.0.to_be_bytes());
    out.extend_from_slice(&env.round.to_be_bytes());
    out.extend_from_slice(&env.from.to_be_bytes());
    out.extend_from_slice(&env.to.to_be_bytes());
    out.extend_from_slice(&(env.payload.len_bits() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    let tag = key.tag(&out[start + 4..]);
    out.extend_from_slice(&tag.to_be_bytes());
    out.len() - start
}

fn be_u32(bytes: &[u8]) -> u32 {
    u32::from_be_bytes(bytes.try_into().expect("4 bytes"))
}

/// Authenticate the frame at the front of `buf` without materializing
/// its [`Envelope`]: the echo fast path. Runs exactly the checks of
/// [`decode_frame`] — length bounds, MAC, version, kind, length
/// cross-check, payload canonicality — and returns only the frame's
/// kind and total wire length (prefix + body). Accept/reject behavior
/// is identical to [`decode_frame`] on every input (pinned by tests);
/// skipped is only the envelope construction (two heap allocations and
/// a field parse per frame), which matters to a server echoing
/// hundreds of thousands of frames per second that never looks inside
/// them.
pub fn verify_frame(
    key: &AuthKey,
    buf: &[u8],
) -> Result<Option<(FrameKind, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = be_u32(&buf[..4]) as usize;
    if !(HEADER_BYTES + TAG_BYTES..=MAX_BODY_BYTES).contains(&body_len) {
        return Err(WireError::BadLength(format!("body of {body_len} bytes out of bounds")));
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    let body = &buf[4..4 + body_len];

    // Authenticate before interpreting any field.
    let tag = u64::from_be_bytes(body[body_len - TAG_BYTES..].try_into().expect("8 bytes"));
    if !key.verify(&body[..body_len - TAG_BYTES], tag) {
        return Err(WireError::BadMac);
    }

    if body[0] != WIRE_VERSION {
        return Err(WireError::BadVersion(body[0]));
    }
    let kind = FrameKind::from_byte(body[1]).ok_or(WireError::BadKind(body[1]))?;
    let len_bits = be_u32(&body[22..26]) as usize;
    let payload_bytes = len_bits.div_ceil(8);
    if HEADER_BYTES + payload_bytes + TAG_BYTES != body_len {
        return Err(WireError::BadLength(format!(
            "length field {body_len} disagrees with {len_bits}-bit payload"
        )));
    }
    // The canonicality rule `Message::from_bits` enforces, applied in
    // place: padding bits of a ragged final byte must be zero.
    if !len_bits.is_multiple_of(8) {
        let pad_mask = 0xffu8 >> (len_bits % 8);
        if body[HEADER_BYTES + payload_bytes - 1] & pad_mask != 0 {
            return Err(WireError::BadPayload(DecodeError::Invalid(
                "non-canonical payload: padding bits set".into(),
            )));
        }
    }
    Ok(Some((kind, 4 + body_len)))
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — the buffer holds an incomplete (but so far plausible)
///   frame; read more bytes and retry.
/// * `Ok(Some(frame))` — a frame was authenticated and decoded;
///   `frame.consumed` bytes of `buf` are spent.
/// * `Err(_)` — the stream is bad. There is no way to resynchronize a
///   corrupted length-prefixed stream, so callers must drop the
///   connection.
pub fn decode_frame(key: &AuthKey, buf: &[u8]) -> Result<Option<DecodedFrame>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = be_u32(&buf[..4]) as usize;
    if !(HEADER_BYTES + TAG_BYTES..=MAX_BODY_BYTES).contains(&body_len) {
        return Err(WireError::BadLength(format!("body of {body_len} bytes out of bounds")));
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    let body = &buf[4..4 + body_len];

    // Authenticate before interpreting any field.
    let tag = u64::from_be_bytes(body[body_len - TAG_BYTES..].try_into().expect("8 bytes"));
    if !key.verify(&body[..body_len - TAG_BYTES], tag) {
        return Err(WireError::BadMac);
    }

    if body[0] != WIRE_VERSION {
        return Err(WireError::BadVersion(body[0]));
    }
    let kind = FrameKind::from_byte(body[1]).ok_or(WireError::BadKind(body[1]))?;
    let session = SessionId(u64::from_be_bytes(body[2..10].try_into().expect("8 bytes")));
    let round = be_u32(&body[10..14]);
    let from = be_u32(&body[14..18]);
    let to = be_u32(&body[18..22]);
    let len_bits = be_u32(&body[22..26]) as usize;

    let payload_bytes = len_bits.div_ceil(8);
    if HEADER_BYTES + payload_bytes + TAG_BYTES != body_len {
        return Err(WireError::BadLength(format!(
            "length field {body_len} disagrees with {len_bits}-bit payload"
        )));
    }
    let payload =
        Message::from_bits(body[HEADER_BYTES..HEADER_BYTES + payload_bytes].to_vec(), len_bits)
            .map_err(WireError::BadPayload)?;
    Ok(Some(DecodedFrame {
        consumed: 4 + body_len,
        kind,
        envelope: Envelope { session, round, from, to, payload },
    }))
}

/// Decode *every* complete frame at the front of `buf` in one pass —
/// the batched read path: drain the socket once, then parse everything
/// that arrived before returning to the poller.
///
/// Returns the decoded frames and the total bytes consumed. A torn
/// final frame (or torn length prefix) is *not* consumed — its bytes
/// stay in the buffer for the next read to complete. The first
/// malformed frame aborts with its error; frames decoded before it are
/// lost, which is fine because every error here is terminal for the
/// connection (a corrupted length-prefixed stream cannot be
/// resynchronized).
pub fn decode_frames(
    key: &AuthKey,
    buf: &[u8],
) -> Result<(Vec<DecodedFrame>, usize), WireError> {
    let mut frames = Vec::new();
    let mut consumed = 0;
    while let Some(frame) = decode_frame(key, &buf[consumed..])? {
        consumed += frame.consumed;
        frames.push(frame);
    }
    Ok((frames, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_protocol::BitWriter;

    fn key() -> AuthKey {
        AuthKey::from_seed(42)
    }

    fn env(session: u64, round: u32, from: u32, to: u32, value: u64, width: u32) -> Envelope {
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        Envelope {
            session: SessionId(session),
            round,
            from,
            to,
            payload: Message::from_writer(w),
        }
    }

    #[test]
    fn round_trip() {
        let e = env(7, 3, 12, 0, 0xdead, 16);
        let bytes = encode_frame(&key(), &e);
        let d = decode_frame(&key(), &bytes).unwrap().unwrap();
        assert_eq!(d.consumed, bytes.len());
        assert_eq!(d.kind, FrameKind::Data);
        assert_eq!(d.envelope, e);
    }

    #[test]
    fn encode_into_appends_identically_to_encode() {
        // The in-place encoder is byte-for-byte the allocating one, at
        // any starting offset (the MAC span must track the append
        // point, not the buffer start).
        let a = env(7, 3, 12, 0, 0xdead, 16);
        let b = env(8, 1, 2, 3, 0b101, 3);
        let mut batch = Vec::new();
        let wrote_a = encode_frame_into(&key(), FrameKind::Data, &a, &mut batch);
        let wrote_b = encode_frame_into(&key(), FrameKind::Verdict, &b, &mut batch);
        let lone_a = encode_wire_frame(&key(), FrameKind::Data, &a);
        let lone_b = encode_wire_frame(&key(), FrameKind::Verdict, &b);
        assert_eq!(wrote_a, lone_a.len());
        assert_eq!(wrote_b, lone_b.len());
        assert_eq!(&batch[..wrote_a], &lone_a[..]);
        assert_eq!(&batch[wrote_a..], &lone_b[..]);
    }

    #[test]
    fn batch_decode_drains_complete_frames_and_keeps_torn_tail() {
        let envs: Vec<Envelope> = (0..5).map(|i| env(i, 1, 2, 0, i * 7 + 1, 12)).collect();
        let mut stream = Vec::new();
        for e in &envs {
            encode_frame_into(&key(), FrameKind::Data, e, &mut stream);
        }
        let tail_start = stream.len();
        // Append a torn final frame: all but its last byte.
        let torn = encode_wire_frame(&key(), FrameKind::Data, &env(99, 1, 1, 0, 3, 2));
        stream.extend_from_slice(&torn[..torn.len() - 1]);
        let (frames, consumed) = decode_frames(&key(), &stream).unwrap();
        assert_eq!(consumed, tail_start, "torn tail must not be consumed");
        assert_eq!(frames.len(), envs.len());
        for (f, e) in frames.iter().zip(&envs) {
            assert_eq!(&f.envelope, e);
        }
        // Completing the tail yields exactly the missing frame.
        let mut rest = stream[consumed..].to_vec();
        rest.push(torn[torn.len() - 1]);
        let (frames, consumed) = decode_frames(&key(), &rest).unwrap();
        assert_eq!(consumed, rest.len());
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].envelope.session.0, 99);
    }

    #[test]
    fn batch_decode_surfaces_mid_stream_corruption() {
        let mut stream = encode_frame(&key(), &env(1, 1, 1, 0, 1, 1));
        let mut bad = encode_frame(&key(), &env(2, 1, 1, 0, 1, 1));
        *bad.last_mut().unwrap() ^= 1; // corrupt the second frame's MAC
        stream.extend_from_slice(&bad);
        assert_eq!(decode_frames(&key(), &stream), Err(WireError::BadMac));
    }

    #[test]
    fn every_kind_round_trips() {
        let e = env(1, 2, 3, 4, 0b1011, 4);
        for kind in [
            FrameKind::Data,
            FrameKind::Hello,
            FrameKind::Announce,
            FrameKind::Partial,
            FrameKind::Verdict,
            FrameKind::Register,
            FrameKind::Finish,
            FrameKind::Retire,
            FrameKind::Trace,
            FrameKind::Evidence,
        ] {
            let bytes = encode_wire_frame(&key(), kind, &e);
            let d = decode_frame(&key(), &bytes).unwrap().unwrap();
            assert_eq!(d.kind, kind);
            assert_eq!(d.envelope, e);
        }
    }

    #[test]
    fn unknown_kind_rejected_after_authentication() {
        // Forge a validly-MAC'd frame with kind byte 10: the *decoder*
        // must reject it (a buggy peer, not line noise — the MAC holds).
        let mut bytes = encode_wire_frame(&key(), FrameKind::Data, &env(1, 1, 1, 0, 1, 1));
        bytes[5] = 10; // kind byte: after 4-byte length + 1-byte version
        let body_end = bytes.len() - TAG_BYTES;
        let tag = key().tag(&bytes[4..body_end]);
        bytes.truncate(body_end);
        bytes.extend_from_slice(&tag.to_be_bytes());
        assert_eq!(decode_frame(&key(), &bytes), Err(WireError::BadKind(10)));
    }

    #[test]
    fn empty_payload_round_trip() {
        let e = Envelope {
            session: SessionId(u64::MAX),
            round: u32::MAX,
            from: 0,
            to: 9,
            payload: Message::empty(),
        };
        let bytes = encode_frame(&key(), &e);
        assert_eq!(bytes.len(), 4 + HEADER_BYTES + TAG_BYTES);
        assert_eq!(decode_frame(&key(), &bytes).unwrap().unwrap().envelope, e);
    }

    #[test]
    fn streaming_prefixes_are_incomplete_not_errors() {
        let bytes = encode_frame(&key(), &env(1, 1, 1, 0, 0b101, 3));
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&key(), &bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let a = env(1, 1, 1, 0, 5, 4);
        let b = env(2, 9, 3, 4, 6, 4);
        let mut stream = encode_frame(&key(), &a);
        let first_len = stream.len();
        stream.extend_from_slice(&encode_frame(&key(), &b));
        let d1 = decode_frame(&key(), &stream).unwrap().unwrap();
        assert_eq!(d1.consumed, first_len);
        assert_eq!(d1.envelope, a);
        let d2 = decode_frame(&key(), &stream[d1.consumed..]).unwrap().unwrap();
        assert_eq!(d2.envelope, b);
    }

    #[test]
    fn every_body_bit_flip_is_rejected() {
        let bytes = encode_frame(&key(), &env(3, 2, 5, 0, 0xabc, 12));
        for bit in (4 * 8)..(bytes.len() * 8) {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (7 - bit % 8);
            match decode_frame(&key(), &bad) {
                Err(WireError::BadMac) => {}
                other => panic!("body bit {bit}: expected BadMac, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let bytes = encode_frame(&key(), &env(3, 2, 5, 0, 0xabc, 12));
        assert_eq!(decode_frame(&AuthKey::from_seed(43), &bytes), Err(WireError::BadMac));
    }

    #[test]
    fn length_lies_are_rejected_or_stall() {
        let bytes = encode_frame(&key(), &env(1, 1, 2, 0, 1, 1));
        // Too-small and too-large length prefixes are structural errors.
        for lie in [0u32, 1, (HEADER_BYTES + TAG_BYTES - 1) as u32, (MAX_BODY_BYTES + 1) as u32]
        {
            let mut bad = bytes.clone();
            bad[..4].copy_from_slice(&lie.to_be_bytes());
            assert!(
                matches!(decode_frame(&key(), &bad), Err(WireError::BadLength(_))),
                "lie {lie}"
            );
        }
        // A plausible but wrong length either stalls (waiting for bytes
        // that never come) or fails the MAC over the wrong span — never
        // yields a frame.
        for delta in [-8i64, -1, 1, 8] {
            let truth = (bytes.len() - 4) as i64;
            let lie = (truth + delta) as u32;
            let mut bad = bytes.clone();
            bad[..4].copy_from_slice(&lie.to_be_bytes());
            match decode_frame(&key(), &bad) {
                Ok(None) | Err(_) => {}
                Ok(Some(f)) => panic!("length lie {delta:+} produced a frame: {f:?}"),
            }
        }
    }

    #[test]
    fn noncanonical_padding_is_rejected_after_authentication() {
        // Build a frame whose padding bit is set, with a *valid* MAC —
        // i.e. a buggy peer, not line noise. 3-bit payload, pad bit set.
        let mut body = vec![WIRE_VERSION, FrameKind::Data as u8];
        body.extend_from_slice(&1u64.to_be_bytes());
        body.extend_from_slice(&1u32.to_be_bytes());
        body.extend_from_slice(&1u32.to_be_bytes());
        body.extend_from_slice(&0u32.to_be_bytes());
        body.extend_from_slice(&3u32.to_be_bytes());
        body.push(0b1010_0001); // 3 payload bits + a set padding bit
        let tag = key().tag(&body);
        body.extend_from_slice(&tag.to_be_bytes());
        let mut frame = ((body.len() as u32).to_be_bytes()).to_vec();
        frame.extend_from_slice(&body);
        assert!(matches!(decode_frame(&key(), &frame), Err(WireError::BadPayload(_))));
    }

    /// `verify_frame` must agree with `decode_frame` on every input:
    /// same acceptance (kind + consumed), same rejection class.
    fn assert_verify_matches_decode(bytes: &[u8]) {
        let decoded = decode_frame(&key(), bytes);
        let verified = verify_frame(&key(), bytes);
        match (decoded, verified) {
            (Ok(None), Ok(None)) => {}
            (Ok(Some(d)), Ok(Some((kind, consumed)))) => {
                assert_eq!((d.kind, d.consumed), (kind, consumed));
            }
            (Err(de), Err(ve)) => assert_eq!(de, ve),
            (d, v) => panic!("decode_frame {d:?} but verify_frame {v:?}"),
        }
    }

    #[test]
    fn verify_matches_decode_on_valid_frames_prefixes_and_bit_flips() {
        let bytes = encode_frame(&key(), &env(3, 2, 5, 0, 0xabc, 12));
        for cut in 0..=bytes.len() {
            assert_verify_matches_decode(&bytes[..cut]);
        }
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (7 - bit % 8);
            assert_verify_matches_decode(&bad);
        }
    }

    #[test]
    fn verify_matches_decode_on_authenticated_forgeries() {
        // Line noise always dies at the MAC; the interesting cases are
        // *validly MAC'd* malformed frames (a buggy or hostile peer
        // holding the key). Re-tag after each mutation so both decoders
        // reach their structural checks.
        let base = encode_wire_frame(&key(), FrameKind::Data, &env(1, 1, 1, 0, 0b101, 3));
        let retag = |mut bytes: Vec<u8>| {
            let body_end = bytes.len() - TAG_BYTES;
            let tag = key().tag(&bytes[4..body_end]);
            bytes.truncate(body_end);
            bytes.extend_from_slice(&tag.to_be_bytes());
            bytes
        };
        for (at, val) in [
            (4usize, 9u8),     // bad version
            (5, 10),           // unknown kind
            (26, 0xff),        // len_bits lie (disagrees with body length)
            (30, 0b1010_0001), // padding bit set (non-canonical payload)
        ] {
            let mut bad = base.clone();
            bad[at] = val;
            assert_verify_matches_decode(&retag(bad));
        }
    }

    #[test]
    fn wire_errors_map_into_decode_errors() {
        assert!(matches!(DecodeError::from(WireError::BadMac), DecodeError::Inconsistent(_)));
        assert!(matches!(DecodeError::from(WireError::BadVersion(9)), DecodeError::Invalid(_)));
        assert_eq!(
            DecodeError::from(WireError::BadPayload(DecodeError::Truncated)),
            DecodeError::Truncated
        );
    }
}
