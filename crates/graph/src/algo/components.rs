//! Connected components and spanning forests.

use crate::csr::Csr;
use crate::dsu::Dsu;
use crate::{Edge, LabelledGraph, VertexId};

/// Component label (0-based, contiguous) per vertex: `labels[i]` is the
/// component of vertex `i + 1`. Labels are assigned in order of first
/// discovery by ascending vertex ID.
pub fn components(g: &LabelledGraph) -> Vec<u32> {
    let csr = Csr::from_graph(g);
    let n = csr.n();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = next;
        stack.push(s as u32);
        while let Some(u) = stack.pop() {
            for &v in csr.neighbours(u as usize) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &LabelledGraph) -> usize {
    components(g).iter().max().map_or(0, |&m| m as usize + 1)
}

/// The connectivity predicate of the paper's main open question (§IV).
pub fn is_connected(g: &LabelledGraph) -> bool {
    g.n() <= 1 || component_count(g) == 1
}

/// A spanning forest as a canonical edge list (one tree per component).
///
/// Uses union–find over the edge stream, so the result is exactly the
/// edge set a referee would keep when simulating distributed component
/// merging (see the multi-round protocol).
pub fn spanning_forest(g: &LabelledGraph) -> Vec<Edge> {
    let mut dsu = Dsu::new(g.n());
    let mut forest = Vec::new();
    for e in g.edges() {
        if dsu.union((e.0 - 1) as usize, (e.1 - 1) as usize) {
            forest.push(e);
        }
    }
    forest
}

/// Vertices of the component containing `v` (ascending IDs).
pub fn component_of(g: &LabelledGraph, v: VertexId) -> Vec<VertexId> {
    let labels = components(g);
    let target = labels[(v - 1) as usize];
    (1..=g.n() as VertexId).filter(|&u| labels[(u - 1) as usize] == target).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_path() {
        let g = LabelledGraph::from_edges(4, [(1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(component_count(&g), 1);
        assert_eq!(spanning_forest(&g).len(), 3);
    }

    #[test]
    fn two_components() {
        let g = LabelledGraph::from_edges(5, [(1, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
        let labels = components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        // forest breaks the 3-cycle: 5 vertices, 2 components → 3 tree edges
        assert_eq!(spanning_forest(&g).len(), 3);
        assert_eq!(component_of(&g, 4), vec![3, 4, 5]);
    }

    #[test]
    fn isolated_vertices() {
        let g = LabelledGraph::new(3);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
        assert!(spanning_forest(&g).is_empty());
    }

    #[test]
    fn edge_cases() {
        assert!(is_connected(&LabelledGraph::new(0)));
        assert!(is_connected(&LabelledGraph::new(1)));
    }

    #[test]
    fn forest_spans_each_component() {
        let g = LabelledGraph::from_edges(6, [(1, 2), (2, 3), (1, 3), (4, 5)]).unwrap();
        let f = spanning_forest(&g);
        // n - #components = 6 - 3 = 3
        assert_eq!(f.len(), 3);
        let fg = LabelledGraph::from_edges(6, f.iter().map(|e| (e.0, e.1))).unwrap();
        assert_eq!(component_count(&fg), component_count(&g));
    }
}
