//! `PlacementPolicy` invariants, pinned for arbitrary `n`, shard
//! counts, host sets and loss sets: every node ID maps to exactly one
//! host, the shard ranges cover `1..=n` with no overlap, and remapping
//! after any host loss preserves coverage on the survivors.

use proptest::prelude::*;
use referee_wirenet::placement::{HostId, PlacementPolicy};
use std::collections::BTreeSet;

/// Assert the three coverage invariants of one policy for one `n`.
fn assert_covers(p: &PlacementPolicy, n: usize, allowed: Option<&BTreeSet<HostId>>) {
    let k = p.shards();
    // 1. Ranges cover 1..=n with no overlap: count each node's owners.
    let mut owners = vec![0usize; n];
    for (i, range, host) in p.assignments(n) {
        assert_eq!(host, p.host_of_shard(i));
        if let Some(allowed) = allowed {
            assert!(allowed.contains(&host), "shard {i} placed on dead host {host}");
        }
        for v in range.lo..=range.hi {
            owners[(v - 1) as usize] += 1;
        }
    }
    assert!(owners.iter().all(|&c| c == 1), "n={n} k={k}: {owners:?}");
    // 2. Every node ID maps to exactly one host, the owner of its
    //    shard's range.
    for v in 1..=n as u32 {
        let host = p.host_of(n, v);
        let (_, _, by_range) = p
            .assignments(n)
            .into_iter()
            .find(|(_, r, _)| r.contains(v))
            .expect("some range contains v");
        assert_eq!(host, by_range, "n={n} v={v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Balanced placements cover for arbitrary n, k and host sets, and
    /// survive arbitrary loss sets (or report total loss as `None`).
    #[test]
    fn balanced_placement_covers_and_remaps(
        n in 0usize..120,
        k in 1usize..=12,
        host_count in 1usize..=6,
        host_base in 0u32..1000,
        loss_mask in any::<u8>(),
    ) {
        let hosts: Vec<HostId> = (0..host_count as u32).map(|i| host_base + i * 7).collect();
        let p = PlacementPolicy::balanced(k, &hosts);
        prop_assert_eq!(p.shards(), k);
        assert_covers(&p, n, None);

        let lost: BTreeSet<HostId> = hosts
            .iter()
            .enumerate()
            .filter(|(i, _)| loss_mask >> (i % 8) & 1 == 1)
            .map(|(_, h)| *h)
            .collect();
        let used: BTreeSet<HostId> = p.hosts().into_iter().collect();
        match p.remap(&lost) {
            None => prop_assert!(
                used.iter().all(|h| lost.contains(h)),
                "remap may only fail when every used host died"
            ),
            Some(q) => {
                prop_assert_eq!(q.shards(), k);
                let survivors: BTreeSet<HostId> =
                    used.difference(&lost).copied().collect();
                assert_covers(&q, n, Some(&survivors));
            }
        }
    }

    /// Static maps get the same guarantees — coverage is a property of
    /// the partition arithmetic, not of how shards were assigned.
    #[test]
    fn static_map_covers_and_remaps(
        n in 0usize..90,
        map in proptest::collection::vec(0u32..5, 1..10),
        loss_mask in any::<u8>(),
    ) {
        let p = PlacementPolicy::from_map(map.clone());
        assert_covers(&p, n, None);
        let lost: BTreeSet<HostId> =
            (0u32..5).filter(|h| loss_mask >> h & 1 == 1).collect();
        if let Some(q) = p.remap(&lost) {
            let survivors: BTreeSet<HostId> = p
                .hosts()
                .into_iter()
                .filter(|h| !lost.contains(h))
                .collect();
            assert_covers(&q, n, Some(&survivors));
        }
    }

    /// Losing nothing is the identity; losing everything is `None`.
    #[test]
    fn remap_edge_cases(map in proptest::collection::vec(0u32..4, 1..8)) {
        let p = PlacementPolicy::from_map(map);
        prop_assert_eq!(p.remap(&BTreeSet::new()).unwrap(), p.clone());
        let all: BTreeSet<HostId> = p.hosts().into_iter().collect();
        prop_assert!(p.remap(&all).is_none());
    }
}
