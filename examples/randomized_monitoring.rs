//! Randomized one-round monitoring: what **public coins** buy on the
//! paper's open questions (§IV).
//!
//! The paper conjectures no *deterministic* frugal one-round protocol
//! decides connectivity, and asks the same about bipartiteness. This
//! example runs the public-coin suite on a small datacenter-style
//! topology and its failure modes: connectivity (E17), bipartiteness via
//! the double cover (E18), and k-edge-connectivity by forest peeling
//! (E19) — all in ONE round of polylog-bit messages.
//!
//! Run with: `cargo run --release --example randomized_monitoring`

use referee_one_round::prelude::*;

fn report(label: &str, g: &LabelledGraph, seed: u64) {
    let n = g.n();
    let connected = sketch_connectivity(g, seed);
    let bipartite = sketch_bipartiteness(g, seed);
    let lambda3 = sketch_edge_connectivity(g, seed, 3);
    println!(
        "{label:<28} n={n:<4} m={:<5} connected={connected:<5} bipartite={bipartite:<5} min(λ,3)={lambda3}",
        g.m()
    );
    // Cross-check against centralized ground truth.
    assert_eq!(connected, algo::is_connected(g), "{label}: connectivity");
    assert_eq!(bipartite, algo::is_bipartite(g), "{label}: bipartiteness");
    assert_eq!(lambda3, algo::edge_connectivity(g).min(3), "{label}: λ");
}

fn main() {
    let seed = 2011; // the public coins — all nodes and the referee share it

    println!("one-round public-coin monitoring (seed = {seed})\n");

    // A healthy fat-tree-ish fabric: 4-dimensional hypercube (λ = 4).
    let fabric = generators::hypercube(4);
    report("hypercube fabric", &fabric, seed);

    // Degrade it: cut links until a bottleneck appears.
    let mut degraded = fabric.clone();
    degraded.remove_edge(1, 2).unwrap();
    degraded.remove_edge(1, 3).unwrap();
    degraded.remove_edge(1, 5).unwrap();
    report("… 3 links down at node 1", &degraded, seed);

    // Sever the last link of node 1: the fabric splits.
    degraded.remove_edge(1, 9).unwrap();
    report("… node 1 fully cut off", &degraded, seed);

    // A leaf-spine bipartite fabric stays 2-colourable…
    let leaf_spine = generators::complete_bipartite(4, 12);
    report("leaf-spine (K(4,12))", &leaf_spine, seed);

    // …until someone patches a crosslink between two spines.
    let mut patched = leaf_spine.clone();
    patched.add_edge(1, 2).unwrap();
    report("… + spine-to-spine patch", &patched, seed);

    // Message-size accounting: the sketches are polylog-bit, so they
    // cross below the Θ(n log n) adjacency upload as fabrics grow.
    println!("\nper-node message sizes (bits) vs the naive adjacency upload:");
    println!(
        "  {:>9} {:>12} {:>13} {:>13} {:>15}",
        "n", "connectivity", "bipartiteness", "3-edge-conn", "naive adjacency"
    );
    for exp in [12u32, 16, 20] {
        let n = 1usize << exp;
        println!(
            "  {:>9} {:>12} {:>13} {:>13} {:>15}",
            n,
            SketchConnectivityProtocol::message_bits(n),
            SketchBipartitenessProtocol::message_bits(n),
            SketchKConnectivityProtocol::new(seed, 3).message_bits(n),
            n * bits_for(n) as usize
        );
    }
    println!(
        "\nthe paper's §IV conjecture is about *deterministic* protocols —\n\
         with shared randomness, one round and polylog bits settle all three."
    );
}
