//! Exact graph diameter via all-pairs BFS.
//!
//! Theorem 2 of the paper shows "is diam(G) ≤ 3?" cannot be decided by a
//! one-round frugal protocol. The gadget validation experiments (Figure 1)
//! need exact diameters on many graphs, so the all-pairs loop reuses BFS
//! scratch buffers and supports an early-exit threshold variant.

use crate::algo::bfs::{bfs_into, UNREACHABLE};
use crate::csr::Csr;
use crate::LabelledGraph;

/// Result of a diameter computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diameter {
    /// Graph is connected with the given diameter.
    Finite(u32),
    /// Graph is disconnected (infinite diameter).
    Infinite,
}

impl Diameter {
    /// The finite value, if any.
    pub fn finite(self) -> Option<u32> {
        match self {
            Diameter::Finite(d) => Some(d),
            Diameter::Infinite => None,
        }
    }
}

/// Exact diameter. O(n · (n + m)).
pub fn diameter(g: &LabelledGraph) -> Diameter {
    if g.n() == 0 {
        return Diameter::Finite(0);
    }
    let csr = Csr::from_graph(g);
    let n = csr.n();
    let mut dist = vec![0u32; n];
    let mut queue = Vec::with_capacity(n);
    let mut best = 0u32;
    for s in 0..n {
        bfs_into(&csr, s, &mut dist, &mut queue);
        for &d in &dist {
            if d == UNREACHABLE {
                return Diameter::Infinite;
            }
            best = best.max(d);
        }
    }
    Diameter::Finite(best)
}

/// Decide `diam(G) ≤ t` — the exact predicate of Theorem 2 (with `t = 3`).
///
/// Early-exits as soon as one BFS exceeds `t`, so validating gadgets whose
/// diameter is 4 is cheap.
pub fn diameter_at_most(g: &LabelledGraph, t: u32) -> bool {
    if g.n() == 0 {
        return true;
    }
    let csr = Csr::from_graph(g);
    let n = csr.n();
    let mut dist = vec![0u32; n];
    let mut queue = Vec::with_capacity(n);
    for s in 0..n {
        bfs_into(&csr, s, &mut dist, &mut queue);
        for &d in &dist {
            if d == UNREACHABLE || d > t {
                return false;
            }
        }
    }
    true
}

/// Eccentricity of every vertex (`None` if the graph is disconnected).
/// `result[i]` is the eccentricity of vertex `i + 1`.
pub fn eccentricities(g: &LabelledGraph) -> Option<Vec<u32>> {
    let csr = Csr::from_graph(g);
    let n = csr.n();
    let mut dist = vec![0u32; n];
    let mut queue = Vec::with_capacity(n);
    let mut ecc = vec![0u32; n];
    for (s, e) in ecc.iter_mut().enumerate() {
        bfs_into(&csr, s, &mut dist, &mut queue);
        let mut max = 0;
        for &d in &dist {
            if d == UNREACHABLE {
                return None;
            }
            max = max.max(d);
        }
        *e = max;
    }
    Some(ecc)
}

/// Radius: the minimum eccentricity (`None` when disconnected). The
/// diameter gadget analysis of Theorem 2 is at heart an eccentricity
/// statement about the two pendant vertices; these helpers let the
/// experiments speak that language directly.
pub fn radius(g: &LabelledGraph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().min().unwrap_or(0))
}

/// Centre: all vertices of minimum eccentricity (ascending IDs; empty for
/// disconnected graphs).
pub fn center(g: &LabelledGraph) -> Vec<crate::VertexId> {
    match eccentricities(g) {
        None => Vec::new(),
        Some(ecc) => {
            let r = ecc.iter().copied().min().unwrap_or(0);
            ecc.iter()
                .enumerate()
                .filter(|&(_, &e)| e == r)
                .map(|(i, _)| (i + 1) as crate::VertexId)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_diameter() {
        let g = LabelledGraph::from_edges(5, [(1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert_eq!(diameter(&g), Diameter::Finite(4));
        assert!(diameter_at_most(&g, 4));
        assert!(!diameter_at_most(&g, 3));
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = generators::complete(6);
        assert_eq!(diameter(&g), Diameter::Finite(1));
        assert!(diameter_at_most(&g, 1));
    }

    #[test]
    fn disconnected_is_infinite() {
        let g = LabelledGraph::from_edges(4, [(1, 2), (3, 4)]).unwrap();
        assert_eq!(diameter(&g), Diameter::Infinite);
        assert_eq!(diameter(&g).finite(), None);
        assert!(!diameter_at_most(&g, 100));
    }

    #[test]
    fn trivial_graphs() {
        assert_eq!(diameter(&LabelledGraph::new(0)), Diameter::Finite(0));
        assert_eq!(diameter(&LabelledGraph::new(1)), Diameter::Finite(0));
        assert!(diameter_at_most(&LabelledGraph::new(1), 0));
    }

    #[test]
    fn cycle_diameter() {
        let g = generators::cycle(8).unwrap();
        assert_eq!(diameter(&g), Diameter::Finite(4));
        let g = generators::cycle(9).unwrap();
        assert_eq!(diameter(&g), Diameter::Finite(4));
    }

    #[test]
    fn radius_and_center_of_path() {
        let g = LabelledGraph::from_edges(5, [(1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert_eq!(radius(&g), Some(2));
        assert_eq!(center(&g), vec![3]);
        let ecc = eccentricities(&g).unwrap();
        assert_eq!(ecc, vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn center_of_even_path_has_two_vertices() {
        let g = generators::path(6);
        assert_eq!(center(&g), vec![3, 4]);
        assert_eq!(radius(&g), Some(3));
    }

    #[test]
    fn star_center() {
        let g = generators::star(7).unwrap();
        assert_eq!(center(&g), vec![1]);
        assert_eq!(radius(&g), Some(1));
        assert_eq!(diameter(&g), Diameter::Finite(2));
    }

    #[test]
    fn disconnected_has_no_center() {
        let g = LabelledGraph::from_edges(4, [(1, 2)]).unwrap();
        assert_eq!(radius(&g), None);
        assert!(center(&g).is_empty());
        assert_eq!(eccentricities(&g), None);
    }

    #[test]
    fn vertex_transitive_graphs_are_all_center() {
        let g = generators::cycle(6).unwrap();
        assert_eq!(center(&g).len(), 6);
        assert_eq!(radius(&g), Some(3));
    }
}
