//! Formatting and parsing for [`UBig`].
//!
//! Decimal output repeatedly divides by 10^19 (the largest power of ten in a
//! limb); hex output is a direct limb dump. Parsing accepts decimal and,
//! with a `0x` prefix, hexadecimal.

use crate::{UBig, WideError};
use std::fmt;
use std::str::FromStr;

/// Largest power of ten that fits in a limb: 10^19.
const DEC_CHUNK: u64 = 10_000_000_000_000_000_000;
const DEC_CHUNK_DIGITS: usize = 19;

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_small(DEC_CHUNK).expect("nonzero divisor");
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:0DEC_CHUNK_DIGITS$}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl FromStr for UBig {
    type Err = WideError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            return parse_radix(hex, 16);
        }
        parse_radix(s, 10)
    }
}

fn parse_radix(s: &str, radix: u64) -> Result<UBig, WideError> {
    if s.is_empty() {
        return Err(WideError::InvalidDigit);
    }
    let mut acc = UBig::zero();
    for ch in s.chars() {
        if ch == '_' {
            continue;
        }
        let d = ch.to_digit(radix as u32).ok_or(WideError::InvalidDigit)? as u64;
        acc = acc.mul_small(radix).add_ref(&UBig::from(d));
    }
    Ok(acc)
}

impl UBig {
    /// Approximate base-2 logarithm as an `f64` (useful for the Lemma 1
    /// budget plots where counts like 2^(n²/2) must be compared on a log
    /// scale). Exact for powers of two; error < 1e-10 relative otherwise.
    pub fn log2(&self) -> f64 {
        match self.limbs.len() {
            0 => f64::NEG_INFINITY,
            _ => {
                let bits = self.bit_len();
                // Take the top 64 bits as a mantissa.
                let top = if bits <= 64 {
                    self.limbs[self.limbs.len() - 1] as f64
                } else {
                    let shifted = self.shr(bits - 64);
                    shifted.limbs[0] as f64
                };
                let top_bits = if bits <= 64 { bits } else { 64 };
                top.log2() + (bits - top_bits) as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_small() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(UBig::from(7u64).to_string(), "7");
        assert_eq!(UBig::from(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(UBig::from(u128::MAX).to_string(), u128::MAX.to_string());
    }

    #[test]
    fn display_pads_interior_chunks() {
        // 10^19 exactly: second chunk is 1, first chunk must print 19 zeros.
        let v = UBig::from(DEC_CHUNK);
        assert_eq!(v.to_string(), "10000000000000000000");
        let v2 = v.mul_small(10).add_ref(&UBig::from(5u64));
        assert_eq!(v2.to_string(), "100000000000000000005");
    }

    #[test]
    fn parse_round_trip() {
        for s in
            ["0", "1", "42", "18446744073709551616", "340282366920938463463374607431768211455"]
        {
            assert_eq!(UBig::from_str(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn parse_hex_and_separators() {
        assert_eq!(UBig::from_str("0xff").unwrap(), UBig::from(255u64));
        assert_eq!(UBig::from_str("1_000").unwrap(), UBig::from(1000u64));
        assert_eq!(UBig::from_str("0x1_0000_0000_0000_0000").unwrap(), UBig::from(1u128 << 64));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(UBig::from_str("").is_err());
        assert!(UBig::from_str("12a").is_err());
        assert!(UBig::from_str("0x").is_err());
        assert!(UBig::from_str("-5").is_err());
    }

    #[test]
    fn hex_format() {
        assert_eq!(format!("{:x}", UBig::zero()), "0");
        assert_eq!(format!("{:x}", UBig::from(0xdead_beefu64)), "deadbeef");
        let v = UBig::from(1u128 << 64).add_ref(&UBig::from(0xabu64));
        assert_eq!(format!("{v:x}"), "100000000000000ab");
    }

    #[test]
    fn log2_sanity() {
        assert_eq!(UBig::from(1u64).log2(), 0.0);
        assert_eq!(UBig::from(1024u64).log2(), 10.0);
        let v = UBig::from(2u64).pow(777);
        assert!((v.log2() - 777.0).abs() < 1e-9);
        let v3 = UBig::from(3u64).pow(100);
        assert!((v3.log2() - 100.0 * 3f64.log2()).abs() < 1e-6);
    }
}
