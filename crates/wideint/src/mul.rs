//! Multiplication for [`UBig`]: schoolbook below a threshold, Karatsuba
//! above it.
//!
//! The power-sum encoder multiplies numbers of at most a few limbs, so the
//! schoolbook path is the hot one and is written allocation-minimal. The
//! Karatsuba path exists for the counting experiments (Lemma 1), which
//! manipulate counts like 2^(n²/2) with thousands of bits.

use crate::limb::mac;
use crate::UBig;
use std::ops::{Mul, MulAssign};

/// Limb-count threshold below which schoolbook multiplication is used.
/// Chosen empirically; the crossover is flat between 16 and 48 limbs.
const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook product of two limb slices into `out` (which must be zeroed
/// and have length `a.len() + b.len()`).
fn mul_schoolbook(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert!(out.iter().all(|&w| w == 0));
    debug_assert_eq!(out.len(), a.len() + b.len());
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = mac(out[i + j], ai, bj, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
}

/// Add `b` into `a[offset..]` with carry propagation. `a` must be long
/// enough that the carry never falls off the end.
fn add_into(a: &mut [u64], offset: usize, b: &[u64]) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < b.len() || carry != 0 {
        let bi = b.get(i).copied().unwrap_or(0);
        let (s, c) = crate::limb::adc(a[offset + i], bi, carry);
        a[offset + i] = s;
        carry = c;
        i += 1;
    }
}

/// Subtract `b` from `a[offset..]`; the difference must be non-negative.
fn sub_from(a: &mut [u64], offset: usize, b: &[u64]) {
    let mut borrow = 0u64;
    let mut i = 0;
    while i < b.len() || borrow != 0 {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d, br) = crate::limb::sbb(a[offset + i], bi, borrow);
        a[offset + i] = d;
        borrow = br;
        i += 1;
    }
}

/// Karatsuba: split at `m = max/2`, three recursive products.
fn mul_karatsuba(a: &[u64], b: &[u64], out: &mut [u64]) {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        mul_schoolbook(a, b, out);
        return;
    }
    let m = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = b.split_at(m.min(b.len()));

    // z0 = a0*b0 placed at out[0..], z2 = a1*b1 placed at out[2m..]
    let mut z0 = vec![0u64; a0.len() + b0.len()];
    mul_karatsuba(a0, b0, &mut z0);
    let mut z2 = vec![0u64; a1.len() + b1.len()];
    if !a1.is_empty() && !b1.is_empty() {
        mul_karatsuba(a1, b1, &mut z2);
    }

    // z1 = (a0+a1)(b0+b1) - z0 - z2
    let asum = UBig::from_limbs(a0.to_vec()).add_ref(&UBig::from_limbs(a1.to_vec()));
    let bsum = UBig::from_limbs(b0.to_vec()).add_ref(&UBig::from_limbs(b1.to_vec()));
    let mut z1 = vec![0u64; asum.limbs.len() + bsum.limbs.len()];
    mul_karatsuba(&asum.limbs, &bsum.limbs, &mut z1);

    out[..z0.len()].copy_from_slice(&z0);
    add_into(out, 2 * m, &z2);
    add_into(out, m, &z1);
    sub_from(out, m, &z0);
    sub_from(out, m, &z2);
}

impl UBig {
    /// `self * other`, exact.
    pub fn mul_ref(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        if self.limbs.len().min(other.limbs.len()) < KARATSUBA_THRESHOLD {
            mul_schoolbook(&self.limbs, &other.limbs, &mut out);
        } else {
            mul_karatsuba(&self.limbs, &other.limbs, &mut out);
        }
        UBig::from_limbs(out)
    }

    /// Multiply in place by a single limb (hot path of the encoder).
    pub fn mul_small(&self, m: u64) -> UBig {
        if m == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &w in &self.limbs {
            let (lo, hi) = mac(0, w, m, carry);
            out.push(lo);
            carry = hi;
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }
}

impl Mul for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        self.mul_ref(rhs)
    }
}

impl Mul for UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        self.mul_ref(&rhs)
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ub(v: u128) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(ub(6) * ub(7), ub(42));
        assert_eq!(ub(0) * ub(7), ub(0));
        assert_eq!(ub(1) * ub(7), ub(7));
    }

    #[test]
    fn mul_matches_u128() {
        let vals = [0u128, 1, 2, 0xffff_ffff, u64::MAX as u128, (u64::MAX as u128) + 1];
        for &a in &vals {
            for &b in &vals {
                if let Some(p) = a.checked_mul(b) {
                    assert_eq!(ub(a) * ub(b), ub(p), "{a} * {b}");
                }
            }
        }
    }

    #[test]
    fn mul_small_matches_mul() {
        let a = ub(u128::MAX / 3);
        for m in [0u64, 1, 2, 12345, u64::MAX] {
            assert_eq!(a.mul_small(m), a.mul_ref(&UBig::from(m)));
        }
    }

    #[test]
    fn mul_big_square() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = ub(u128::MAX);
        let sq = &a * &a;
        let expect = UBig::from(1u64).shl(256).checked_sub(&UBig::from(1u64).shl(129)).unwrap()
            + UBig::from(1u64);
        assert_eq!(sq, expect);
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Deterministic pseudo-random limbs, big enough to cross the threshold.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let a = UBig::from_limbs((0..100).map(|_| next()).collect());
        let b = UBig::from_limbs((0..80).map(|_| next()).collect());
        let mut school = vec![0u64; a.limbs().len() + b.limbs().len()];
        mul_schoolbook(a.limbs(), b.limbs(), &mut school);
        assert_eq!(a.mul_ref(&b), UBig::from_limbs(school));
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        let a = UBig::from_limbs(vec![3, 5, 7]);
        let b = UBig::from_limbs(vec![11, 13]);
        let c = UBig::from_limbs(vec![17, 19, 23, 29]);
        assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
        assert_eq!(a.mul_ref(&b).mul_ref(&c), a.mul_ref(&b.mul_ref(&c)));
    }
}
