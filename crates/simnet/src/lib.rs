#![warn(missing_docs)]
//! `referee-simnet` — a sans-I/O, fault-injecting **session runtime** for
//! referee protocols.
//!
//! The synchronous simulators in `referee-protocol`
//! ([`run_protocol`](referee_protocol::run_protocol),
//! [`run_multiround`](referee_protocol::multiround::run_multiround)) call
//! both sides of the model as plain functions: perfect for reproducing
//! the paper's numbers, but silent about everything a *system* has to
//! survive — loss, duplication, reordering, corruption, and the cost of
//! driving thousands of concurrent runs. This crate closes that gap:
//!
//! * [`session`] — [`OneRoundSession`] and [`MultiRoundSession`] execute
//!   protocols as explicit state machines with a poll-style
//!   [`step()`](OneRoundSession::step) API. No threads, sockets or clocks
//!   are baked in; every message crosses a [`Transport`].
//! * [`transport`] — the [`Transport`] trait and the in-memory
//!   [`PerfectTransport`]. Envelopes are session-tagged ([`SessionId`]
//!   — the multiplexing key `wirenet` uses to carry whole fleets over a
//!   few sockets), round-stamped and addressed (vertex IDs, with
//!   [`REFEREE`] = 0), so sessions tolerate arbitrary delivery order by
//!   buffering early traffic per round.
//! * [`clock`] — injectable time ([`Clock`]): latency metrics come from
//!   a [`SharedClock`] (real by default, [`ManualClock`] for
//!   deterministic tests and reactor-stamped latencies).
//! * [`fault`] — [`FaultyTransport`], a seeded decorator injecting
//!   message loss, duplication, cross-round reordering and bit
//!   corruption. Corruption feeds the *existing*
//!   [`DecodeError`](referee_protocol::DecodeError) rejection paths:
//!   the decoders are the integrity layer, the runtime adds no oracle.
//! * [`shard`] — [`ShardedOneRoundSession`]: the referee's mailbox split
//!   across mergeable [`RefereeShard`](referee_protocol::shard::RefereeShard)s
//!   whose [`PartialState`](referee_protocol::shard::PartialState)
//!   summaries cross the transport in a seeded exchange phase —
//!   bit-for-bit equivalent to the unsharded session (pinned by tests).
//!   [`ShardedMultiRoundSession`] extends the split to multi-round
//!   protocols: every round's uplinks route into `k` per-round shards
//!   whose [`RoundPartialState`](referee_protocol::shard::multiround::RoundPartialState)s
//!   cross the transport before each `referee_step`.
//! * [`placement`] — [`PlacementSim`]: a sans-I/O, seeded model of
//!   cross-host shard placement under host loss — kills wipe volatile
//!   shard state, journal replay rebuilds it — pinned to produce the
//!   monolithic verdict for every seed and kill rate, so any wire-layer
//!   reconnect bug has a seed-reproducible counterexample here.
//! * [`scheduler`] — a claim-based batching worker pool ([`Scheduler`])
//!   that drives many sessions concurrently (interleaving their `step`s
//!   within a batch) and disables the legacy simulator's nested
//!   parallelism while it runs.
//! * [`metrics`] — [`SessionMetrics`] (a superset of the legacy
//!   [`RunStats`](referee_protocol::RunStats): delivery counters and
//!   round latencies) and the fleet-level [`AggregateMetrics`].
//!
//! # Relation to the legacy simulators
//!
//! [`run_protocol`] and [`run_multiround`] here are drop-in equivalents
//! of the `referee-protocol` functions, executed through a session over a
//! perfect transport. Property tests pin bit-for-bit equivalence (same
//! output, same `max_message_bits`) between the two stacks, and a
//! zero-fault [`FaultyTransport`] is likewise pinned to be transparent —
//! so the fault knobs are the *only* behavioural difference.
//!
//! # Example: a faulty sweep
//!
//! ```
//! use referee_simnet::{FaultConfig, Scheduler};
//! use referee_graph::generators;
//! use referee_protocol::easy::EdgeCountProtocol;
//!
//! let graphs: Vec<_> = (0..64).map(|i| generators::grid(3, 3 + i % 4)).collect();
//! // Loss, duplication and reordering — no corruption: loss surfaces as
//! // a DecodeError rejection, while dup/reorder are absorbed by the
//! // session's idempotent, round-buffered delivery.
//! let faults =
//!     FaultConfig { seed: 42, loss: 0.05, duplication: 0.1, reorder: 0.3, corruption: 0.0 };
//! let sweep = Scheduler::default().sweep_one_round(&EdgeCountProtocol, &graphs, Some(faults));
//! assert_eq!(sweep.reports.len(), 64);
//! let truth: Vec<usize> = graphs.iter().map(|g| g.m()).collect();
//! for (report, &m) in sweep.reports.iter().zip(&truth) {
//!     match &report.outcome {
//!         Err(_) => {}                                // loss detected, rejected
//!         Ok(count) => assert_eq!(*count.as_ref().unwrap(), m), // or exactly right
//!     }
//! }
//! ```
//!
//! Under *corruption* (one flipped bit per corrupted envelope), the
//! guarantee is exactly the decoders': protocols with validating
//! decoders (the degeneracy family, the MAC-tagged Borůvka proposal
//! uplinks) reject the flip with a
//! [`DecodeError`](referee_protocol::DecodeError), while fields
//! without redundancy — the degree counts above, or Borůvka's
//! node-to-node label floods — can decode to a plausible wrong value.
//! That is the same trust model as the paper's, now observable per
//! message.

pub mod byzantine;
pub mod clock;
pub mod fault;
pub mod metrics;
pub mod placement;
pub mod scheduler;
pub mod session;
pub mod shard;
pub mod transport;

pub use byzantine::{ByzantineConfig, InjectionCounts, Misbehaving};
pub use clock::{real_clock, Clock, ManualClock, RealClock, SharedClock};
pub use fault::{FaultConfig, FaultyTransport};
pub use metrics::{AggregateMetrics, SessionMetrics, TransportCounters};
pub use placement::{PlacementReport, PlacementSim};
pub use scheduler::{ByzantineReport, MixedLane, MixedReport, Scheduler, SweepReport};
pub use session::{MultiRoundReport, MultiRoundSession, OneRoundReport, OneRoundSession, Step};
pub use shard::multiround::{ShardedMultiRoundReport, ShardedMultiRoundSession};
pub use shard::{ShardedOneRoundSession, ShardedReport};
pub use transport::{Envelope, PerfectTransport, SessionId, Transport, REFEREE};

use referee_graph::LabelledGraph;
use referee_protocol::multiround::{MultiRoundProtocol, MultiRoundStats};
use referee_protocol::{OneRoundProtocol, RunOutcome};

/// Drop-in replacement for [`referee_protocol::run_protocol`], executed
/// through a [`OneRoundSession`] over a [`PerfectTransport`].
///
/// A perfect transport cannot lose or corrupt anything, so the session
/// outcome is infallible; the signature stays identical to the legacy
/// simulator's (including the `Sync` bound, which the parallel local
/// phase for large graphs needs).
pub fn run_protocol<P: OneRoundProtocol + Sync>(
    protocol: &P,
    g: &LabelledGraph,
) -> RunOutcome<P::Output> {
    let mut transport = PerfectTransport::new();
    let report = OneRoundSession::new(protocol, g).run(&mut transport);
    RunOutcome {
        output: report.outcome.expect("perfect transport cannot fail delivery"),
        stats: report.metrics.stats,
    }
}

/// Drop-in replacement for
/// [`referee_protocol::multiround::run_multiround`], executed through a
/// [`MultiRoundSession`] over a [`PerfectTransport`].
pub fn run_multiround<P: MultiRoundProtocol>(
    protocol: &P,
    g: &LabelledGraph,
    max_rounds: usize,
) -> (Option<P::Output>, MultiRoundStats) {
    let mut transport = PerfectTransport::new();
    let report = MultiRoundSession::new(protocol, g, max_rounds).run(&mut transport);
    (report.outcome.expect("perfect transport cannot fail delivery"), report.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::generators;
    use referee_protocol::easy::EdgeCountProtocol;
    use referee_protocol::multiround::BoruvkaConnectivity;

    #[test]
    fn one_round_matches_legacy_simulator() {
        for g in [generators::petersen(), generators::grid(4, 5), LabelledGraph::new(0)] {
            let legacy = referee_protocol::run_protocol(&EdgeCountProtocol, &g);
            let simnet = run_protocol(&EdgeCountProtocol, &g);
            assert_eq!(simnet.output, legacy.output);
            assert_eq!(simnet.stats.max_message_bits, legacy.stats.max_message_bits);
            assert_eq!(simnet.stats.total_message_bits, legacy.stats.total_message_bits);
        }
    }

    #[test]
    fn multiround_matches_legacy_simulator() {
        for g in [
            generators::path(40),
            generators::petersen(),
            generators::path(6).disjoint_union(&generators::path(5)),
        ] {
            let cap = 64;
            let (legacy, legacy_stats) =
                referee_protocol::multiround::run_multiround(&BoruvkaConnectivity, &g, cap);
            let (simnet, simnet_stats) = run_multiround(&BoruvkaConnectivity, &g, cap);
            assert_eq!(simnet.is_some(), legacy.is_some());
            assert_eq!(
                simnet.map(|r| r.expect("honest run decodes")),
                legacy.map(|r| r.expect("honest run decodes"))
            );
            assert_eq!(simnet_stats.rounds, legacy_stats.rounds);
            assert_eq!(simnet_stats.max_uplink_bits, legacy_stats.max_uplink_bits);
            assert_eq!(simnet_stats.max_downlink_bits, legacy_stats.max_downlink_bits);
            assert_eq!(simnet_stats.max_link_bits, legacy_stats.max_link_bits);
        }
    }

    #[test]
    fn large_graph_parallel_local_phase_matches_legacy() {
        // n >= the default parallel threshold (2048): the session takes
        // the fanned-out local_phase branch; output and stats must still
        // match the legacy simulator exactly.
        let g = generators::path(3000);
        let legacy = referee_protocol::run_protocol(&EdgeCountProtocol, &g);
        let simnet = run_protocol(&EdgeCountProtocol, &g);
        assert_eq!(simnet.output, legacy.output);
        assert_eq!(simnet.stats.max_message_bits, legacy.stats.max_message_bits);
        assert_eq!(simnet.stats.total_message_bits, legacy.stats.total_message_bits);
    }

    #[test]
    fn round_cap_is_respected() {
        // Borůvka needs > 1 round on any non-trivial graph; a cap of 1
        // must end with no output, like the legacy simulator.
        let g = generators::path(8);
        let (out, stats) = run_multiround(&BoruvkaConnectivity, &g, 1);
        assert!(out.is_none());
        assert_eq!(stats.rounds, 1);
    }
}
