//! Experiment harness for the `referee-one-round` reproduction.
//!
//! The paper (a theory paper) has two figures — both gadget constructions
//! — and no measured tables; `EXPERIMENTS.md` at the repository root
//! defines the experiment grid E1–E25 that substitutes for them. Each
//! submodule of [`experiments`] computes one experiment's rows; the
//! `exp_*` binaries in `src/bin/` print them, and the Criterion benches in
//! `benches/` measure the runtime-scaling claims (local time O(n),
//! reconstruction O(n²), table-vs-Newton decoding).
//!
//! Everything here is deterministic under fixed seeds so `EXPERIMENTS.md`
//! can quote exact numbers.

pub mod experiments;

/// Render aligned rows (first row = header) as a markdown-ish table.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
        if ri == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out.push('\n');
        }
    }
    out
}

/// Print a section header for the experiment binaries.
pub fn section(title: &str) {
    println!("\n### {title}\n");
}

/// One machine-readable throughput measurement for the bench
/// trajectory: a backend (`"simnet"`, `"wirenet"`, `"remote"`), a sweep
/// axis value (shard count for the shard sweeps, connection count for
/// the fleet sweeps — the axis is named in the JSON), and the measured
/// sessions per second.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which backend produced the number.
    pub backend: String,
    /// The sweep's axis value (shards or conns, named per bench).
    pub shards: usize,
    /// Verified sessions per wall-clock second.
    pub sessions_per_sec: f64,
}

impl BenchRecord {
    /// Convenience constructor.
    pub fn new(backend: &str, shards: usize, sessions_per_sec: f64) -> BenchRecord {
        BenchRecord { backend: backend.into(), shards, sessions_per_sec }
    }
}

/// Serialize bench records as the `BENCH_{name}.json` document the
/// bench trajectory accumulates (hand-rolled writer — the offline build
/// has no serde). Format, pinned by tests:
///
/// ```json
/// {"bench":"exp_shard","unit":"sessions_per_second","results":[
///   {"backend":"simnet","shards":1,"sessions_per_sec":12345.6}, …]}
/// ```
pub fn bench_json(name: &str, records: &[BenchRecord]) -> String {
    bench_json_axis(name, "shards", records)
}

/// Like [`bench_json`], with the sweep axis named explicitly — a bench
/// whose independent variable is not a shard count (e.g. `exp_wirenet`
/// sweeping connection pools) names its axis (`"conns"`) instead of
/// mislabelling it.
pub fn bench_json_axis(name: &str, axis: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"bench\":\"{name}\",\"unit\":\"sessions_per_second\",\"results\":["
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"backend\":\"{}\",\"{axis}\":{},\"sessions_per_sec\":{:.1}}}",
            r.backend, r.shards, r.sessions_per_sec
        ));
    }
    out.push_str("]}\n");
    out
}

/// Write `BENCH_{name}.json` into `dir` and return its path.
pub fn write_bench_json_in(
    dir: &std::path::Path,
    name: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_json_axis_in(dir, name, "shards", records)
}

/// The one place the `BENCH_{name}.json` path and write live: every
/// other writer delegates here, mirroring how [`bench_json`] delegates
/// to [`bench_json_axis`].
pub fn write_bench_json_axis_in(
    dir: &std::path::Path,
    name: &str,
    axis: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, bench_json_axis(name, axis, records))?;
    Ok(path)
}

/// [`write_bench_json`] with an explicit axis name (see
/// [`bench_json_axis`]).
pub fn write_bench_json_axis(
    name: &str,
    axis: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_json_axis_in(std::path::Path::new("."), name, axis, records)
}

/// Write `BENCH_{name}.json` into the current directory (the repo root
/// under `cargo run`) and return its path.
pub fn write_bench_json(
    name: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_json_in(std::path::Path::new("."), name, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            vec!["n".into(), "bits".into()],
            vec!["8".into(), "24".into()],
            vec!["1024".into(), "77".into()],
        ];
        let t = render_table(&rows);
        assert!(t.contains("|    n | bits |"));
        assert!(t.lines().count() == 4);
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {t}");
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn bench_json_format_is_stable() {
        let records =
            [BenchRecord::new("simnet", 1, 70000.049), BenchRecord::new("wirenet", 8, 5234.0)];
        let json = bench_json("exp_shard", &records);
        assert_eq!(
            json,
            "{\"bench\":\"exp_shard\",\"unit\":\"sessions_per_second\",\"results\":[\
             {\"backend\":\"simnet\",\"shards\":1,\"sessions_per_sec\":70000.0},\
             {\"backend\":\"wirenet\",\"shards\":8,\"sessions_per_sec\":5234.0}]}\n"
        );
    }

    #[test]
    fn bench_json_axis_renames_the_axis_only() {
        let records = [BenchRecord::new("wirenet", 8, 7700.0)];
        assert_eq!(
            bench_json_axis("exp_wirenet", "conns", &records),
            "{\"bench\":\"exp_wirenet\",\"unit\":\"sessions_per_second\",\"results\":[\
             {\"backend\":\"wirenet\",\"conns\":8,\"sessions_per_sec\":7700.0}]}\n"
        );
        // The default axis stays "shards" — the pinned historic format.
        assert_eq!(bench_json("x", &records), bench_json_axis("x", "shards", &records));
    }

    #[test]
    fn bench_json_writes_a_file() {
        let dir = std::env::temp_dir().join(format!("bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path =
            write_bench_json_in(&dir, "unit_test", &[BenchRecord::new("simnet", 2, 1.5)])
                .unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"shards\":2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
