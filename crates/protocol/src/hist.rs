//! Fixed-bucket log₂-scaled latency histograms.
//!
//! The observability layer needs tail percentiles (p50/p99/p999) from
//! every shard worker and every remote [`ShardHost`] without locks on the
//! hot path and without unbounded memory. A [`LatencyHistogram`] is 64
//! lock-free `AtomicU64` buckets where bucket `i` holds every microsecond
//! value whose bit length is `i` — so each bucket spans one power of two
//! and a reported quantile overestimates the true value by strictly less
//! than 2× (see [`bucket_bound`]).
//!
//! A frozen [`HistSnapshot`] is a plain array that merges commutatively
//! and associatively by bucket-wise saturating addition, exactly like the
//! sharded referee's `PartialState`: shard workers and remote hosts
//! [`encode`](HistSnapshot::encode) their snapshots onto the wire and the
//! coordinator [`decode`](HistSnapshot::decode)s and merges them, in any
//! order, into one fleet-wide distribution.
//!
//! [`ShardHost`]: https://docs.rs/referee-wirenet

use std::sync::atomic::{AtomicU64, Ordering};

use crate::message::Message;
use crate::{BitWriter, DecodeError};

/// Number of buckets: one per possible bit length of a `u64` microsecond
/// value, plus bucket 0 for the value 0.
pub const HIST_BUCKETS: usize = 64;

/// The bucket a microsecond value lands in: its bit length, clamped to
/// the overflow bucket. `0 → 0`, `v ∈ [2^(i-1), 2^i - 1] → i`.
pub fn bucket_of(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` — the value every quantile
/// query reports for samples in that bucket. `2^i - 1` for ordinary
/// buckets, so for any recorded `v ≥ 1` below the overflow bucket the
/// reported bound satisfies `v ≤ bound < 2·v`. The overflow bucket
/// (index 63) is unbounded and reports `u64::MAX`.
pub fn bucket_bound(i: usize) -> u64 {
    assert!(i < HIST_BUCKETS, "bucket {i} out of range");
    if i == HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Lock-free latency accumulator: 64 atomic buckets, log₂-scaled, in
/// microseconds. Share it behind an `Arc` (or hang it off a metrics
/// struct); every recorder path is a single relaxed `fetch_add`.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one latency sample from a [`std::time::Duration`]
    /// (saturating at the overflow bucket).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Fold a frozen snapshot into this histogram — how a coordinator
    /// absorbs a decoded remote histogram into its own live metrics.
    pub fn absorb(&self, snap: &HistSnapshot) {
        for (bucket, &count) in self.buckets.iter().zip(snap.buckets.iter()) {
            if count > 0 {
                bucket.fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time frozen copy.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A frozen [`LatencyHistogram`]: plain bucket counts that merge
/// commutatively and associatively, answer quantile queries, and
/// round-trip through a canonical wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; HIST_BUCKETS] }
    }
}

impl HistSnapshot {
    /// An empty snapshot (the identity element of [`merge`](Self::merge)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one microsecond sample into this (non-atomic) snapshot —
    /// for single-threaded accumulation, e.g. simnet aggregates.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_of(us)] = self.buckets[bucket_of(us)].saturating_add(1);
    }

    /// Bucket-wise saturating sum. Commutative and associative, so shard
    /// and host snapshots merge in any arrival order.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Bucket-wise saturating difference `self − earlier`: the
    /// distribution of samples recorded *between* two snapshots of the
    /// same histogram, so one phase of a run can be measured in
    /// isolation.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (b, e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        out
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// The per-bucket counts (index = [`bucket_of`] the sample).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) as a bucket upper bound in
    /// microseconds: the bound of the bucket where the cumulative count
    /// first reaches `⌈q · count⌉`. Overestimates the true sample by
    /// strictly less than 2× outside the overflow bucket.
    ///
    /// Edge cases are pinned, not implementation-defined: an **empty**
    /// snapshot (every bucket zero — `count() == 0`) returns **0** for
    /// every `q`; a snapshot whose samples are all the value 0 returns
    /// 0 too ([`bucket_bound`]`(0) == 0`); and `q = 0` clamps the rank
    /// to 1, reporting the bound of the lowest non-empty bucket.
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }

    /// Median latency, in microseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency, in microseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency, in microseconds.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Canonical wire layout: gamma-coded count of non-empty buckets,
    /// then `(index + 1, count)` gamma pairs in strictly increasing
    /// bucket order. Sparse, so an idle stage costs a handful of bits.
    pub fn encode(&self) -> Message {
        let mut w = BitWriter::new();
        let nonzero = self.buckets.iter().filter(|&&b| b > 0).count() as u64;
        w.write_gamma(nonzero + 1);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                w.write_gamma(i as u64 + 1);
                w.write_gamma(b);
            }
        }
        Message::from_writer(w)
    }

    /// Decode the [`encode`](Self::encode) layout, rejecting
    /// non-canonical streams: out-of-range or non-increasing bucket
    /// indices, and trailing bits.
    pub fn decode(msg: &Message) -> Result<HistSnapshot, DecodeError> {
        let mut r = msg.reader();
        let pairs = r.read_gamma()? - 1;
        if pairs > HIST_BUCKETS as u64 {
            return Err(DecodeError::OutOfRange(format!(
                "{pairs} histogram buckets, max {HIST_BUCKETS}"
            )));
        }
        let mut snap = HistSnapshot::new();
        let mut prev: Option<usize> = None;
        for _ in 0..pairs {
            let idx = (r.read_gamma()? - 1) as usize;
            if idx >= HIST_BUCKETS {
                return Err(DecodeError::OutOfRange(format!("histogram bucket {idx}")));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(DecodeError::Invalid(
                    "histogram buckets not strictly increasing".into(),
                ));
            }
            prev = Some(idx);
            snap.buckets[idx] = r.read_gamma()?;
        }
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bits after histogram".into()));
        }
        Ok(snap)
    }
}

impl std::fmt::Display for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={}us p99={}us p999={}us",
            self.count(),
            self.p50(),
            self.p99(),
            self.p999()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn bounds_cover_their_buckets() {
        for i in 0..HIST_BUCKETS - 1 {
            let ub = bucket_bound(i);
            assert_eq!(bucket_of(ub), i, "bound of bucket {i} must land in it");
            assert_eq!(bucket_of(ub + 1), i + 1);
        }
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s, HistSnapshot::default());
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        // Empty snapshot: 0 for every q, across the whole range.
        let empty = HistSnapshot::new();
        for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty snapshot, q={q}");
        }
        assert_eq!((empty.p50(), empty.p99(), empty.p999()), (0, 0, 0));

        // All samples are the value 0: non-empty, but every quantile is
        // still the bucket-0 bound, which is 0.
        let mut zeros = HistSnapshot::new();
        for _ in 0..5 {
            zeros.record_us(0);
        }
        assert_eq!(zeros.count(), 5);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(zeros.quantile(q), 0, "all-zero samples, q={q}");
        }

        // q = 0 clamps to rank 1: the lowest non-empty bucket's bound.
        let mut mixed = HistSnapshot::new();
        mixed.record_us(100);
        mixed.record_us(100_000);
        assert_eq!(mixed.quantile(0.0), bucket_bound(bucket_of(100)));

        // Subtracting a snapshot from itself empties it again.
        assert_eq!(mixed.delta(&mixed).quantile(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range_q() {
        HistSnapshot::new().quantile(1.5);
    }

    #[test]
    fn exact_quantiles_on_bucket_bounds() {
        // 100 samples at 1023us and 1 sample at 1_048_575us: p50 is the
        // low bound, p999 the high one.
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_us(1023);
        }
        h.record_us((1 << 20) - 1);
        let s = h.snapshot();
        assert_eq!(s.count(), 101);
        assert_eq!(s.p50(), 1023);
        assert_eq!(s.p99(), 1023);
        assert_eq!(s.p999(), (1 << 20) - 1);
        assert_eq!(s.quantile(1.0), (1 << 20) - 1);
    }

    #[test]
    fn absorb_matches_merge() {
        let h = LatencyHistogram::new();
        h.record_us(5);
        let mut remote = HistSnapshot::new();
        remote.record_us(500);
        remote.record_us(5);
        h.absorb(&remote);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.buckets()[bucket_of(5)], 2);
        assert_eq!(s.buckets()[bucket_of(500)], 1);
    }

    #[test]
    fn record_duration_is_microseconds() {
        let h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_micros(300));
        assert_eq!(h.snapshot().buckets()[bucket_of(300)], 1);
    }

    #[test]
    fn encode_decode_rejects_non_canonical() {
        // Non-increasing bucket order.
        let mut w = BitWriter::new();
        w.write_gamma(2 + 1);
        w.write_gamma(5 + 1);
        w.write_gamma(1);
        w.write_gamma(5 + 1);
        w.write_gamma(1);
        let msg = Message::from_writer(w);
        assert!(matches!(HistSnapshot::decode(&msg), Err(DecodeError::Invalid(_))));

        // Bucket index out of range.
        let mut w = BitWriter::new();
        w.write_gamma(1 + 1);
        w.write_gamma(64 + 1);
        w.write_gamma(1);
        let msg = Message::from_writer(w);
        assert!(matches!(HistSnapshot::decode(&msg), Err(DecodeError::OutOfRange(_))));

        // Trailing bits.
        let mut w = BitWriter::new();
        w.write_gamma(1);
        w.push_bit(false);
        let msg = Message::from_writer(w);
        assert!(matches!(HistSnapshot::decode(&msg), Err(DecodeError::Invalid(_))));

        // Truncated stream.
        let mut w = BitWriter::new();
        w.write_gamma(1 + 1);
        let msg = Message::from_writer(w);
        assert!(matches!(HistSnapshot::decode(&msg), Err(DecodeError::Truncated)));
    }

    #[test]
    fn display_summarises() {
        let mut s = HistSnapshot::new();
        s.record_us(7);
        assert_eq!(format!("{s}"), "n=1 p50=7us p99=7us p999=7us");
    }
}
