//! E4: the executable reductions Δ-from-Γ with measured message blow-ups
//! (§II closing remark: k(2n), 3k(n+3), 2k(n+1)).
//!
//! Run: `cargo run --release -p referee-bench --bin exp_reductions`

use referee_bench::experiments::blowup;
use referee_bench::{render_table, section};

fn main() {
    println!("# E4: Δ-from-Γ reduction simulations (Algorithms 1–2, Thm 3)");
    println!("# Γ = non-frugal adjacency oracle; Δ must reconstruct EXACTLY.");
    println!("# 'paper-form bound' instantiates k(2n) / 3k(n+3) / 2k(n+1) for this Γ;");
    println!("# overhead = self-delimiting bundling prefixes (ours is exact, paper's is asymptotic).");

    for n in [8usize, 12, 16, 24] {
        section(&format!("n = {n}"));
        let rows = blowup::run(n, 2011 + n as u64);
        println!("{}", render_table(&blowup::to_table(&rows)));
        assert!(rows.iter().all(|r| r.exact), "reduction failed to reconstruct");
    }
    println!("all reductions reconstructed their inputs exactly ✓");
}
