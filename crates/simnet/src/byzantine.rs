//! Seeded byzantine nodes: a [`Transport`] decorator that *signs* every
//! party uplink into a MAC'd transcript and makes masked nodes
//! misbehave in provable and unprovable ways.
//!
//! [`FaultyTransport`](crate::FaultyTransport) models a hostile
//! *network* — loss, duplication, reordering, corruption — whose
//! damage is detectable but attributable to nobody. [`Misbehaving`]
//! models hostile *parties*: each node's uplinks are authenticated
//! under a per-party key (`base.derive(EVIDENCE_DOMAIN).derive(party)`
//! — the path `[EVIDENCE_DOMAIN, party]` in
//! [`referee_protocol::evidence`] terms), every signed transmission is
//! retained as an [`EvidenceRecord`], and nodes selected by a seeded
//! byzantine mask equivocate, claim out-of-range senders, stamp wrong
//! rounds, splice old payloads into later rounds, emit malformed
//! (non-canonical) uplinks, withhold, over-deliver, or replay captured
//! traffic.
//!
//! The transcript is the accountability boundary: after the session
//! ends (however it ends), [`referee_protocol::evidence::prosecute`]
//! scans it and builds [`EvidenceBundle`]s that a third party verifies
//! with [`referee_protocol::evidence::verify_bundle`] against only the
//! session base key. The harness properties ride on two facts:
//!
//! * a byzantine node can only sign with *its own* key, so every
//!   attributable bundle names a masked node (**no framing**), and
//! * every provable injection leaves a MAC'd record in the transcript,
//!   so a session failure caused by one always yields a verifying
//!   bundle (**completeness**). Pure withholding
//!   ([`under_deliver`](ByzantineConfig::under_deliver)) is the
//!   documented exception: an absent message is not attributable
//!   without signed acknowledgements, so those failures yield no
//!   bundle — and accuse nobody.
//!
//! Referee-internal traffic (the sharded session's round-2 partial
//! exchange) is deliberately **not** signed into the transcript: it is
//! the referee talking to itself, and recording it under party keys
//! would let an accuser re-cut legitimate exchange envelopes as
//! wrong-round "proofs" against honest principals.

use crate::metrics::TransportCounters;
use crate::transport::{Envelope, Transport, REFEREE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use referee_graph::VertexId;
use referee_protocol::evidence::{
    encode_record_body, encode_record_body_raw, prosecute, EvidenceBundle, EvidenceRecord,
    SessionParams, EVIDENCE_DOMAIN, RECORD_KIND_DATA,
};
use referee_protocol::{MacKey, Message};
use std::collections::BTreeSet;

/// Wire-format version byte stamped into record bodies (matches the
/// frame layer's `WIRE_VERSION`, so simnet records and wire frames
/// share one layout).
pub const RECORD_VERSION: u8 = 2;

/// Per-node, per-uplink misbehavior probabilities (all in `[0, 1]`).
/// At most one action fires per uplink (first match in field order).
#[derive(Debug, Clone, Copy)]
pub struct ByzantineConfig {
    /// RNG seed; equal configs behave identically.
    pub seed: u64,
    /// P(a node is byzantine) — the seeded mask (see
    /// [`sample_mask`](ByzantineConfig::sample_mask)).
    pub byzantine: f64,
    /// P(send a second, conflicting payload for the same slot) —
    /// provable, attributable.
    pub equivocate: f64,
    /// P(also send under an out-of-range sender id) — provable,
    /// attributable.
    pub out_of_range: f64,
    /// P(also send a wrong-round copy) — provable, attributable.
    pub wrong_round: f64,
    /// P(splice a captured earlier payload into a later round) —
    /// provable, attributable (surfaces as a wrong-round record).
    pub splice: f64,
    /// P(replace the uplink with a non-canonical body) — provable,
    /// attributable; the referee can only discard the garbage, so the
    /// session starves.
    pub malform: f64,
    /// P(withhold the uplink entirely) — **not** provable: absence
    /// leaves no record.
    pub under_deliver: f64,
    /// P(deliver the identical uplink twice) — not attributable
    /// (at-least-once networks do this to honest traffic too).
    pub over_deliver: f64,
    /// P(re-deliver a captured earlier transmission, possibly an
    /// honest node's) — not attributable for the same reason.
    pub replay: f64,
}

impl ByzantineConfig {
    /// All probabilities zero: the decorator must be transparent.
    pub fn honest(seed: u64) -> Self {
        ByzantineConfig {
            seed,
            byzantine: 0.0,
            equivocate: 0.0,
            out_of_range: 0.0,
            wrong_round: 0.0,
            splice: 0.0,
            malform: 0.0,
            under_deliver: 0.0,
            over_deliver: 0.0,
            replay: 0.0,
        }
    }

    /// Provable misbehavior only — the configuration CI soaks gate on,
    /// where completeness must be 100%.
    pub fn provable(seed: u64) -> Self {
        ByzantineConfig {
            equivocate: 0.5,
            out_of_range: 0.3,
            wrong_round: 0.3,
            splice: 0.2,
            malform: 0.3,
            ..ByzantineConfig::honest(seed)
        }
    }

    /// Everything at once, withholding included.
    pub fn full(seed: u64) -> Self {
        ByzantineConfig {
            under_deliver: 0.2,
            over_deliver: 0.3,
            replay: 0.3,
            ..ByzantineConfig::provable(seed)
        }
    }

    /// The seeded byzantine mask for an `n`-node graph: each node is
    /// byzantine with probability [`byzantine`](ByzantineConfig::byzantine),
    /// drawn from a dedicated stream so the mask does not shift when
    /// action probabilities change.
    pub fn sample_mask(&self, n: usize) -> BTreeSet<VertexId> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6d61_736b_6d61_736b);
        (1..=n as VertexId).filter(|_| rng.gen_bool(self.byzantine)).collect()
    }
}

/// How many injections of each kind a [`Misbehaving`] wrapper
/// performed — the ground truth harness properties condition on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Conflicting same-slot payloads sent.
    pub equivocate: u64,
    /// Out-of-range sender ids claimed.
    pub out_of_range: u64,
    /// Wrong-round copies sent.
    pub wrong_round: u64,
    /// Old payloads spliced into later rounds.
    pub splice: u64,
    /// Non-canonical bodies emitted.
    pub malform: u64,
    /// Uplinks withheld.
    pub under_deliver: u64,
    /// Identical double deliveries.
    pub over_deliver: u64,
    /// Captured transmissions re-delivered.
    pub replay: u64,
}

impl InjectionCounts {
    /// Injections that leave an attributable record in the transcript.
    pub fn provable(&self) -> u64 {
        self.equivocate + self.out_of_range + self.wrong_round + self.splice + self.malform
    }

    /// Every injection, provable or not.
    pub fn total(&self) -> u64 {
        self.provable() + self.under_deliver + self.over_deliver + self.replay
    }
}

/// A [`Transport`] decorator that authenticates party uplinks into a
/// MAC'd transcript and makes masked nodes misbehave (see the module
/// docs for the model and its guarantees).
#[derive(Debug)]
pub struct Misbehaving<T: Transport> {
    inner: T,
    cfg: ByzantineConfig,
    rng: StdRng,
    mask: BTreeSet<VertexId>,
    base: MacKey,
    params: SessionParams,
    transcript: Vec<EvidenceRecord>,
    injections: InjectionCounts,
    /// Captured delivered uplinks: splice and replay material.
    captured: Vec<(Envelope, EvidenceRecord)>,
}

impl<T: Transport> Misbehaving<T> {
    /// Wrap `inner`. `mask` holds the byzantine nodes; `base` is the
    /// session base key the transcript signs under; `params` describes
    /// the session a third-party verifier will check against.
    pub fn new(
        inner: T,
        cfg: ByzantineConfig,
        mask: BTreeSet<VertexId>,
        base: MacKey,
        params: SessionParams,
    ) -> Self {
        Misbehaving {
            inner,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            mask,
            base,
            params,
            transcript: Vec::new(),
            injections: InjectionCounts::default(),
            captured: Vec::new(),
        }
    }

    /// The byzantine mask this wrapper was built with.
    pub fn mask(&self) -> &BTreeSet<VertexId> {
        &self.mask
    }

    /// Every signed transmission so far, in emission order.
    pub fn transcript(&self) -> &[EvidenceRecord] {
        &self.transcript
    }

    /// Injection ground truth so far.
    pub fn injections(&self) -> InjectionCounts {
        self.injections
    }

    /// Session facts a verifier needs.
    pub fn params(&self) -> SessionParams {
        self.params
    }

    /// The session base key (the harness hands it to the third-party
    /// verifier; a real deployment would distribute it out of band).
    pub fn base_key(&self) -> MacKey {
        self.base
    }

    /// Run the independent prosecutor over the transcript.
    pub fn prosecute(&self) -> Vec<EvidenceBundle> {
        prosecute(&self.base, &self.params, &self.transcript)
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn party_path(party: VertexId) -> Vec<u64> {
        vec![EVIDENCE_DOMAIN, party as u64]
    }

    /// Sign `env` as `signer` and append the record to the transcript.
    fn record(&mut self, signer: VertexId, env: &Envelope) -> EvidenceRecord {
        let body = encode_record_body(
            RECORD_VERSION,
            RECORD_KIND_DATA,
            self.params.session,
            env.round,
            env.from,
            env.to,
            &env.payload,
        );
        let rec = EvidenceRecord::sign(&self.base, Self::party_path(signer), body);
        self.transcript.push(rec.clone());
        rec
    }

    /// A payload guaranteed different from `m` (bit-flip, or a 1-bit
    /// message when `m` is empty).
    fn conflicting_payload(m: &Message) -> Message {
        if m.len_bits() == 0 {
            Message::from_bits(vec![0x80], 1).expect("canonical 1-bit message")
        } else {
            m.with_bit_flipped(0)
        }
    }

    /// A signed record whose body is *not* a canonical bit string: a
    /// set padding bit when the payload has one, an excess byte
    /// otherwise. MAC-valid — only the key holder could have produced
    /// it — yet no honest encoder emits it.
    fn malformed_record(&mut self, signer: VertexId, env: &Envelope) -> EvidenceRecord {
        let len_bits = env.payload.len_bits();
        let mut bytes = env.payload.as_bytes().to_vec();
        if !len_bits.is_multiple_of(8) {
            *bytes.last_mut().expect("partial byte exists") |= 1;
        } else {
            bytes.push(0x80);
        }
        let body = encode_record_body_raw(
            RECORD_VERSION,
            RECORD_KIND_DATA,
            self.params.session,
            env.round,
            env.from,
            env.to,
            len_bits as u32,
            &bytes,
        );
        let rec = EvidenceRecord::sign(&self.base, Self::party_path(signer), body);
        self.transcript.push(rec.clone());
        rec
    }

    /// Sign a byzantine variant of `env` (as `signer`) and deliver it.
    fn inject(&mut self, signer: VertexId, env: Envelope) {
        self.record(signer, &env);
        self.inner.send(env);
    }
}

/// The one action (at most) applied to a byzantine uplink.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Action {
    None,
    Equivocate,
    OutOfRange,
    WrongRound,
    Splice,
    Malform,
    UnderDeliver,
    OverDeliver,
    Replay,
}

impl<T: Transport> Transport for Misbehaving<T> {
    fn send(&mut self, env: Envelope) {
        // Only party uplinks are signed (and only they can be
        // misbehaved with): the decision uses the *honest* envelope's
        // fields, before any mutation — referee-internal exchange
        // traffic passes through unsigned and untouched.
        let n = self.params.n;
        let is_uplink = env.to == REFEREE
            && env.from >= 1
            && env.from <= n
            && env.round >= 1
            && env.round <= self.params.round_cap;
        if !is_uplink {
            self.inner.send(env);
            return;
        }
        let signer = env.from;
        let record = self.record(signer, &env);

        let action = if self.mask.contains(&signer) {
            let dice = [
                (Action::Equivocate, self.cfg.equivocate),
                (Action::OutOfRange, self.cfg.out_of_range),
                (Action::WrongRound, self.cfg.wrong_round),
                (Action::Splice, self.cfg.splice),
                (Action::Malform, self.cfg.malform),
                (Action::UnderDeliver, self.cfg.under_deliver),
                (Action::OverDeliver, self.cfg.over_deliver),
                (Action::Replay, self.cfg.replay),
            ];
            dice.into_iter()
                .find(|&(_, p)| p > 0.0 && self.rng.gen_bool(p))
                .map_or(Action::None, |(a, _)| a)
        } else {
            Action::None
        };

        match action {
            Action::UnderDeliver => {
                // Withheld: signed but never delivered. The record the
                // node *would* have sent proves nothing by itself.
                self.injections.under_deliver += 1;
                self.transcript.pop();
                return;
            }
            Action::Malform => {
                // The honest record was never emitted; replace it with
                // the malformed one. Delivery is impossible — an
                // Envelope payload is canonical by construction — so
                // the referee starves, exactly like a real endpoint
                // discarding garbage after MAC verification.
                self.transcript.pop();
                self.injections.malform += 1;
                self.malformed_record(signer, &env);
                return;
            }
            _ => {}
        }

        self.captured.push((env.clone(), record));
        self.inner.send(env.clone());

        match action {
            Action::None | Action::UnderDeliver | Action::Malform => {}
            Action::Equivocate => {
                self.injections.equivocate += 1;
                let mut twin = env;
                twin.payload = Self::conflicting_payload(&twin.payload);
                self.inject(signer, twin);
            }
            Action::OutOfRange => {
                self.injections.out_of_range += 1;
                let mut twin = env;
                twin.from = n + 1 + self.rng.gen_range(0..4);
                self.inject(signer, twin);
            }
            Action::WrongRound => {
                self.injections.wrong_round += 1;
                let mut twin = env;
                twin.round = self.params.round_cap + 1 + self.rng.gen_range(0..8);
                self.inject(signer, twin);
            }
            Action::Splice => {
                self.injections.splice += 1;
                let idx = self.rng.gen_range(0..self.captured.len());
                let mut twin = self.captured[idx].0.clone();
                twin.from = signer;
                twin.round = self.params.round_cap + 1;
                self.inject(signer, twin);
            }
            Action::OverDeliver => {
                self.injections.over_deliver += 1;
                let (copy, rec) = (
                    self.captured.last().expect("just captured").0.clone(),
                    self.captured.last().expect("just captured").1.clone(),
                );
                self.transcript.push(rec);
                self.inner.send(copy);
            }
            Action::Replay => {
                self.injections.replay += 1;
                let idx = self.rng.gen_range(0..self.captured.len());
                let (copy, rec) = self.captured[idx].clone();
                self.transcript.push(rec);
                self.inner.send(copy);
            }
        }
    }

    fn recv(&mut self) -> Option<Envelope> {
        self.inner.recv()
    }

    fn counters(&self) -> TransportCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedOneRoundSession;
    use crate::transport::{PerfectTransport, SessionId};
    use referee_graph::generators;
    use referee_protocol::easy::EdgeCountProtocol;
    use referee_protocol::evidence::{verify_bundle, ProvableError};

    fn key(seed: u64) -> MacKey {
        let a = seed.to_le_bytes();
        let b = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes();
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&a);
        k[8..].copy_from_slice(&b);
        MacKey(k)
    }

    type RunOutcome =
        Result<Result<usize, referee_protocol::DecodeError>, referee_protocol::DecodeError>;

    fn run(
        cfg: ByzantineConfig,
        mask: BTreeSet<VertexId>,
        k: usize,
    ) -> (RunOutcome, Vec<EvidenceBundle>, InjectionCounts, MacKey, SessionParams) {
        let g = generators::grid(3, 4);
        let params = SessionParams { session: 77, n: g.n() as u32, round_cap: 1 };
        let base = key(cfg.seed);
        let mut t = Misbehaving::new(PerfectTransport::new(), cfg, mask, base, params);
        let report = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, k)
            .with_session(SessionId(params.session))
            .run(&mut t);
        (report.outcome, t.prosecute(), t.injections(), base, params)
    }

    #[test]
    fn honest_run_is_transparent_and_silent() {
        let (outcome, bundles, inj, _, _) = run(ByzantineConfig::honest(1), BTreeSet::new(), 3);
        assert_eq!(outcome.unwrap().unwrap(), generators::grid(3, 4).m());
        assert!(bundles.is_empty());
        assert_eq!(inj.total(), 0);
    }

    #[test]
    fn equivocation_fails_session_and_yields_attributing_bundle() {
        let cfg = ByzantineConfig { equivocate: 1.0, ..ByzantineConfig::honest(2) };
        // Node 1 misbehaves: its conflicting twin lands while later
        // uplinks are still outstanding, so the session must fail.
        let mask: BTreeSet<VertexId> = [1].into();
        let (outcome, bundles, inj, base, params) = run(cfg, mask, 4);
        assert!(outcome.is_err(), "conflicting duplicate must fail the session");
        assert_eq!(inj.equivocate as usize, 1);
        let atts: Vec<_> = bundles
            .iter()
            .map(|b| verify_bundle(&base, &params, b).expect("emitted bundles verify"))
            .collect();
        assert!(
            atts.iter().any(|a| a.error == ProvableError::Equivocation && a.culprit == Some(1)),
            "{atts:?}"
        );
    }

    #[test]
    fn withholding_fails_session_but_accuses_nobody() {
        let cfg = ByzantineConfig { under_deliver: 1.0, ..ByzantineConfig::honest(3) };
        let mask: BTreeSet<VertexId> = [5].into();
        let (outcome, bundles, inj, _, _) = run(cfg, mask, 2);
        assert!(outcome.is_err(), "a missing uplink starves the referee");
        assert!(inj.under_deliver >= 1);
        assert!(bundles.is_empty(), "absence is not attributable: {bundles:?}");
    }

    #[test]
    fn malformed_uplink_starves_and_is_provable() {
        let cfg = ByzantineConfig { malform: 1.0, ..ByzantineConfig::honest(4) };
        let mask: BTreeSet<VertexId> = [2].into();
        let (outcome, bundles, _, base, params) = run(cfg, mask, 1);
        assert!(outcome.is_err());
        let atts: Vec<_> =
            bundles.iter().map(|b| verify_bundle(&base, &params, b).unwrap()).collect();
        assert!(atts
            .iter()
            .any(|a| a.error == ProvableError::MalformedUplink && a.culprit == Some(2)));
    }

    #[test]
    fn exchange_partials_are_never_signed() {
        // With every node byzantine and all provable actions armed, the
        // transcript must still contain only round-1-origin records
        // signed under party paths — no record of the round-2 partial
        // exchange (which would be frameable as "wrong round").
        let g = generators::grid(2, 3);
        let params = SessionParams { session: 9, n: g.n() as u32, round_cap: 1 };
        let cfg = ByzantineConfig { byzantine: 1.0, ..ByzantineConfig::provable(5) };
        let mask = cfg.sample_mask(g.n());
        let mut t = Misbehaving::new(PerfectTransport::new(), cfg, mask, key(5), params);
        let _ = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, 3)
            .with_session(SessionId(params.session))
            .run(&mut t);
        for rec in t.transcript() {
            assert_eq!(rec.path[0], EVIDENCE_DOMAIN);
            let party = rec.path[1] as u32;
            assert!((1..=params.n).contains(&party), "party {party}");
        }
    }

    #[test]
    fn mask_sampling_is_deterministic_and_probability_scaled() {
        let cfg = ByzantineConfig { byzantine: 0.3, ..ByzantineConfig::honest(6) };
        assert_eq!(cfg.sample_mask(50), cfg.sample_mask(50));
        assert!(ByzantineConfig::honest(6).sample_mask(50).is_empty());
        let all = ByzantineConfig { byzantine: 1.0, ..ByzantineConfig::honest(6) };
        assert_eq!(all.sample_mask(5).len(), 5);
    }
}
