//! Theorem 1 / Algorithm 1: from any square-detection protocol `Γ`, a
//! protocol `Δ` reconstructing square-free graphs.
//!
//! `Δ^l`: each real vertex `i` of `G` behaves as vertex `i` of the gadget
//! `G'_{s,t}` — whose neighbourhood `N_G(i) ∪ {i+n}` does **not** depend
//! on `(s, t)` — and sends `Γ^l_{2n}(i, N_G(i) ∪ {i+n})`.
//!
//! `Δ^g` (Algorithm 1): for every pair `s ≠ t`, the referee synthesizes
//! the messages of the `n` mirror vertices (these depend only on `Γ`, `s`,
//! `t`, not on `G`), asks `Γ^g_{2n}` whether `G'_{s,t}` has a square, and
//! records the edge accordingly. The `O(n²)` probe loop is parallelized
//! over `s` with scoped threads.

use crate::gadgets;
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{Message, NodeView, OneRoundProtocol};

/// The reconstruction protocol `Δ` built from a square detector `Γ`.
///
/// Correct for square-free inputs (Theorem 1's class); the paper's
/// counting argument shows no frugal `Γ` can exist precisely because this
/// construction works.
#[derive(Debug, Clone, Copy)]
pub struct SquareReduction<P> {
    inner: P,
}

impl<P> SquareReduction<P> {
    /// Wrap a square-detection protocol.
    pub fn new(inner: P) -> Self {
        SquareReduction { inner }
    }
}

impl<P> OneRoundProtocol for SquareReduction<P>
where
    P: OneRoundProtocol<Output = bool> + Sync,
{
    type Output = LabelledGraph;

    fn name(&self) -> String {
        format!("Δ: square-free reconstruction via [{}] (Alg. 1)", self.inner.name())
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n = view.n;
        // Vertex i of G plays vertex i of G'_{s,t}: neighbours N ∪ {i+n}.
        let mut nbrs = Vec::with_capacity(view.degree() + 1);
        nbrs.extend_from_slice(view.neighbours);
        nbrs.push(view.id + n as VertexId);
        self.inner.local(NodeView::new(2 * n, view.id, &nbrs))
    }

    fn global(&self, n: usize, messages: &[Message]) -> LabelledGraph {
        assert_eq!(messages.len(), n, "one message per real vertex");
        if n < 2 {
            return LabelledGraph::new(n);
        }
        let n2 = 2 * n;
        // Template mirror messages: m_j = Γ^l_{2n}(j, {j − n}); these do
        // not depend on G or on (s, t) except at the two probe mirrors.
        let template: Vec<Message> = ((n + 1)..=n2)
            .map(|j| self.inner.local(NodeView::new(n2, j as VertexId, &[(j - n) as VertexId])))
            .collect();

        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
        let rows: Vec<(VertexId, Vec<VertexId>)> = std::thread::scope(|scope| {
            let template = &template;
            let inner = &self.inner;
            let mut handles = Vec::new();
            for tid in 0..threads {
                handles.push(scope.spawn(move || {
                    let mut local_rows = Vec::new();
                    let mut probe: Vec<Message> = Vec::with_capacity(n2);
                    let mut s = (tid + 1) as VertexId;
                    while (s as usize) <= n {
                        let mut adjacent = Vec::new();
                        for t in (s + 1)..=n as VertexId {
                            probe.clear();
                            probe.extend_from_slice(&messages[..n]);
                            probe.extend_from_slice(template);
                            // Patch the two probe mirrors n+s and n+t.
                            let (ns, nt) = (s + n as VertexId, t + n as VertexId);
                            probe[(ns - 1) as usize] =
                                inner.local(NodeView::new(n2, ns, &[s, nt]));
                            probe[(nt - 1) as usize] =
                                inner.local(NodeView::new(n2, nt, &[t, ns]));
                            if inner.global(n2, &probe) {
                                adjacent.push(t);
                            }
                        }
                        local_rows.push((s, adjacent));
                        s += threads as VertexId;
                    }
                    local_rows
                }));
            }
            handles.into_iter().flat_map(|h| h.join().expect("probe worker")).collect()
        });

        let mut g = LabelledGraph::new(n);
        for (s, adjacent) in rows {
            for t in adjacent {
                g.add_edge(s, t).expect("each unordered pair probed once");
            }
        }
        g
    }
}

/// Direct (non-protocol) sanity helper: evaluate the gadget property
/// centrally. Used by tests to cross-check the simulation.
pub fn probe_directly(g: &LabelledGraph, s: VertexId, t: VertexId) -> bool {
    referee_graph::algo::has_square(&gadgets::square_gadget(g, s, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SquareOracle;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{enumerate, generators};
    use referee_protocol::run_protocol;

    #[test]
    fn reconstructs_square_free_graphs_exhaustively() {
        let delta = SquareReduction::new(SquareOracle);
        for n in 2..=4usize {
            for g in enumerate::all_graphs(n) {
                if referee_graph::algo::has_square(&g) {
                    continue;
                }
                let out = run_protocol(&delta, &g);
                assert_eq!(out.output, g, "n={n}");
            }
        }
    }

    #[test]
    fn reconstructs_random_square_free() {
        let mut rng = StdRng::seed_from_u64(40);
        let g = generators::random_square_free(18, &mut rng);
        let delta = SquareReduction::new(SquareOracle);
        assert_eq!(run_protocol(&delta, &g).output, g);
    }

    #[test]
    fn trees_and_cycles_reconstruct() {
        let mut rng = StdRng::seed_from_u64(41);
        let t = generators::random_tree(15, &mut rng);
        let delta = SquareReduction::new(SquareOracle);
        assert_eq!(run_protocol(&delta, &t).output, t);
        let c = generators::cycle(9).unwrap();
        assert_eq!(run_protocol(&delta, &c).output, c);
    }

    #[test]
    fn message_blowup_is_k_of_2n() {
        // §II closing remark: Δ uses k(2n) bits where Γ uses k(n).
        // With the adjacency oracle, k(n) on vertex i = (deg+1)·bits_for(n);
        // Δ's message = Γ at size 2n with degree deg+1.
        let g = generators::path(12);
        let delta = SquareReduction::new(SquareOracle);
        let out = run_protocol(&delta, &g);
        let width_2n = referee_protocol::bits_for(24) as usize;
        // max degree 2 → gadget degree 3 → 4 fields
        assert_eq!(out.stats.max_message_bits, 4 * width_2n);
    }

    #[test]
    fn direct_probe_agrees_with_simulated() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::random_square_free(10, &mut rng);
        let delta = SquareReduction::new(SquareOracle);
        let rebuilt = run_protocol(&delta, &g).output;
        for s in 1..=10u32 {
            for t in (s + 1)..=10 {
                assert_eq!(rebuilt.has_edge(s, t), probe_directly(&g, s, t));
            }
        }
    }

    #[test]
    fn tiny_graphs() {
        let delta = SquareReduction::new(SquareOracle);
        let g1 = LabelledGraph::new(1);
        assert_eq!(run_protocol(&delta, &g1).output, g1);
        let g0 = LabelledGraph::new(0);
        assert_eq!(run_protocol(&delta, &g0).output, g0);
    }

    #[test]
    fn induced_variant_of_theorem1() {
        // §II.A's closing remark: the same Δ works when Γ detects
        // *induced* squares. The gadget's square s–t–(n+t)–(n+s) is
        // chordless, so the iff carries over verbatim.
        use crate::oracle::InducedSquareOracle;
        use referee_graph::algo;
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::random_square_free(12, &mut rng);
        // gadget-level iff
        for s in 1..=12u32 {
            for t in (s + 1)..=12 {
                let gadget = crate::gadgets::square_gadget(&g, s, t);
                assert_eq!(algo::has_induced_square(&gadget), g.has_edge(s, t));
            }
        }
        // protocol-level round trip
        let delta = SquareReduction::new(InducedSquareOracle);
        assert_eq!(run_protocol(&delta, &g).output, g);
    }
}
