//! Combinator laws, property-tested: `Chain` is bit-for-bit the
//! sequential composition, `Extend` never perturbs the base verdict
//! (even with payloads at the bit-width cap), and
//! `OneRoundAsMultiRound` equals the native one-round path for every
//! one-round protocol this crate defines.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::VertexId;
use referee_graph::{generators, LabelledGraph};
use referee_protocol::baseline::AdjacencyListProtocol;
use referee_protocol::combinators::{
    Chain, DegreeCensus, Extend, OneRoundAsMultiRound, UplinkExtension, EXTENSION_LEN_BITS,
    MAX_EXTENSION_BITS,
};
use referee_protocol::easy::{
    DegreeExtremesProtocol, DegreeSequenceProtocol, EdgeCountProtocol, EulerianDegreeProtocol,
    NeighbourhoodSumProtocol,
};
use referee_protocol::multiround::{run_multiround, BoruvkaConnectivity};
use referee_protocol::service::encode_bool_output;
use referee_protocol::{
    run_protocol, BitWriter, DecodeError, Message, NodeView, OneRoundProtocol,
};

const CAP: usize = 64;

fn random_graph(n: usize, seed: u64) -> LabelledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::gnp(n, 0.3, &mut rng)
}

/// Encode a pair of connectivity verdicts with the wire codec, so the
/// chain comparison is over the exact bits a catalog service would
/// ship.
fn bool_pair_bits(a: &Result<bool, DecodeError>, b: &Result<bool, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    encode_bool_output(a).append_to(&mut w);
    encode_bool_output(b).append_to(&mut w);
    Message::from_writer(w)
}

/// The adapter must reproduce the native one-round path exactly: same
/// output, one referee round, no node→node traffic.
fn adapter_matches_native<P>(p: &P, g: &LabelledGraph)
where
    P: OneRoundProtocol + Sync,
    P::Output: PartialEq + std::fmt::Debug,
{
    let native = run_protocol(p, g).output;
    let (adapted, stats) = run_multiround(&OneRoundAsMultiRound(p), g, 4);
    assert_eq!(adapted.expect("adapter finishes in one step"), native, "{}", p.name());
    assert_eq!(stats.rounds, 1, "{}", p.name());
    assert_eq!(stats.max_link_bits, 0, "{}", p.name());
}

/// An extension shipping exactly `bits` alternating bits in round 1 —
/// used to probe the length-prefix cap.
#[derive(Debug, Clone, Copy)]
struct Padding {
    bits: usize,
}

impl UplinkExtension for Padding {
    type Summary = usize;

    fn name(&self) -> String {
        format!("padding({})", self.bits)
    }

    fn init(&self, _n: usize) -> usize {
        0
    }

    fn extra(&self, _view: NodeView<'_>, round: usize) -> Message {
        if round != 1 {
            return Message::empty();
        }
        let mut w = BitWriter::new();
        for i in 0..self.bits {
            w.push_bit(i % 2 == 0);
        }
        Message::from_writer(w)
    }

    fn absorb(
        &self,
        summary: &mut usize,
        _n: usize,
        round: usize,
        _sender: VertexId,
        extra: &Message,
    ) -> Result<(), DecodeError> {
        if round == 1 && extra.len_bits() != self.bits {
            return Err(DecodeError::Truncated);
        }
        *summary += extra.len_bits();
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Chain(P, Q)` on a random graph is *the* sequential composition:
    /// outputs pair up, round counters concatenate, and the wire
    /// encoding of the chained verdicts is bit-for-bit the
    /// concatenation of the two standalone encodings.
    #[test]
    fn chain_is_bitwise_sequential_composition(n in 1usize..24, seed in any::<u64>()) {
        let g = random_graph(n, seed);
        let chain = Chain::new(BoruvkaConnectivity, BoruvkaConnectivity);
        let (out, stats) = run_multiround(&chain, &g, 2 * CAP);
        let (p_out, p_stats) = run_multiround(&BoruvkaConnectivity, &g, CAP);
        let (q_out, q_stats) = run_multiround(&BoruvkaConnectivity, &g, CAP);
        let (a, b) = out.expect("chain terminates");
        let p_out = p_out.expect("P terminates");
        let q_out = q_out.expect("Q terminates");
        prop_assert_eq!(&a, &p_out);
        prop_assert_eq!(&b, &q_out);
        prop_assert_eq!(stats.rounds, p_stats.rounds + q_stats.rounds);

        let chained = bool_pair_bits(&a, &b);
        let sequential = bool_pair_bits(&p_out, &q_out);
        prop_assert_eq!(chained.len_bits(), sequential.len_bits());
        prop_assert_eq!(chained.as_bytes(), sequential.as_bytes());
    }

    /// The round-0 edge case: `P`'s referee is `Done` on its very first
    /// step (a one-round adapter), so the switch downlink is the
    /// round-1 downlink and `Q` runs unshifted semantics afterwards.
    #[test]
    fn chain_handles_first_protocol_finishing_immediately(
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, seed);
        let chain = Chain::new(OneRoundAsMultiRound(EdgeCountProtocol), BoruvkaConnectivity);
        let (out, stats) = run_multiround(&chain, &g, CAP + 1);
        let (count, conn) = out.expect("chain terminates");
        let (p_out, p_stats) =
            run_multiround(&OneRoundAsMultiRound(EdgeCountProtocol), &g, 4);
        let (q_out, q_stats) = run_multiround(&BoruvkaConnectivity, &g, CAP);
        prop_assert_eq!(p_stats.rounds, 1);
        prop_assert_eq!(count, p_out.expect("one step"));
        prop_assert_eq!(conn, q_out.expect("Q terminates"));
        prop_assert_eq!(stats.rounds, 1 + q_stats.rounds);
    }

    /// `Extend` leaves the base output untouched on random graphs: the
    /// `.0` verdict encodes to exactly the bits the bare protocol
    /// would ship, rounds match, and the census reads `2·|E|`.
    #[test]
    fn extend_preserves_base_output(n in 1usize..24, seed in any::<u64>()) {
        let g = random_graph(n, seed);
        let ext = Extend::new(BoruvkaConnectivity, DegreeCensus);
        let (out, stats) = run_multiround(&ext, &g, CAP);
        let (base_out, base_stats) = run_multiround(&BoruvkaConnectivity, &g, CAP);
        let (verdict, census) = out.expect("extended run terminates");
        let base_out = base_out.expect("base run terminates");
        prop_assert_eq!(&verdict, &base_out);
        prop_assert_eq!(census.expect("honest census decodes"), 2 * g.m() as u64);
        prop_assert_eq!(stats.rounds, base_stats.rounds);
        let got = encode_bool_output(&verdict);
        let want = encode_bool_output(&base_out);
        prop_assert_eq!(got.len_bits(), want.len_bits());
        prop_assert_eq!(got.as_bytes(), want.as_bytes());
    }

    /// Payloads all the way to the bit-width cap survive the 16-bit
    /// length prefix and never perturb the base verdict.
    #[test]
    fn extend_payloads_up_to_the_cap(extra in 0usize..2, seed in any::<u64>()) {
        let bits = MAX_EXTENSION_BITS - extra;
        let g = random_graph(4, seed);
        let ext = Extend::new(BoruvkaConnectivity, Padding { bits });
        let (out, stats) = run_multiround(&ext, &g, CAP);
        let (base_out, _) = run_multiround(&BoruvkaConnectivity, &g, CAP);
        let (verdict, padding) = out.expect("terminates");
        prop_assert_eq!(verdict, base_out.expect("base terminates"));
        prop_assert_eq!(padding.expect("padding absorbs"), 4 * bits);
        prop_assert!(stats.max_uplink_bits >= bits + EXTENSION_LEN_BITS as usize);
    }

    /// Every one-round protocol this crate defines rides the adapter
    /// without changing its answer.
    #[test]
    fn one_round_adapters_match_native_path(n in 1usize..20, seed in any::<u64>()) {
        let g = random_graph(n, seed);
        adapter_matches_native(&EdgeCountProtocol, &g);
        adapter_matches_native(&DegreeSequenceProtocol, &g);
        adapter_matches_native(&DegreeExtremesProtocol, &g);
        adapter_matches_native(&EulerianDegreeProtocol, &g);
        adapter_matches_native(&NeighbourhoodSumProtocol, &g);
        adapter_matches_native(&AdjacencyListProtocol, &g);
    }
}
