//! §III.A — the forest special case (degeneracy 1).
//!
//! Each vertex sends the triple the paper describes:
//!
//! > its identifier, its degree in T, and the sum of the identifiers of
//! > its neighbours — "this clearly can be encoded using less than
//! > 4 log n bits".
//!
//! The referee repeatedly prunes a leaf `v`: the sum field *is* the ID of
//! its unique neighbour `w`, so it records the edge and replaces `w`'s
//! triple by `(ID(w), deg(w) − 1, sum(w) − ID(v))`. If pruning stalls with
//! edges left, the graph contains a cycle — the referee "can … decide
//! whether the graph contains a cycle", which is this protocol's
//! recognition mode.
//!
//! This is [`DegeneracyProtocol`](crate::DegeneracyProtocol) at `k = 1`
//! with a leaner encoding (a plain sum instead of a power-sum vector); the
//! equivalence is pinned by tests, and the bench compares their constants.

use crate::protocol::Reconstruction;
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{bits_for, BitWriter, DecodeError, Message, NodeView, OneRoundProtocol};

/// The §III.A triple protocol for forests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForestProtocol;

/// Field widths: degree < n needs `bits_for(n-1)`; the neighbour-ID sum is
/// at most `Σ_{i=1..n} i = n(n+1)/2`.
fn widths(n: usize) -> (u32, u32) {
    let deg = bits_for(n.saturating_sub(1));
    let sum = bits_for(n * (n + 1) / 2);
    (deg, sum)
}

/// Exact message size of the forest protocol in bits (< 4·log₂ n as the
/// paper remarks — we drop the explicit ID field since the channel index
/// already carries it; the degeneracy protocol keeps the ID for strict
/// faithfulness, so both layouts are exercised in the workspace).
pub fn forest_message_bits(n: usize) -> usize {
    let (d, s) = widths(n);
    (d + s) as usize
}

impl OneRoundProtocol for ForestProtocol {
    type Output = Result<Reconstruction, DecodeError>;

    fn name(&self) -> String {
        "forest reconstruction (§III.A)".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let (dw, sw) = widths(view.n);
        let sum: u64 = view.neighbours.iter().map(|&w| w as u64).sum();
        let mut w = BitWriter::new();
        w.write_bits(view.degree() as u64, dw);
        w.write_bits(sum, sw);
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let (dw, sw) = widths(n);
        let mut deg = Vec::with_capacity(n);
        let mut sum = Vec::with_capacity(n);
        for (i, m) in messages.iter().enumerate() {
            let mut r = m.reader();
            let d = r.read_bits(dw)? as usize;
            let s = r.read_bits(sw)?;
            if d >= n.max(1) {
                return Err(DecodeError::OutOfRange(format!(
                    "vertex {} claims degree {d}",
                    i + 1
                )));
            }
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing bits".into()));
            }
            deg.push(d);
            sum.push(s);
        }
        if deg.iter().sum::<usize>() % 2 != 0 {
            return Err(DecodeError::Inconsistent("odd degree sum".into()));
        }

        let mut g = LabelledGraph::new(n);
        let mut leaves: Vec<u32> = (0..n as u32).filter(|&i| deg[i as usize] == 1).collect();
        while let Some(vi) = leaves.pop() {
            let v = vi as usize;
            if deg[v] != 1 {
                continue; // stale entry: pruned down to 0 meanwhile
            }
            let w64 = sum[v];
            if w64 == 0 || w64 > n as u64 || w64 == (v + 1) as u64 {
                return Err(DecodeError::Inconsistent(format!(
                    "leaf {} has invalid neighbour sum {w64}",
                    v + 1
                )));
            }
            let w = (w64 - 1) as usize;
            if deg[w] == 0 {
                return Err(DecodeError::Inconsistent(format!(
                    "leaf {} points at exhausted vertex {}",
                    v + 1,
                    w + 1
                )));
            }
            g.add_edge((v + 1) as VertexId, (w + 1) as VertexId).map_err(|_| {
                DecodeError::Inconsistent(format!(
                    "duplicate edge {{{},{}}} decoded",
                    v + 1,
                    w + 1
                ))
            })?;
            deg[v] = 0;
            sum[v] = 0;
            deg[w] -= 1;
            sum[w] = sum[w].checked_sub((v + 1) as u64).ok_or_else(|| {
                DecodeError::Inconsistent(format!("sum underflow at vertex {}", w + 1))
            })?;
            if deg[w] == 1 {
                leaves.push(w as u32);
            }
        }

        if deg.iter().any(|&d| d > 0) {
            // Leafless residue with edges left ⇒ a cycle exists.
            return Ok(Reconstruction::NotInClass);
        }
        if sum.iter().any(|&s| s != 0) {
            return Err(DecodeError::Inconsistent(
                "nonzero neighbour sum on exhausted vertex".into(),
            ));
        }
        Ok(Reconstruction::Graph(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::generators;
    use referee_protocol::run_protocol;

    #[test]
    fn reconstructs_random_forests() {
        let mut rng = StdRng::seed_from_u64(10);
        for n in [1usize, 2, 10, 100, 1000] {
            let g = generators::random_forest(n, 0.85, &mut rng);
            let out = run_protocol(&ForestProtocol, &g);
            assert_eq!(out.output.unwrap(), Reconstruction::Graph(g), "n={n}");
        }
    }

    #[test]
    fn reconstructs_trees_and_stars() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = generators::random_tree(200, &mut rng);
        assert_eq!(run_protocol(&ForestProtocol, &t).output.unwrap(), Reconstruction::Graph(t));
        let s = generators::star(50).unwrap();
        assert_eq!(run_protocol(&ForestProtocol, &s).output.unwrap(), Reconstruction::Graph(s));
    }

    #[test]
    fn detects_cycles() {
        let c = generators::cycle(10).unwrap();
        assert_eq!(
            run_protocol(&ForestProtocol, &c).output.unwrap(),
            Reconstruction::NotInClass
        );
        // a lollipop: cycle with a tail — the tail prunes, the cycle stays
        let mut g = generators::cycle(5).unwrap().grow(8);
        g.add_edge(5, 6).unwrap();
        g.add_edge(6, 7).unwrap();
        g.add_edge(7, 8).unwrap();
        assert_eq!(
            run_protocol(&ForestProtocol, &g).output.unwrap(),
            Reconstruction::NotInClass
        );
    }

    #[test]
    fn message_under_4_log_n() {
        for n in [16usize, 256, 4096, 65536] {
            let bits = forest_message_bits(n);
            assert!((bits as f64) < 4.0 * (n as f64).log2(), "n={n}: {bits} bits ≥ 4 log n");
        }
    }

    #[test]
    fn agrees_with_degeneracy_protocol_k1() {
        use crate::DegeneracyProtocol;
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..5 {
            let g = generators::random_forest(40, 0.7, &mut rng);
            let forest = run_protocol(&ForestProtocol, &g).output.unwrap();
            let degen = run_protocol(&DegeneracyProtocol::new(1), &g).output.unwrap();
            assert_eq!(forest, degen);
        }
    }

    #[test]
    fn corrupted_messages_rejected_or_harmless() {
        let g = generators::random_tree(12, &mut StdRng::seed_from_u64(13));
        let msgs: Vec<Message> = g
            .vertices()
            .map(|v| ForestProtocol.local(NodeView::new(12, v, g.neighbourhood(v))))
            .collect();
        let original = msgs[3].clone();
        let mut msgs = msgs;
        for bit in 0..original.len_bits() {
            msgs[3] = original.with_bit_flipped(bit);
            match ForestProtocol.global(12, &msgs) {
                Err(_) | Ok(Reconstruction::NotInClass) => {}
                Ok(Reconstruction::Graph(decoded)) => {
                    assert_eq!(decoded, g, "bit {bit} silently changed the forest");
                }
            }
        }
    }

    #[test]
    fn two_vertex_edge() {
        let g = LabelledGraph::from_edges(2, [(1, 2)]).unwrap();
        assert_eq!(run_protocol(&ForestProtocol, &g).output.unwrap(), Reconstruction::Graph(g));
    }
}
