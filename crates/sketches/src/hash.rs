//! Deterministic hashing for the public-coin sketches.
//!
//! The "public coins" of the model are realized as a shared 64-bit seed:
//! every node and the referee derive identical hash functions from it, so
//! the protocol stays one-round (no coordination needed beyond the seed,
//! which is part of the protocol description).

/// SplitMix64 finalizer: a fast 64-bit mixer with full avalanche.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A keyed hash function `h : u64 → u64` derived from `(seed, stream)`.
#[derive(Debug, Clone, Copy)]
pub struct KeyedHash {
    key: u64,
}

impl KeyedHash {
    /// Derive an independent-looking hash for a labelled stream.
    pub fn new(seed: u64, stream: u64) -> Self {
        KeyedHash { key: splitmix64(seed ^ splitmix64(stream)) }
    }

    /// Hash a value.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        splitmix64(self.key ^ x.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// Sampling predicate: is `x` retained at level `l`? Retains with
    /// probability `2^{-l}` (level 0 retains everything).
    #[inline]
    pub fn retained_at(&self, x: u64, level: u32) -> bool {
        level == 0 || self.hash(x).trailing_zeros() >= level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h1 = KeyedHash::new(7, 3);
        let h2 = KeyedHash::new(7, 3);
        assert_eq!(h1.hash(12345), h2.hash(12345));
        assert_ne!(KeyedHash::new(7, 4).hash(12345), h1.hash(12345));
    }

    #[test]
    fn level_zero_retains_all() {
        let h = KeyedHash::new(1, 1);
        for x in 0..100u64 {
            assert!(h.retained_at(x, 0));
        }
    }

    #[test]
    fn retention_halves_per_level() {
        let h = KeyedHash::new(99, 0);
        let n = 100_000u64;
        for level in [1u32, 3, 6] {
            let kept = (0..n).filter(|&x| h.retained_at(x, level)).count() as f64;
            let expect = n as f64 / 2f64.powi(level as i32);
            assert!(
                (kept - expect).abs() < expect * 0.15 + 50.0,
                "level {level}: kept {kept}, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn retention_is_nested() {
        // retained at level l+1 ⇒ retained at level l
        let h = KeyedHash::new(5, 2);
        for x in 0..10_000u64 {
            for l in 0..10u32 {
                if h.retained_at(x, l + 1) {
                    assert!(h.retained_at(x, l));
                }
            }
        }
    }

    #[test]
    fn avalanche_sanity() {
        // flipping one input bit flips ~half the output bits on average
        let mut total = 0u32;
        let samples = 200u64;
        for x in 0..samples {
            let a = splitmix64(x);
            let b = splitmix64(x ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((20.0..44.0).contains(&avg), "avg flipped bits {avg}");
    }
}
