//! Injectable time: the [`Clock`] trait and its two implementations.
//!
//! Sessions stamp round latencies
//! ([`SessionMetrics::round_seconds`](crate::SessionMetrics::round_seconds)
//! and the phase wall times inside `RunStats`) from a clock they are
//! *given*, not from
//! `std::time::Instant` directly. The default [`RealClock`] keeps the old
//! behaviour bit-for-bit; a [`ManualClock`] makes latency metrics exactly
//! reproducible in tests, and lets an I/O reactor (`wirenet`) stamp
//! latencies from its own poll loop instead of per-session syscalls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotonic time source measured in seconds from an arbitrary epoch.
///
/// Only *differences* of [`Clock::now`] values are ever used, so the
/// epoch is free; implementations must be monotone non-decreasing.
pub trait Clock: Send + Sync {
    /// Seconds elapsed since the clock's epoch.
    fn now(&self) -> f64;
}

/// A shareable clock handle, cheap to clone into thousands of sessions.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time (monotonic, from a process-wide epoch).
#[derive(Debug, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> f64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
    }
}

/// The process-wide default clock handle (a shared [`RealClock`]).
pub fn real_clock() -> SharedClock {
    static REAL: OnceLock<SharedClock> = OnceLock::new();
    REAL.get_or_init(|| Arc::new(RealClock)).clone()
}

/// A clock that only moves when told to — deterministic latency metrics
/// for tests, and poll-loop-stamped latencies for reactors.
///
/// Stores the current time as `f64` bits in an atomic, so one
/// `Arc<ManualClock>` can be advanced by a driver thread while sessions
/// read it.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `t = 0`.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    /// Advance by `dt` seconds (`dt ≥ 0`; a monotonicity violation is a
    /// driver bug, not a data error). Safe under concurrent advancers:
    /// the read-modify-write is a CAS loop, so no tick is ever lost.
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "clock must not run backwards (dt = {dt})");
        self.bits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |bits| {
                Some((f64::from_bits(bits) + dt).to_bits())
            })
            .expect("fetch_update closure never returns None");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let c = real_clock();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.25);
        assert_eq!(c.now(), 1.75);
    }

    #[test]
    #[should_panic(expected = "run backwards")]
    fn manual_clock_rejects_negative_steps() {
        ManualClock::new().advance(-1.0);
    }

    #[test]
    fn manual_clock_concurrent_advances_lose_nothing() {
        // Dyadic step: 0.25 × 4000 is exact in f64, so any lost update
        // shows up as a hard inequality.
        let c = ManualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(0.25);
                    }
                });
            }
        });
        assert_eq!(c.now(), 1000.0);
    }
}
