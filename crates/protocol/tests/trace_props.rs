//! Trace stitching algebra, pinned: segment merge is order-invariant
//! across any split and merge shape (left fold vs pairwise tree vs one
//! snapshot that saw everything), per-`(session, endpoint)` sequence
//! numbers stay strictly monotone after stitching, the ring keeps
//! exactly the newest `capacity` events under overflow, and snapshots
//! survive their canonical wire encoding exactly — with non-canonical
//! encodings rejected.

use proptest::prelude::*;
use referee_protocol::trace::{FlightRecorder, TraceEvent, TraceKind, TraceSnapshot};
use referee_protocol::{BitWriter, Message};

/// A raw event list with globally unique `seq` (what any set of real
/// recorders produces: each endpoint's recorder hands out unique seqs).
fn events(max: usize) -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u64..4, 0u32..5, any::<u64>(), 0u8..14, any::<u64>()), 0..max)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (session, endpoint, ts_us, code, payload))| TraceEvent {
                    session,
                    endpoint,
                    seq: i as u64,
                    ts_us,
                    kind: TraceKind::from_code(code).expect("codes 0..14 are valid"),
                    payload,
                })
                .collect()
        })
}

/// Merge a list of segments as a pairwise tree (the shape a fan-in of
/// shard hosts produces).
fn tree_merge(mut parts: Vec<TraceSnapshot>) -> TraceSnapshot {
    if parts.is_empty() {
        return TraceSnapshot::new();
    }
    while parts.len() > 1 {
        let mut next = Vec::new();
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(&b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.pop().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Split the event set across `k` segments by any congruence class;
    /// left fold, reversed fold and pairwise tree all stitch back to
    /// the snapshot that saw everything. Merging the result into itself
    /// changes nothing (idempotent).
    #[test]
    fn stitching_is_order_invariant(evs in events(200), k in 1usize..=6) {
        let whole = TraceSnapshot::from_events(evs.clone());
        let segments: Vec<TraceSnapshot> = (0..k)
            .map(|i| {
                let part: Vec<TraceEvent> = evs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % k == i)
                    .map(|(_, e)| *e)
                    .collect();
                TraceSnapshot::from_events(part)
            })
            .collect();
        let mut fold = TraceSnapshot::new();
        for s in &segments {
            fold.merge(s);
        }
        let mut rev = TraceSnapshot::new();
        for s in segments.iter().rev() {
            rev.merge(s);
        }
        let tree = tree_merge(segments.clone());
        prop_assert_eq!(&fold, &whole);
        prop_assert_eq!(&rev, &whole);
        prop_assert_eq!(&tree, &whole);
        let mut twice = fold.clone();
        twice.merge(&fold);
        prop_assert_eq!(&twice, &whole, "merge is idempotent");
    }

    /// After stitching arbitrary segment splits, every
    /// `(session, endpoint)` lane's sequence numbers are strictly
    /// increasing in canonical order — the causal-order guarantee a
    /// post-mortem relies on.
    #[test]
    fn lane_seq_is_monotone_after_stitching(evs in events(200), k in 1usize..=6) {
        let segments: Vec<TraceSnapshot> = (0..k)
            .map(|i| {
                let part: Vec<TraceEvent> = evs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % k == i)
                    .map(|(_, e)| *e)
                    .collect();
                TraceSnapshot::from_events(part)
            })
            .collect();
        let stitched = tree_merge(segments);
        for w in stitched.events().windows(2) {
            if w[0].session == w[1].session && w[0].endpoint == w[1].endpoint {
                prop_assert!(w[0].seq < w[1].seq, "lane seq must strictly increase");
            }
        }
    }

    /// Encode → decode is the identity, including for stitched
    /// snapshots, and decoding distributes over merge.
    #[test]
    fn encode_decode_round_trip(a in events(150), b in events(150)) {
        let (sa, sb) = (TraceSnapshot::from_events(a), TraceSnapshot::from_events(b));
        let da = TraceSnapshot::decode(&sa.encode()).expect("own encoding decodes");
        let db = TraceSnapshot::decode(&sb.encode()).expect("own encoding decodes");
        prop_assert_eq!(&da, &sa);
        prop_assert_eq!(&db, &sb);
        let mut merged_decoded = da;
        merged_decoded.merge(&db);
        let mut merged = sa;
        merged.merge(&sb);
        prop_assert_eq!(&merged_decoded, &merged);
        prop_assert_eq!(
            &TraceSnapshot::decode(&merged.encode()).expect("decodes"),
            &merged
        );
    }

    /// Under overflow the ring keeps exactly the newest `capacity`
    /// events (drop-oldest), and reports every displaced one.
    #[test]
    fn ring_keeps_the_newest_under_overflow(
        total in 0usize..200,
        capacity in 1usize..64,
    ) {
        let r = FlightRecorder::with_capacity(capacity);
        for i in 0..total {
            r.record(i as u64, 7, 3, TraceKind::Uplink, i as u64);
        }
        let snap = r.snapshot();
        let kept = total.min(capacity);
        prop_assert_eq!(snap.len(), kept);
        prop_assert_eq!(r.dropped(), total.saturating_sub(capacity) as u64);
        // The survivors are exactly the `kept` highest payloads.
        let payloads: Vec<u64> = snap.events().iter().map(|e| e.payload).collect();
        let expect: Vec<u64> = ((total - kept)..total).map(|i| i as u64).collect();
        prop_assert_eq!(payloads, expect);
    }
}

/// Replicates the private minimal-width field coding, so the strictness
/// tests below can author deliberately malformed snapshots.
fn write_compact(w: &mut BitWriter, v: u64) {
    let width = (64 - v.leading_zeros()).max(1);
    w.write_gamma(u64::from(width));
    w.write_bits(v, width);
}

fn write_event(w: &mut BitWriter, e: &TraceEvent, kind_code: u64) {
    write_compact(w, e.session);
    write_compact(w, u64::from(e.endpoint));
    write_compact(w, e.seq);
    write_compact(w, e.ts_us);
    w.write_bits(kind_code, 5);
    write_compact(w, e.payload);
}

fn ev(session: u64, endpoint: u32, seq: u64) -> TraceEvent {
    TraceEvent { session, endpoint, seq, ts_us: 10, kind: TraceKind::Uplink, payload: 1 }
}

#[test]
fn decode_rejects_out_of_canonical_order() {
    let (a, b) = (ev(1, 0, 0), ev(1, 0, 1));
    let mut w = BitWriter::new();
    w.write_gamma(3);
    write_event(&mut w, &b, b.kind as u64); // deliberately reversed
    write_event(&mut w, &a, a.kind as u64);
    assert!(TraceSnapshot::decode(&Message::from_writer(w)).is_err());
}

#[test]
fn decode_rejects_duplicate_events() {
    let a = ev(1, 0, 0);
    let mut w = BitWriter::new();
    w.write_gamma(3);
    write_event(&mut w, &a, a.kind as u64);
    write_event(&mut w, &a, a.kind as u64);
    assert!(TraceSnapshot::decode(&Message::from_writer(w)).is_err());
}

#[test]
fn decode_rejects_unknown_kind_codes() {
    let a = ev(1, 0, 0);
    let mut w = BitWriter::new();
    w.write_gamma(2);
    write_event(&mut w, &a, 29); // 5-bit field, but no such kind
    assert!(TraceSnapshot::decode(&Message::from_writer(w)).is_err());
}

#[test]
fn decode_rejects_trailing_bits() {
    let snap = TraceSnapshot::from_events(vec![ev(1, 0, 0)]);
    let mut w = BitWriter::new();
    w.write_gamma(2);
    let e = snap.events()[0];
    write_event(&mut w, &e, e.kind as u64);
    w.write_bits(0, 1); // one spare bit after a valid snapshot
    assert!(TraceSnapshot::decode(&Message::from_writer(w)).is_err());
}
