//! E7, E8, E10, E11: the positive protocol across the paper's graph
//! classes — exact reconstruction, recognition, generalized degeneracy,
//! and message sizes against the Lemma 2 bound.

use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::{
    forest::forest_message_bits, lemma2_bound_bits, DegeneracyProtocol, ForestProtocol,
    GeneralizedDegeneracyProtocol, Reconstruction,
};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::{run_protocol, OneRoundProtocol};

/// One reconstruction measurement.
#[derive(Debug, Clone)]
pub struct ReconRow {
    /// Experiment id.
    pub experiment: &'static str,
    /// Family description.
    pub family: String,
    /// Graph size.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Protocol parameter k.
    pub k: usize,
    /// Verdict: "exact", "rejected (not in class)" or "WRONG".
    pub verdict: &'static str,
    /// Max message bits.
    pub bits: usize,
    /// Lemma 2 bound (or §III.A bound for forests).
    pub bound: usize,
    /// Referee decode seconds.
    pub decode_s: f64,
}

fn run_case<P>(
    experiment: &'static str,
    family: String,
    k: usize,
    bound: usize,
    protocol: &P,
    g: &LabelledGraph,
    expect_in_class: bool,
) -> ReconRow
where
    P: OneRoundProtocol<Output = Result<Reconstruction, referee_protocol::DecodeError>> + Sync,
{
    let out = run_protocol(protocol, g);
    let verdict = match out.output {
        Ok(Reconstruction::Graph(ref h)) if h == g && expect_in_class => "exact",
        Ok(Reconstruction::NotInClass) if !expect_in_class => "rejected (not in class)",
        _ => "WRONG",
    };
    ReconRow {
        experiment,
        family,
        n: g.n(),
        m: g.m(),
        k,
        verdict,
        bits: out.stats.max_message_bits,
        bound,
        decode_s: out.stats.global_seconds,
    }
}

/// Run the full E7/E8/E10/E11 grid at the given base size.
pub fn run_grid(n: usize, seed: u64) -> Vec<ReconRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();

    // E7: forests under the §III.A triple protocol.
    let f = generators::random_forest(n, 0.9, &mut rng);
    rows.push(run_case(
        "E7",
        "random forest".to_string(),
        1,
        forest_message_bits(n),
        &ForestProtocol,
        &f,
        true,
    ));

    // E8: Theorem 5 across classes.
    let cases: Vec<(String, usize, LabelledGraph)> = vec![
        ("random tree".into(), 1, generators::random_tree(n, &mut rng)),
        ("grid (planar)".into(), 2, grid_of(n)),
        ("2-tree (treewidth 2)".into(), 2, generators::k_tree(n, 2, &mut rng)),
        ("4-tree (treewidth 4)".into(), 4, generators::k_tree(n.max(5), 4, &mut rng)),
        ("random 3-degenerate".into(), 3, generators::random_k_degenerate(n, 3, 0.9, &mut rng)),
        ("random 6-degenerate".into(), 6, generators::random_k_degenerate(n, 6, 0.9, &mut rng)),
        // the tight planar witness: 5-regular, planar, degeneracy exactly 5
        ("icosahedron (planar, k=5 tight)".into(), 5, generators::icosahedron()),
    ];
    for (family, k, g) in cases {
        let bound = lemma2_bound_bits(g.n(), k);
        rows.push(run_case("E8", family, k, bound, &DegeneracyProtocol::new(k), &g, true));
    }

    // E10: recognition must reject out-of-class graphs.
    let dense = generators::gnp(n.min(120), 0.5, &mut rng);
    rows.push(run_case(
        "E10",
        "G(n, 1/2) vs k = 2 (degeneracy ≈ n/4)".into(),
        2,
        lemma2_bound_bits(dense.n(), 2),
        &DegeneracyProtocol::new(2),
        &dense,
        false,
    ));

    // E11: generalized degeneracy on dense complements.
    let sparse = generators::random_k_degenerate(n.min(150), 2, 1.0, &mut rng);
    let dense = sparse.complement();
    let bound = lemma2_bound_bits(dense.n(), 2);
    rows.push(run_case(
        "E11",
        "complement of 2-degenerate (generalized protocol)".into(),
        2,
        bound,
        &GeneralizedDegeneracyProtocol::new(2),
        &dense,
        true,
    ));

    rows
}

/// Largest grid with at most `n` vertices, padded to exactly n by a path.
fn grid_of(n: usize) -> LabelledGraph {
    let side = (n as f64).sqrt() as usize;
    let g = generators::grid(side, side);
    if g.n() == n {
        return g;
    }
    // pad with a pendant path to hit exactly n vertices (still planar,
    // still degeneracy 2)
    let mut g = g.grow(n);
    for v in (side * side + 1)..=n {
        let prev = if v == side * side + 1 { 1 } else { (v - 1) as u32 };
        g.add_edge(prev, v as u32).expect("pad edge");
    }
    g
}

/// Render rows.
pub fn to_table(rows: &[ReconRow]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "exp".into(),
        "family".into(),
        "n".into(),
        "m".into(),
        "k".into(),
        "verdict".into(),
        "bits/msg".into(),
        "Lemma2 bound".into(),
        "decode ms".into(),
    ]];
    for r in rows {
        out.push(vec![
            r.experiment.into(),
            r.family.clone(),
            r.n.to_string(),
            r.m.to_string(),
            r.k.to_string(),
            r.verdict.into(),
            r.bits.to_string(),
            r.bound.to_string(),
            format!("{:.2}", r.decode_s * 1e3),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_clean_at_small_n() {
        for row in run_grid(60, 7) {
            assert_ne!(row.verdict, "WRONG", "{row:?}");
            assert!(row.bits <= row.bound, "{row:?}");
        }
    }

    #[test]
    fn grid_of_exact_size() {
        for n in [49usize, 50, 64, 70] {
            let g = grid_of(n);
            assert_eq!(g.n(), n);
            assert!(referee_graph::algo::degeneracy_ordering(&g).degeneracy <= 2, "n={n}");
        }
    }
}
