//! The simulator: runs a one-round protocol on a concrete graph.
//!
//! The paper distinguishes the *communication time complexity* (number of
//! rounds — here always one) from the *local time complexity* (the cost of
//! the local computations); [`RunStats`] reports both wall times plus the
//! quantity the frugality definition bounds: the maximum message size in
//! bits, `|Γ^l(G)| = max_i |Γ^l_n(i, N_G(i))|`.
//!
//! The local phase is embarrassingly parallel (each node computes from its
//! own view only — the model guarantees it), so it fans out across threads
//! with `std::thread::scope` when the graph is large enough to pay for it.

use crate::model::{NodeView, OneRoundProtocol};
use crate::Message;
use referee_graph::LabelledGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Below this many vertices the local phase runs sequentially (thread
/// spawn overhead dominates under ~10k cheap local calls).
const DEFAULT_PARALLEL_THRESHOLD: usize = 2048;

/// 0 = "not yet initialised from the environment".
static PARALLEL_THRESHOLD: AtomicUsize = AtomicUsize::new(0);

/// The current local-phase parallelism threshold: simulators fan the
/// local phase out across threads only for graphs with at least this
/// many vertices.
///
/// Resolution order: the last [`set_parallel_threshold`] call, else the
/// `REFEREE_PARALLEL_THRESHOLD` environment variable, else 2048. Callers
/// that drive *many* protocol runs concurrently (e.g. the `simnet`
/// scheduler) set this to `usize::MAX` so per-run parallelism does not
/// oversubscribe their worker pool.
pub fn parallel_threshold() -> usize {
    match PARALLEL_THRESHOLD.load(Ordering::Relaxed) {
        0 => {
            let v = std::env::var("REFEREE_PARALLEL_THRESHOLD")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_PARALLEL_THRESHOLD)
                .max(1);
            PARALLEL_THRESHOLD.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Override the local-phase parallelism threshold process-wide.
/// `usize::MAX` disables nested parallelism entirely; values are clamped
/// to at least 1 (0 would mean "re-read the environment").
pub fn set_parallel_threshold(threshold: usize) {
    PARALLEL_THRESHOLD.store(threshold.max(1), Ordering::Relaxed);
}

/// Measurements from one protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Graph size.
    pub n: usize,
    /// `max_i |m_i|` in bits — the frugality quantity.
    pub max_message_bits: usize,
    /// `Σ_i |m_i|` in bits.
    pub total_message_bits: usize,
    /// Wall time of the local phase (all nodes).
    pub local_seconds: f64,
    /// Wall time of the referee's global phase.
    pub global_seconds: f64,
}

impl RunStats {
    /// `max_message_bits / log₂(n)` — the empirical frugality constant
    /// for this run.
    ///
    /// For `n ≤ 1` the divisor is degenerate (0 or −∞), so the ratio is
    /// measured against 1 bit — the minimum width [`crate::bits_for`]
    /// ever produces — keeping it **finite** on single-node and empty
    /// graphs (the old `f64::INFINITY` sentinel tripped `ratio < c`
    /// assertions in sweeps that included tiny graphs; the same fix as
    /// [`MultiRoundStats::frugality_ratio`](crate::multiround::MultiRoundStats::frugality_ratio)).
    pub fn frugality_ratio(&self) -> f64 {
        if self.n <= 1 {
            return self.max_message_bits as f64;
        }
        self.max_message_bits as f64 / (self.n as f64).log2()
    }
}

/// A protocol output together with its measurements.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// The referee's output `Γ(G)`.
    pub output: O,
    /// Stats of the run.
    pub stats: RunStats,
}

/// Compute the full message vector `Γ^l(G)` (parallel when worthwhile).
pub fn local_phase<P>(protocol: &P, g: &LabelledGraph) -> Vec<Message>
where
    P: OneRoundProtocol + Sync,
{
    let n = g.n();
    if n < parallel_threshold() {
        return (1..=n as u32)
            .map(|v| protocol.local(NodeView::new(n, v, g.neighbourhood(v))))
            .collect();
    }
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(32);
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Message> = vec![Message::empty(); n];
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (off, m) in slot.iter_mut().enumerate() {
                    let v = (start + off + 1) as u32;
                    *m = protocol.local(NodeView::new(n, v, g.neighbourhood(v)));
                }
            });
        }
    });
    out
}

/// Run `protocol` on `g`: local phase at every node, then the referee's
/// global phase on the collected message vector.
pub fn run_protocol<P>(protocol: &P, g: &LabelledGraph) -> RunOutcome<P::Output>
where
    P: OneRoundProtocol + Sync,
{
    let n = g.n();
    let t0 = Instant::now();
    let messages = local_phase(protocol, g);
    let local_seconds = t0.elapsed().as_secs_f64();

    let max_message_bits = messages.iter().map(Message::len_bits).max().unwrap_or(0);
    let total_message_bits = messages.iter().map(Message::len_bits).sum();

    let t1 = Instant::now();
    let output = protocol.global(n, &messages);
    let global_seconds = t1.elapsed().as_secs_f64();

    RunOutcome {
        output,
        stats: RunStats {
            n,
            max_message_bits,
            total_message_bits,
            local_seconds,
            global_seconds,
        },
    }
}

/// Assemble a message vector from **asynchronous arrivals**.
///
/// §I.B: "since we only consider a single round of communication, the
/// network may be asynchronous. Indeed, the referee can wait until it has
/// received one message from every vertex (this only requires that the
/// referee knows the size of the network)." This function is that wait:
/// it accepts `(sender, message)` pairs in *any* order and produces the
/// ID-indexed vector `Γ^l(G)`, rejecting duplicates, unknown senders and
/// missing nodes.
///
/// Since the sharded-referee refactor this is literally a one-shard run
/// of [`crate::shard::RefereeShard`] — splitting the same arrivals
/// across any shard count and merging the
/// [`PartialState`](crate::shard::PartialState)s in any order reproduces
/// this function's result bit for bit (pinned by property tests). The
/// error verdict is therefore **canonical** (independent of arrival
/// order): smallest out-of-range sender, else smallest duplicated
/// sender, else smallest missing node. Canonicality is bought by
/// ingesting the *whole* stream before judging (the old code failed on
/// the first fault in arrival order, which no sharded assembly can
/// reproduce); faulty streams cost a full pass, honest ones an ordered
/// map instead of a flat vector — both invisible next to the protocol
/// work they feed.
pub fn assemble_from_arrivals(
    n: usize,
    arrivals: impl IntoIterator<Item = (referee_graph::VertexId, Message)>,
) -> Result<Vec<Message>, crate::DecodeError> {
    let mut shard = crate::shard::RefereeShard::new(n, 1, 0);
    for (sender, msg) in arrivals {
        // A single shard owns every ID, so ingest cannot see a routing
        // fault; any duplicate — identical or not — is rejected, which
        // is the referee's contract (exactly one message per node).
        if let crate::shard::Arrival::Duplicate { .. } = shard.ingest(sender, msg)? {
            shard.note_duplicate(sender);
        }
    }
    shard.into_partial().finish()
}

/// Run a protocol with messages delivered in an arbitrary order
/// (deterministic given `order`, which must be a permutation of `1..=n`).
/// The output must equal the synchronous run — a theorem of the model,
/// pinned by tests.
pub fn run_protocol_async<P>(
    protocol: &P,
    g: &LabelledGraph,
    order: &[referee_graph::VertexId],
) -> Result<P::Output, crate::DecodeError>
where
    P: OneRoundProtocol + Sync,
{
    let n = g.n();
    let messages = local_phase(protocol, g);
    let arrivals = order.iter().map(|&v| (v, messages[(v - 1) as usize].clone()));
    let assembled = assemble_from_arrivals(n, arrivals)?;
    Ok(protocol.global(n, &assembled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;
    use crate::bits_for;

    /// Node sends its own ID; referee returns the sorted list (checks
    /// message ordering and parallel/sequential agreement).
    struct Echo;

    impl OneRoundProtocol for Echo {
        type Output = Vec<u64>;

        fn name(&self) -> String {
            "echo".into()
        }

        fn local(&self, view: NodeView<'_>) -> Message {
            let mut w = BitWriter::new();
            w.write_bits(view.id as u64, bits_for(view.n));
            Message::from_writer(w)
        }

        fn global(&self, n: usize, messages: &[Message]) -> Vec<u64> {
            messages.iter().map(|m| m.reader().read_bits(bits_for(n)).unwrap()).collect()
        }
    }

    #[test]
    fn message_vector_is_id_ordered() {
        let g = referee_graph::generators::path(10);
        let out = run_protocol(&Echo, &g);
        assert_eq!(out.output, (1..=10u64).collect::<Vec<_>>());
        assert_eq!(out.stats.n, 10);
        assert_eq!(out.stats.max_message_bits, bits_for(10) as usize);
        assert_eq!(out.stats.total_message_bits, 10 * bits_for(10) as usize);
    }

    #[test]
    fn parallel_path_agrees_with_sequential() {
        // Large enough to trigger the threaded path.
        let g = referee_graph::generators::path(3000);
        let par = local_phase(&Echo, &g);
        let seq: Vec<Message> = (1..=3000u32)
            .map(|v| Echo.local(NodeView::new(3000, v, g.neighbourhood(v))))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn frugality_ratio() {
        let g = referee_graph::generators::path(1024);
        let out = run_protocol(&Echo, &g);
        // 11 bits per message on n = 1024 → ratio 1.1
        assert!((out.stats.frugality_ratio() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = referee_graph::LabelledGraph::new(0);
        let out = run_protocol(&Echo, &g);
        assert!(out.output.is_empty());
        assert_eq!(out.stats.max_message_bits, 0);
    }

    #[test]
    fn tiny_graphs_report_finite_frugality_ratios() {
        // n ≤ 1 used to return f64::INFINITY (the sentinel the
        // multi-round stats shared); both now measure against 1 bit.
        let empty = run_protocol(&Echo, &referee_graph::LabelledGraph::new(0));
        assert_eq!(empty.stats.frugality_ratio(), 0.0);
        let single = run_protocol(&Echo, &referee_graph::LabelledGraph::new(1));
        let ratio = single.stats.frugality_ratio();
        assert!(ratio.is_finite() && ratio >= 1.0, "ratio {ratio}");
    }

    #[test]
    fn async_delivery_is_order_invariant() {
        // §I.B: one round ⇒ asynchrony is harmless. Reversed and shuffled
        // arrival orders give the synchronous output.
        let g = referee_graph::generators::petersen();
        let sync = run_protocol(&Echo, &g).output;
        let reversed: Vec<u32> = (1..=10u32).rev().collect();
        assert_eq!(run_protocol_async(&Echo, &g, &reversed).unwrap(), sync);
        let shuffled = [3u32, 7, 1, 10, 5, 2, 9, 4, 8, 6];
        assert_eq!(run_protocol_async(&Echo, &g, &shuffled).unwrap(), sync);
    }

    #[test]
    fn assemble_rejects_bad_arrivals() {
        use crate::DecodeError;
        let m = Message::empty();
        // duplicate sender
        let dup = assemble_from_arrivals(2, [(1, m.clone()), (1, m.clone())]);
        assert!(matches!(dup, Err(DecodeError::Inconsistent(_))));
        // missing sender
        let missing = assemble_from_arrivals(2, [(1, m.clone())]);
        assert!(matches!(missing, Err(DecodeError::Inconsistent(_))));
        // unknown sender
        let unknown = assemble_from_arrivals(2, [(1, m.clone()), (3, m.clone())]);
        assert!(matches!(unknown, Err(DecodeError::OutOfRange(_))));
        // complete set works
        let ok = assemble_from_arrivals(2, [(2, m.clone()), (1, m.clone())]);
        assert_eq!(ok.unwrap().len(), 2);
    }
}
