//! Lemma 1 in numbers: exact family counts vs the frugal message budget,
//! plus explicit pigeonhole collision witnesses.
//!
//! Run with: `cargo run --release --example counting_argument`

use referee_one_round::graph::{enumerate, graph6};
use referee_one_round::reductions::collision::{
    find_collision, DegreeSumSketch, ModularSumSketch,
};
use referee_one_round::reductions::counting;

fn main() {
    println!("== Lemma 1: log₂ g(n) vs the c·n·log₂(n) budget ==\n");
    println!(
        "{:>3} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "n", "all graphs", "bipartite", "square-free", "budget c=2", "budget c=8"
    );
    for n in 2..=7usize {
        let all = counting::count_all_graphs(n).log2();
        let bip = counting::count_balanced_bipartite(n).log2();
        let sf = (counting::count_square_free_exact(n) as f64).log2();
        println!(
            "{:>3} {:>14.1} {:>14.1} {:>14.1} {:>12} {:>12}",
            n,
            all,
            bip,
            sf,
            counting::budget_log2(n, 2),
            counting::budget_log2(n, 8),
        );
    }
    println!("\n(at small n the budget dominates; asymptotically the families win:");
    println!(
        " all graphs ~ n²/2, square-free ~ n^1.5/2 [Kleitman–Winston], budget ~ c·n·log n)"
    );
    for n in [64usize, 256, 1024, 4096] {
        println!(
            "  n = {n:>5}: n²/2 = {:>9.0}   n^1.5/2 = {:>8.0}   8·n·log₂n = {:>8}",
            (n as f64).powi(2) / 2.0,
            counting::kleitman_winston_exponent(n),
            counting::budget_log2(n, 8),
        );
    }

    println!("\n== The pigeonhole, concretely ==");
    // A coarse frugal sketch collides within enumeration range:
    let (a, b) = find_collision(&ModularSumSketch { bits: 1 }, enumerate::all_graphs(4))
        .expect("mod-2 sums collide at n = 4");
    println!(
        "mod-2 sum sketch cannot distinguish {} from {} (graph6) —",
        graph6::to_graph6(&a),
        graph6::to_graph6(&b)
    );
    println!("  {a:?}\n  {b:?}");
    println!(
        "  ⇒ NO global function, however clever, can decide anything that differs on them."
    );

    // The honest §III.A sketch is injective at tiny n…
    for n in 2..=5 {
        assert!(find_collision(&DegreeSumSketch, enumerate::all_graphs(n)).is_none());
    }
    println!("\n(deg, Σ) sketch: collision-free on ALL graphs up to n = 5 —");
    // …but Lemma 1 pigeonholes it at moderate n:
    let n0 = referee_one_round::reductions::collision::guaranteed_collision_n(
        DegreeSumSketch::message_bits,
    );
    println!(
        "  yet at n = {n0}, it spends {} bits total < C({n0},2) = {} edge bits, \
         so two indistinguishable graphs MUST exist (Lemma 1).",
        n0 * DegreeSumSketch::message_bits(n0),
        n0 * (n0 - 1) / 2
    );
}
