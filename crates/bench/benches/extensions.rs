//! E18–E22 (runtime side): sketch protocols, adaptive rounds, the
//! treewidth ablation (exact DP vs greedy heuristics), and the
//! generalized diameter gadget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::adaptive::adaptive_reconstruct;
use referee_degeneracy::DegeneracyProtocol;
use referee_graph::{algo, generators};
use referee_protocol::run_protocol;
use referee_reductions::gadgets::diameter_t_gadget;
use referee_sketches::kconn::sketch_edge_connectivity;
use referee_sketches::sketch_bipartiteness;

fn bench_sketch_bipartiteness(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/sketch_bipartiteness");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let mut rng = StdRng::seed_from_u64(70);
        let g = generators::gnp(n, 3.0 / n as f64, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| sketch_bipartiteness(g, 7))
        });
    }
    group.finish();
}

fn bench_sketch_kconn(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/sketch_kconn");
    group.sample_size(10);
    let n = 128usize;
    let mut rng = StdRng::seed_from_u64(71);
    let g = generators::gnp(n, 6.0 / n as f64, &mut rng);
    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &g, |b, g| {
            b.iter(|| sketch_edge_connectivity(g, 7, k))
        });
    }
    group.finish();
}

fn bench_adaptive_vs_oneround(c: &mut Criterion) {
    // Adaptive (unknown k) pays its extra rounds in referee re-pruning;
    // the one-round protocol needs k up front. Same reconstruction out.
    let mut group = c.benchmark_group("extensions/adaptive_vs_oneround");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(72);
    for d in [2usize, 5] {
        let g = generators::random_k_degenerate(150, d, 0.9, &mut rng);
        let k = algo::degeneracy_ordering(&g).degeneracy.max(1);
        group.bench_with_input(BenchmarkId::new("adaptive", d), &g, |b, g| {
            b.iter(|| adaptive_reconstruct(g).0.clone().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("oneround_known_k", d), &g, |b, g| {
            let p = DegeneracyProtocol::new(k);
            b.iter(|| run_protocol(&p, g).output.unwrap())
        });
    }
    group.finish();
}

fn bench_treewidth_ablation(c: &mut Criterion) {
    // Exact subset DP explodes exponentially; the greedy orders stay
    // polynomial — the measured gap justifies the heuristic default.
    let mut group = c.benchmark_group("extensions/treewidth");
    group.sample_size(10);
    for n in [10usize, 14, 18] {
        let mut rng = StdRng::seed_from_u64(73);
        let g = generators::gnp(n, 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::new("exact_dp", n), &g, |b, g| {
            b.iter(|| algo::treewidth_exact(g))
        });
        group.bench_with_input(BenchmarkId::new("min_fill", n), &g, |b, g| {
            b.iter(|| algo::min_fill_order(g).width)
        });
        group.bench_with_input(BenchmarkId::new("min_degree", n), &g, |b, g| {
            b.iter(|| algo::min_degree_order(g).width)
        });
    }
    group.finish();
}

fn bench_diameter_t_gadget(c: &mut Criterion) {
    // Gadget construction + decision across thresholds: the check cost
    // grows with t only through the (t-2)-vertex pendant path.
    let mut group = c.benchmark_group("extensions/diameter_t_gadget");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(74);
    let g = generators::gnp(64, 0.1, &mut rng);
    for t in [3u32, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &g, |b, g| {
            b.iter(|| {
                let gd = diameter_t_gadget(g, 1, 64, t);
                algo::diameter_at_most(&gd, t)
            })
        });
    }
    group.finish();
}

fn bench_mincut(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/stoer_wagner");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(75);
        let g = generators::gnp(n, 0.3, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| algo::edge_connectivity(g))
        });
    }
    group.finish();
}

fn bench_easy_protocols(c: &mut Criterion) {
    // The positive boundary is also the cheapest: these should sit far
    // below the reconstruction protocols at the same n.
    use referee_protocol::easy::{EdgeCountProtocol, NeighbourhoodSumProtocol};
    let mut group = c.benchmark_group("extensions/easy_protocols");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(76);
    let g = generators::gnp(1024, 4.0 / 1024.0, &mut rng);
    group.bench_with_input(BenchmarkId::new("edge_count", 1024), &g, |b, g| {
        b.iter(|| run_protocol(&EdgeCountProtocol, g).output.unwrap())
    });
    group.bench_with_input(BenchmarkId::new("fingerprint", 1024), &g, |b, g| {
        b.iter(|| run_protocol(&NeighbourhoodSumProtocol, g).output.unwrap())
    });
    group.finish();
}

fn bench_scale_free_reconstruction(c: &mut Criterion) {
    // E24 runtime side: Theorem 5 on Barabási–Albert graphs.
    let mut group = c.benchmark_group("extensions/scale_free_thm5");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::barabasi_albert(n, 3, &mut rng).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let p = DegeneracyProtocol::new(3);
            b.iter(|| run_protocol(&p, g).output.clone().unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sketch_bipartiteness,
    bench_sketch_kconn,
    bench_adaptive_vs_oneround,
    bench_treewidth_ablation,
    bench_diameter_t_gadget,
    bench_mincut,
    bench_easy_protocols,
    bench_scale_free_reconstruction
);
criterion_main!(benches);
