//! Square (C4) detection and counting.
//!
//! Theorem 1: no one-round frugal protocol decides whether G contains a
//! square, because square-free graphs are too numerous (2^Θ(n^{3/2}),
//! Kleitman–Winston) to fit the message budget. Both the gadget validation
//! (E3) and the counting experiment (E5) need exact square queries.
//!
//! Method: a C4 exists iff some vertex pair has ≥ 2 common neighbours.
//! Enumerating length-2 paths costs O(Σ_v deg(v)²), the standard bound.

use crate::{LabelledGraph, VertexId};
use std::collections::HashMap;

#[inline]
fn pack(u: u32, w: u32) -> u64 {
    debug_assert!(u < w);
    ((u as u64) << 32) | w as u64
}

/// Does `G` contain a 4-cycle (not necessarily induced)?
pub fn has_square(g: &LabelledGraph) -> bool {
    find_square(g).is_some()
}

/// Find one square `(a, b, c, d)` (cycle order `a-b-c-d-a`), if any.
pub fn find_square(g: &LabelledGraph) -> Option<(VertexId, VertexId, VertexId, VertexId)> {
    // seen[(u,w)] = the first midpoint v of a path u - v - w
    let mut seen: HashMap<u64, u32> = HashMap::new();
    for v in 1..=g.n() as VertexId {
        let nbrs = g.neighbourhood(v);
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                let key = pack(u.min(w), u.max(w));
                match seen.get(&key) {
                    Some(&mid) if mid != v => {
                        // u - v - w and u - mid - w close a 4-cycle
                        return Some((u, v, w, mid));
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(key, v);
                    }
                }
            }
        }
    }
    None
}

/// Exact number of 4-cycles: `Σ_{u<w} C(codeg(u,w), 2) / 2` (each square
/// is counted once per diagonal pair).
pub fn count_squares(g: &LabelledGraph) -> u64 {
    let mut codeg: HashMap<u64, u32> = HashMap::new();
    for v in 1..=g.n() as VertexId {
        let nbrs = g.neighbourhood(v);
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                *codeg.entry(pack(u.min(w), u.max(w))).or_insert(0) += 1;
            }
        }
    }
    let twice: u64 = codeg.values().map(|&c| (c as u64) * (c as u64 - 1) / 2).sum();
    debug_assert_eq!(twice % 2, 0, "each square has exactly two diagonals");
    twice / 2
}

/// The square-freeness predicate used by the Lemma 1 counting experiment.
pub fn is_square_free(g: &LabelledGraph) -> bool {
    !has_square(g)
}

/// Does `G` contain an **induced** 4-cycle (a C4 with neither chord)?
///
/// §II.A's closing remark: "By the same arguments we deduce that there is
/// no frugal one-round protocol testing if the graph has a square as an
/// induced subgraph." The gadget experiments validate that remark, which
/// needs this exact predicate.
pub fn has_induced_square(g: &LabelledGraph) -> bool {
    find_induced_square(g).is_some()
}

/// Find one induced square `(a, b, c, d)` in cycle order, if any.
///
/// Enumerates diagonal pairs as in [`find_square`], then filters chords:
/// the cycle `u - v - w - mid - u` is induced iff `{u, w}` and `{v, mid}`
/// are both non-edges.
pub fn find_induced_square(
    g: &LabelledGraph,
) -> Option<(VertexId, VertexId, VertexId, VertexId)> {
    // For each non-adjacent pair (u, w), collect common neighbours; any two
    // non-adjacent common neighbours close an induced C4.
    let mut common: HashMap<u64, Vec<u32>> = HashMap::new();
    for v in 1..=g.n() as VertexId {
        let nbrs = g.neighbourhood(v);
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if g.has_edge(u, w) {
                    continue; // chord u-w: cannot be a diagonal of an induced C4
                }
                let mids = common.entry(pack(u.min(w), u.max(w))).or_default();
                for &mid in mids.iter() {
                    if !g.has_edge(mid, v) {
                        return Some((u, v, w, mid));
                    }
                }
                mids.push(v);
            }
        }
    }
    None
}

/// Exact number of induced 4-cycles.
pub fn count_induced_squares(g: &LabelledGraph) -> u64 {
    // Each induced C4 has exactly two (non-adjacent) diagonal pairs, and
    // for each diagonal the two midpoints are non-adjacent. Count pairs of
    // non-adjacent common neighbours per non-adjacent pair, halve.
    let mut twice = 0u64;
    for u in 1..=g.n() as VertexId {
        for w in (u + 1)..=g.n() as VertexId {
            if g.has_edge(u, w) {
                continue;
            }
            let nu = g.neighbourhood(u);
            let nw = g.neighbourhood(w);
            // sorted intersection
            let (mut i, mut j) = (0, 0);
            let mut mids: Vec<u32> = Vec::new();
            while i < nu.len() && j < nw.len() {
                match nu[i].cmp(&nw[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        mids.push(nu[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            for (a, &x) in mids.iter().enumerate() {
                for &y in &mids[a + 1..] {
                    if !g.has_edge(x, y) {
                        twice += 1;
                    }
                }
            }
        }
    }
    debug_assert_eq!(twice % 2, 0);
    twice / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn c4_detected() {
        let g = generators::cycle(4).unwrap();
        assert!(has_square(&g));
        assert_eq!(count_squares(&g), 1);
        let (a, b, c, d) = find_square(&g).unwrap();
        // verify it is a real cycle
        assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(c, d) && g.has_edge(d, a));
    }

    #[test]
    fn triangle_and_trees_square_free() {
        assert!(is_square_free(&generators::cycle(3).unwrap()));
        assert!(is_square_free(&generators::cycle(5).unwrap()));
        let t = LabelledGraph::from_edges(5, [(1, 2), (2, 3), (3, 4), (3, 5)]).unwrap();
        assert!(is_square_free(&t));
        assert_eq!(count_squares(&t), 0);
    }

    #[test]
    fn k23_counts() {
        // K_{2,3} has C(3,2) = 3 squares
        let g = generators::complete_bipartite(2, 3);
        assert_eq!(count_squares(&g), 3);
        assert!(has_square(&g));
    }

    #[test]
    fn complete_graph_counts() {
        // K5: 3 * C(5,4) = 15 four-cycles
        let g = generators::complete(5);
        assert_eq!(count_squares(&g), 15);
    }

    #[test]
    fn count_matches_brute_force_on_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let g = generators::gnp(12, 0.35, &mut rng);
            let n = g.n() as u32;
            let mut brute = 0u64;
            // enumerate 4-cycles a-b-c-d with canonical a = min, b < d
            for a in 1..=n {
                for b in 1..=n {
                    for c in 1..=n {
                        for d in 1..=n {
                            if a < b
                                && a < c
                                && a < d
                                && b < d
                                && g.has_edge(a, b)
                                && g.has_edge(b, c)
                                && g.has_edge(c, d)
                                && g.has_edge(d, a)
                                && a != c
                                && b != d
                            {
                                brute += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(count_squares(&g), brute, "graph {g:?}");
            assert_eq!(has_square(&g), brute > 0);
        }
    }

    #[test]
    fn empty_graphs() {
        assert!(!has_square(&LabelledGraph::new(0)));
        assert!(!has_square(&LabelledGraph::new(6)));
    }

    #[test]
    fn shared_midpoint_not_a_square() {
        // star K_{1,3}: many pairs share ONE midpoint, no square
        let g = generators::star(4).unwrap();
        assert!(!has_square(&g));
    }

    #[test]
    fn induced_square_basic() {
        // C4 is its own induced square…
        let c4 = generators::cycle(4).unwrap();
        assert!(has_induced_square(&c4));
        assert_eq!(count_induced_squares(&c4), 1);
        let (a, b, c, d) = find_induced_square(&c4).unwrap();
        assert!(
            c4.has_edge(a, b) && c4.has_edge(b, c) && c4.has_edge(c, d) && c4.has_edge(d, a)
        );
        assert!(!c4.has_edge(a, c) && !c4.has_edge(b, d));
        // …but K4 contains squares only WITH chords.
        let k4 = generators::complete(4);
        assert!(has_square(&k4));
        assert!(!has_induced_square(&k4));
        assert_eq!(count_induced_squares(&k4), 0);
    }

    #[test]
    fn induced_count_on_bipartite() {
        // K_{2,3}: all 3 squares are induced (no edges within parts).
        let g = generators::complete_bipartite(2, 3);
        assert_eq!(count_induced_squares(&g), 3);
        // K_{3,3}: C(3,2)² = 9 squares, all induced.
        let g = generators::complete_bipartite(3, 3);
        assert_eq!(count_induced_squares(&g), 9);
        assert_eq!(count_squares(&g), 9);
    }

    #[test]
    fn induced_matches_brute_force_on_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..10 {
            let g = generators::gnp(10, 0.4, &mut rng);
            let n = g.n() as u32;
            let mut brute = 0u64;
            for a in 1..=n {
                for b in 1..=n {
                    for c in 1..=n {
                        for d in 1..=n {
                            if a < b
                                && a < c
                                && a < d
                                && b < d
                                && g.has_edge(a, b)
                                && g.has_edge(b, c)
                                && g.has_edge(c, d)
                                && g.has_edge(d, a)
                                && !g.has_edge(a, c)
                                && !g.has_edge(b, d)
                                && a != c
                                && b != d
                            {
                                brute += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(count_induced_squares(&g), brute, "graph {g:?}");
            assert_eq!(has_induced_square(&g), brute > 0);
        }
    }
}
