//! [`OneRoundProtocol`]: Definition 1 of the paper.
//!
//! > A one-round protocol Γ is a family (Γ^l_n, Γ^g_n), where
//! > Γ^l_n : {1..n} × P({1..n}) → {0,1}^* is the local function and
//! > Γ^g_n : ({0,1}^*)^n → {0,1}^* is the global function.
//!
//! Two properties of the definition shape this trait:
//!
//! 1. **The local function is total on (id, neighbourhood) pairs**: "Γ^l_n
//!    can be evaluated in any pair (i, N)". The reduction protocols of §II
//!    rely on this — the referee *synthesizes* messages for vertices of the
//!    gadget graph `G'_{s,t}` that do not exist in `G`. Hence `local` takes
//!    an arbitrary [`NodeView`], not a handle into a concrete graph.
//! 2. **No computability constraints**: "we do not care about the
//!    complexity of Γ^l_n and Γ^g_n". Implementations may be as expensive
//!    as they like; the simulator reports wall time separately from
//!    message bits.

use crate::Message;
use referee_graph::VertexId;

/// The exact local knowledge of a node (§I.B): its identifier, the set of
/// identifiers of its neighbours, and the total number of nodes `n`.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    /// Total number of nodes in the graph (known to every node).
    pub n: usize,
    /// This node's identifier, in `1..=n`.
    pub id: VertexId,
    /// Sorted identifiers of this node's neighbours.
    pub neighbours: &'a [VertexId],
}

impl<'a> NodeView<'a> {
    /// Construct a view; validates the invariants a real node would enjoy.
    pub fn new(n: usize, id: VertexId, neighbours: &'a [VertexId]) -> Self {
        debug_assert!(id >= 1 && id as usize <= n, "id {id} not in 1..={n}");
        debug_assert!(
            neighbours.windows(2).all(|w| w[0] < w[1]),
            "neighbours must be strictly sorted"
        );
        debug_assert!(
            neighbours.iter().all(|&v| v >= 1 && v as usize <= n && v != id),
            "neighbours must be in 1..={n} and exclude id"
        );
        NodeView { n, id, neighbours }
    }

    /// The node's degree.
    pub fn degree(&self) -> usize {
        self.neighbours.len()
    }
}

/// A one-round protocol `Γ = (Γ^l, Γ^g)` with typed referee output.
///
/// `Output` is the referee's answer: a boolean for decision protocols, a
/// reconstructed graph for reconstruction protocols, etc.
pub trait OneRoundProtocol {
    /// The referee's result type.
    type Output;

    /// Human-readable protocol name (used in reports and benches).
    fn name(&self) -> String;

    /// The local function `Γ^l_n(i, N)`: compute the message node `i`
    /// sends to the referee, given only the node's local view.
    fn local(&self, view: NodeView<'_>) -> Message;

    /// The global function `Γ^g_n`: the referee's computation from the
    /// message vector (`messages[i]` is from the node with ID `i + 1`).
    fn global(&self, n: usize, messages: &[Message]) -> Self::Output;
}

/// Blanket impl so `&P` is a protocol wherever `P` is (lets the reductions
/// borrow an inner protocol without cloning it).
impl<P: OneRoundProtocol + ?Sized> OneRoundProtocol for &P {
    type Output = P::Output;

    fn name(&self) -> String {
        (**self).name()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        (**self).local(view)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        (**self).global(n, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    /// Toy protocol: every node reports its degree; the referee sums them
    /// (and halves, by the handshake lemma, recovering |E|).
    struct EdgeCount;

    impl OneRoundProtocol for EdgeCount {
        type Output = usize;

        fn name(&self) -> String {
            "edge-count".into()
        }

        fn local(&self, view: NodeView<'_>) -> Message {
            let mut w = BitWriter::new();
            w.write_bits(view.degree() as u64, crate::bits_for(view.n));
            Message::from_writer(w)
        }

        fn global(&self, n: usize, messages: &[Message]) -> usize {
            let width = crate::bits_for(n);
            let total: u64 = messages
                .iter()
                .map(|m| m.reader().read_bits(width).expect("degree field"))
                .sum();
            (total / 2) as usize
        }
    }

    #[test]
    fn toy_protocol_counts_edges() {
        let g = referee_graph::generators::complete(5);
        let views: Vec<Vec<u32>> = g.vertices().map(|v| g.neighbourhood(v).to_vec()).collect();
        let msgs: Vec<Message> = g
            .vertices()
            .map(|v| EdgeCount.local(NodeView::new(5, v, &views[(v - 1) as usize])))
            .collect();
        assert_eq!(EdgeCount.global(5, &msgs), 10);
    }

    #[test]
    fn local_function_total_on_arbitrary_views() {
        // Evaluate Γ^l on a (id, N) pair that belongs to NO concrete graph
        // we constructed — the reductions do exactly this.
        let synthetic = NodeView::new(10, 7, &[1, 2, 9]);
        let m = EdgeCount.local(synthetic);
        assert_eq!(m.reader().read_bits(crate::bits_for(10)).unwrap(), 3);
    }

    #[test]
    fn reference_blanket_impl() {
        let p = EdgeCount;
        let r = &p;
        assert_eq!(r.name(), "edge-count");
        fn takes_protocol<P: OneRoundProtocol<Output = usize>>(p: P) -> String {
            p.name()
        }
        assert_eq!(takes_protocol(&p), "edge-count");
    }
}
