//! E1–E3 (runtime side): gadget construction and property detection —
//! the per-probe cost that drives the Δ reductions' O(n²) loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::algo;
use referee_graph::generators;
use referee_reductions::gadgets;

fn bench_gadget_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadgets/build");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(20);
        let g = generators::gnp(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("square_2n", n), &g, |b, g| {
            b.iter(|| gadgets::square_gadget(g, 1, (g.n() / 2) as u32))
        });
        group.bench_with_input(BenchmarkId::new("diameter_n3", n), &g, |b, g| {
            b.iter(|| gadgets::diameter_gadget(g, 1, (g.n() / 2) as u32))
        });
        group.bench_with_input(BenchmarkId::new("triangle_n1", n), &g, |b, g| {
            b.iter(|| gadgets::triangle_gadget(g, 1, (g.n() / 2) as u32))
        });
    }
    group.finish();
}

fn bench_property_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadgets/detect");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::gnp(n, 4.0 / n as f64, &mut rng);
        let sq = gadgets::square_gadget(&g, 1, (n / 2) as u32);
        let di = gadgets::diameter_gadget(&g, 1, (n / 2) as u32);
        let tr = gadgets::triangle_gadget(&g, 1, (n / 2) as u32);
        group.bench_with_input(BenchmarkId::new("has_square", n), &sq, |b, g| {
            b.iter(|| algo::has_square(g))
        });
        group.bench_with_input(BenchmarkId::new("diameter_at_most_3", n), &di, |b, g| {
            b.iter(|| algo::diameter_at_most(g, 3))
        });
        group.bench_with_input(BenchmarkId::new("has_triangle", n), &tr, |b, g| {
            b.iter(|| algo::has_triangle(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gadget_build, bench_property_detection);
criterion_main!(benches);
