//! E30 (systems side): cross-host shard placement — the sharded
//! referee with in-process workers vs the same shards placed on remote
//! shard hosts (real loopback sockets, per-shard keys, journal/replay),
//! swept over k = 1/2/4/8.
//!
//! Expectation: outcomes identical (digests pin the assembled vectors
//! either way); remote placement pays one extra socket hop per shard
//! partial, so throughput lands below in-process but stays in the same
//! order of magnitude — that gap is the price of shards that can live
//! on other machines.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_placement`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{render_table, section, write_bench_json, BenchRecord, Percentiles};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::referee::local_phase;
use referee_protocol::HistSnapshot;
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{
    vector_digest, AuthKey, FleetClient, FleetServer, PlacementPolicy, RemotePlacement,
    ShardHost, Stage, WireSnapshot,
};
use std::time::Instant;

fn fleet(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(12 + i % 20, 0.2, &mut rng)).collect()
}

fn main() {
    println!("# E30: cross-host shard placement — in-process vs remote shard hosts");
    println!("# expectation: identical digests; remote pays one socket hop per partial.");

    let sessions = 600usize;
    let graphs = fleet(sessions, 2031);
    let scheduler = Scheduler::new(8, 8);
    let key = AuthKey::from_seed(30);
    let truth: Vec<u64> = graphs
        .iter()
        .map(|g| vector_digest(&key, &local_phase(&EdgeCountProtocol, g)))
        .collect();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rows =
        vec![["backend", "shards", "hosts", "sess/s", "partials", "replays", "mac-rej"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()];

    let run = |server: &FleetServer| -> (f64, Vec<u64>, WireSnapshot) {
        let client = FleetClient::connect(server.addr(), 8, key).expect("connect");
        let t0 = Instant::now();
        let digests: Vec<u64> = scheduler.run_indexed(sessions, |i| {
            let g = &graphs[i];
            let arrivals = local_phase(&EdgeCountProtocol, g)
                .into_iter()
                .enumerate()
                .map(|(j, m)| (j as u32 + 1, m));
            client
                .verify_session(SessionId(i as u64), g.n(), arrivals)
                .expect("honest session verifies")
        });
        (t0.elapsed().as_secs_f64(), digests, client.metrics())
    };

    section(&format!("{sessions}-session fleets, in-process shard workers"));
    for shards in [1usize, 2, 4, 8] {
        let server = FleetServer::spawn_sharded(key, shards).expect("bind");
        let (wall, digests, c) = run(&server);
        assert_eq!(digests, truth, "in-process digests must pin the sent vectors");
        let s = server.stop();
        assert_eq!(s.mac_rejects, 0);
        records.push(
            BenchRecord::new("wirenet", shards, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(c.stage(Stage::Verdict))),
        );
        rows.push(vec![
            "in-process".into(),
            shards.to_string(),
            "-".into(),
            format!("{:.0}", sessions as f64 / wall),
            s.partial_frames.to_string(),
            "-".into(),
            s.mac_rejects.to_string(),
        ]);
    }

    section(&format!("{sessions}-session fleets, shards placed on 2 remote hosts"));
    for shards in [1usize, 2, 4, 8] {
        let hosts: Vec<ShardHost> =
            (0..2).map(|_| ShardHost::spawn(key).expect("bind shard host")).collect();
        let placement = RemotePlacement::new(
            PlacementPolicy::balanced(shards, &[0, 1]),
            hosts.iter().enumerate().map(|(i, h)| (i as u32, h.addr())),
        )
        .expect("addresses cover");
        let server =
            FleetServer::builder(key).placement(placement).spawn().expect("bind coordinator");
        let (wall, digests, c) = run(&server);
        assert_eq!(digests, truth, "remote digests must pin the sent vectors");
        let s = server.stop();
        assert_eq!(s.mac_rejects, 0);
        records.push(
            BenchRecord::new("remote", shards, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(c.stage(Stage::Verdict))),
        );
        // Ship each host's range-wait histogram back over the encoded
        // wire layout (exactly what a telemetry frame would carry) and
        // merge them — the cross-host analogue of PartialState merging.
        let mut range_wait = HistSnapshot::new();
        for h in &hosts {
            let over_wire =
                HistSnapshot::decode(&h.metrics().stage(Stage::UplinksComplete).encode())
                    .expect("canonical histogram layout round-trips");
            range_wait.merge(&over_wire);
        }
        if range_wait.count() > 0 {
            println!("  k={shards}: host-side range wait {range_wait}");
        }
        rows.push(vec![
            "remote".into(),
            shards.to_string(),
            "2".into(),
            format!("{:.0}", sessions as f64 / wall),
            s.partial_frames.to_string(),
            s.replayed_frames.to_string(),
            s.mac_rejects.to_string(),
        ]);
        drop(hosts);
    }
    println!("{}", render_table(&rows));

    let json = write_bench_json("exp_placement", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("placement experiments completed ✓");
}
