//! E7/E8/E10/E11: Theorem 5 and its variants across the paper's graph
//! classes, with message sizes against the Lemma 2 bound.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_degeneracy`

use referee_bench::experiments::degeneracy;
use referee_bench::{render_table, section};

fn main() {
    println!("# E7/E8/E10/E11: one-round frugal reconstruction (§III)");
    println!(
        "# expectation: verdict 'exact' for in-class graphs, 'rejected' for out-of-class;"
    );
    println!(
        "# bits/msg == Lemma 2 bound (deterministic widths), growing as log n for fixed k."
    );

    for n in [100usize, 400, 1600] {
        section(&format!("base size n = {n}"));
        let rows = degeneracy::run_grid(n, 42);
        println!("{}", render_table(&degeneracy::to_table(&rows)));
        assert!(rows.iter().all(|r| r.verdict != "WRONG"), "reconstruction error at n = {n}");
    }
    println!("all classes reconstructed / rejected correctly ✓");
}
