//! Borůvka connectivity refereed by the **sharded multi-round fleet
//! service** — the PR 4 acceptance demo.
//!
//! Phase 1: a `FleetServer` in multi-round mode (4 shard workers) runs
//! the referee half of Borůvka connectivity for 600 sessions streamed
//! over 8 multiplexed TCP connections: round-stamped uplinks are routed
//! to shard workers by ID range, per-round `RoundPartialState`s cross
//! shards as MAC'd `Partial` frames, and each round's downlinks stream
//! back before the next round fires. Every wire verdict is
//! cross-checked against an in-process `run_multiround` run *and* the
//! centralized BFS truth.
//!
//! Phase 2: deliberate wire corruption (one bit flipped in every third
//! frame, after MAC computation) against a 2-shard server — every
//! tampered frame is MAC-rejected at the router, affected sessions fail
//! closed, and zero corrupted sessions are accepted.
//!
//! Run: `cargo run --release --example sharded_boruvka`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{Percentiles, SloCheck};
use referee_one_round::prelude::*;
use referee_one_round::protocol::multiround::{run_multiround, BoruvkaConnectivity};
use referee_one_round::protocol::trace::dump_if_armed;
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, AuthKey, FleetClient, FleetServer, Stage,
    TamperConfig,
};

fn fleet_graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(6 + i % 20, 0.2, &mut rng)).collect()
}

const CAP: usize = 64;

fn main() {
    let sessions = 600usize;
    let shards = 4usize;
    let conns = 8usize;
    let key = AuthKey::from_seed(2026);
    let graphs = fleet_graphs(sessions, 2026);

    // ---- Phase 1: honest fleet, verdicts cross-checked ----------------
    let server = FleetServer::spawn_multiround(key, shards, boruvka_connectivity_service())
        .expect("bind loopback");
    let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
    println!(
        "phase 1: {sessions} multi-round Borůvka sessions over {conns} TCP connections, \
         refereed by {shards} shards at {}",
        server.addr()
    );

    let scheduler = Scheduler::new(8, 8);
    let t0 = std::time::Instant::now();
    let verdicts: Vec<bool> = scheduler.run_indexed(sessions, |i| {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, &graphs[i], CAP)
            .expect("honest session completes");
        decode_bool_output(&out).expect("honest uplinks decode")
    });
    let wall = t0.elapsed().as_secs_f64();

    for (i, (wire, g)) in verdicts.iter().zip(&graphs).enumerate() {
        let (local, _) = run_multiround(&BoruvkaConnectivity, g, CAP);
        let local = local.expect("terminates").expect("decodes");
        assert_eq!(*wire, local, "session {i}: wire verdict diverged from in-process run");
        assert_eq!(*wire, algo::is_connected(g), "session {i}: verdict diverged from truth");
    }

    let client_stats = client.metrics();
    // Keep the stitched flight-recorder timeline around: if the SLO
    // gate below trips, the failure dumps its own post-mortem.
    let stitched = {
        let mut t = server.stitched_trace();
        t.merge(&client.stitched_trace());
        t
    };
    let server_stats = server.stop();
    assert_eq!(server_stats.verdict_frames as usize, sessions);
    assert_eq!(server_stats.mac_rejects, 0);
    assert_eq!(client_stats.mac_rejects, 0);
    assert!(server_stats.partial_frames > 0);
    assert!(server_stats.downlink_frames > 0);
    assert!(
        client_stats.frames_per_write() > 1.0,
        "coalescing write path must batch frames per write(2) under load, got {:.2}",
        client_stats.frames_per_write()
    );
    println!("  all {sessions} wire verdicts match run_multiround and centralized BFS ✓");
    println!(
        "  {} per-round cross-shard partial frames, {} downlink frames streamed ✓",
        server_stats.partial_frames, server_stats.downlink_frames
    );
    println!("  client: {client_stats}");
    println!("  server: {server_stats}");
    println!(
        "  wall {wall:.3}s ≈ {:.0} multi-round sessions/s refereed by shards",
        sessions as f64 / wall
    );

    // Announce→verdict latency per session, client-stamped; the SLO
    // gate is armed by REFEREE_SLO_P99_US / REFEREE_SLO_P999_US in CI.
    let verdict_hist = client_stats.stage(Stage::Verdict);
    let p = Percentiles::from_hist(verdict_hist).expect("sessions ran");
    println!("  latency: {verdict_hist}");
    let slo = SloCheck::from_env();
    if let Err(e) = slo.check("sharded_boruvka phase 1", &p) {
        dump_if_armed("sharded_boruvka_slo", &stitched);
        panic!("{e}");
    }
    slo.enforce("sharded_boruvka phase 1", &p);

    // ---- Phase 2: wire corruption, zero undetected --------------------
    let corrupt_sessions = 64usize;
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service())
        .expect("bind loopback");
    let client = FleetClient::connect(server.addr(), corrupt_sessions, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });
    println!(
        "\nphase 2: {corrupt_sessions} sessions, one connection each, 2 shards, \
         every 3rd frame corrupted on the wire"
    );

    let mut failed_closed = 0usize;
    let mut undetected = 0usize;
    for (i, g) in graphs.iter().take(corrupt_sessions).enumerate() {
        match client.run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP) {
            Err(_) => failed_closed += 1,
            Ok(out) => {
                // Only possible if no tampered frame hit this session's
                // connection — the verdict must then equal the truth.
                if decode_bool_output(&out) != Ok(algo::is_connected(g)) {
                    undetected += 1;
                }
            }
        }
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "no corruption ever reached MAC verification");
    assert_eq!(undetected, 0, "a corrupted session was accepted");
    println!(
        "  {} frames tampered; {} connections poisoned by MAC verification; \
         {failed_closed}/{corrupt_sessions} sessions failed closed ✓",
        client_stats.tampered, server_stats.mac_rejects
    );
    println!("  zero corrupted sessions accepted (0 undetected) ✓");
    println!("  server: {server_stats}");

    println!("\nsharded multi-round Borůvka demo completed ✓");
}
