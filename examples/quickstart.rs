//! Quickstart: reconstruct a network topology from one round of
//! O(log n)-bit messages (Theorem 5 of Becker et al., IPDPS 2011).
//!
//! Run with: `cargo run --release --example quickstart`

use referee_one_round::prelude::*;

fn main() {
    // An interconnection network: a 12×12 grid (planar, degeneracy 2).
    let network = generators::grid(12, 12);
    let n = network.n();
    println!("network: {n} nodes, {} links (12×12 grid)", network.m());

    // Every node knows only: its own ID, its neighbours' IDs, and n.
    // With k = 2 each sends the Algorithm 3 sketch (ID, deg, b₁, b₂).
    let protocol = DegeneracyProtocol::new(2);
    let outcome = run_protocol(&protocol, &network);

    println!(
        "messages: {} bits each (Lemma 2 bound for n={n}, k=2), {:.2}×log₂(n)",
        outcome.stats.max_message_bits,
        outcome.stats.frugality_ratio(),
    );
    println!(
        "phases: local {:.3} ms total, referee {:.3} ms",
        outcome.stats.local_seconds * 1e3,
        outcome.stats.global_seconds * 1e3,
    );

    match outcome.output.expect("honest messages always decode") {
        Reconstruction::Graph(rebuilt) => {
            assert_eq!(rebuilt, network);
            println!("referee reconstructed the topology EXACTLY ✓");
            // …and can now answer anything centrally:
            println!(
                "  diameter = {:?}, connected = {}, bipartite = {}",
                algo::diameter(&rebuilt).finite(),
                algo::is_connected(&rebuilt),
                algo::is_bipartite(&rebuilt),
            );
        }
        Reconstruction::NotInClass => unreachable!("grids have degeneracy 2"),
    }

    // The same protocol *recognizes* the class: feed it a dense graph and
    // it rejects instead of guessing.
    let dense = generators::complete(40);
    match run_protocol(&protocol, &dense).output.unwrap() {
        Reconstruction::NotInClass => {
            println!("K₄₀ (degeneracy 39) correctly rejected by the k=2 protocol ✓")
        }
        Reconstruction::Graph(_) => unreachable!(),
    }
}
