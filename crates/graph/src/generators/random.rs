//! Random graph models.
//!
//! All samplers take `&mut impl Rng` so experiments control seeding and
//! reproduce byte-identical runs.

use crate::algo::squares::has_square;
use crate::{GraphError, LabelledGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi G(n, p): each of the C(n,2) edges present independently
/// with probability `p`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> LabelledGraph {
    let mut g = LabelledGraph::new(n);
    if p <= 0.0 {
        return g;
    }
    for u in 1..=n as VertexId {
        for v in (u + 1)..=n as VertexId {
            if p >= 1.0 || rng.gen_bool(p) {
                g.add_edge(u, v).expect("fresh edge");
            }
        }
    }
    g
}

/// G(n, m): exactly `m` distinct edges, uniform among all such graphs.
/// Errors if `m > C(n, 2)`.
pub fn gnm(n: usize, m: usize, rng: &mut impl Rng) -> Result<LabelledGraph, GraphError> {
    let max = n * n.saturating_sub(1) / 2;
    if m > max {
        return Err(GraphError::Parse(format!("m = {m} exceeds C({n},2) = {max}")));
    }
    let mut g = LabelledGraph::new(n);
    if m == 0 {
        return Ok(g);
    }
    // Dense request: sample by shuffling all edges. Sparse: rejection.
    if m * 3 > max {
        let mut all: Vec<(VertexId, VertexId)> = Vec::with_capacity(max);
        for u in 1..=n as VertexId {
            for v in (u + 1)..=n as VertexId {
                all.push((u, v));
            }
        }
        all.shuffle(rng);
        for &(u, v) in all.iter().take(m) {
            g.add_edge(u, v).expect("fresh edge");
        }
    } else {
        while g.m() < m {
            let u = rng.gen_range(1..=n as VertexId);
            let v = rng.gen_range(1..=n as VertexId);
            if u != v {
                g.add_edge_if_absent(u, v).expect("in range");
            }
        }
    }
    Ok(g)
}

/// Uniform random labelled tree on `n` vertices via a random Prüfer
/// sequence. `n = 0` gives the empty graph; `n = 1` a single vertex.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> LabelledGraph {
    if n <= 1 {
        return LabelledGraph::new(n);
    }
    let prufer: Vec<VertexId> = (0..n - 2).map(|_| rng.gen_range(1..=n as VertexId)).collect();
    tree_from_prufer(n, &prufer)
}

/// Decode a Prüfer sequence (length n − 2, entries in 1..=n) into its tree.
pub fn tree_from_prufer(n: usize, prufer: &[VertexId]) -> LabelledGraph {
    assert_eq!(prufer.len(), n.saturating_sub(2), "Prüfer length must be n-2");
    let mut g = LabelledGraph::new(n);
    if n <= 1 {
        return g;
    }
    let mut deg = vec![1u32; n + 1];
    for &v in prufer {
        deg[v as usize] += 1;
    }
    // Classic linear decode with a moving leaf pointer.
    let mut ptr = 1usize;
    while deg[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &v in prufer {
        g.add_edge(leaf as VertexId, v).expect("prufer edge");
        deg[v as usize] -= 1;
        if deg[v as usize] == 1 && (v as usize) < ptr {
            leaf = v as usize;
        } else {
            ptr += 1;
            while deg[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    g.add_edge(leaf as VertexId, n as VertexId).expect("final prufer edge");
    g
}

/// Random forest: a random tree with each edge independently kept with
/// probability `keep`. `keep = 1.0` gives a tree, small `keep` a sparse
/// forest. Degeneracy ≤ 1 always.
pub fn random_forest(n: usize, keep: f64, rng: &mut impl Rng) -> LabelledGraph {
    let tree = random_tree(n, rng);
    let mut g = LabelledGraph::new(n);
    for e in tree.edges() {
        if keep >= 1.0 || rng.gen_bool(keep.max(0.0)) {
            g.add_edge(e.0, e.1).expect("forest edge");
        }
    }
    g
}

/// Random bipartite graph with the **fixed balanced parts of Theorem 3**:
/// part 1 = `{1..⌈n/2⌉}`, part 2 = `{⌈n/2⌉+1..n}`; each cross pair is an
/// edge independently with probability `p`.
pub fn random_balanced_bipartite(n: usize, p: f64, rng: &mut impl Rng) -> LabelledGraph {
    let half = n.div_ceil(2);
    let mut g = LabelledGraph::new(n);
    for u in 1..=half as VertexId {
        for v in (half + 1) as VertexId..=n as VertexId {
            if p >= 1.0 || (p > 0.0 && rng.gen_bool(p)) {
                g.add_edge(u, v).expect("cross edge");
            }
        }
    }
    g
}

/// Random d-regular graph by the pairing (configuration) model with
/// rejection of loops/multi-edges. Errors if `n·d` is odd or `d ≥ n`.
pub fn random_regular(
    n: usize,
    d: usize,
    rng: &mut impl Rng,
) -> Result<LabelledGraph, GraphError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::Parse(format!("n·d must be even, got {n}·{d}")));
    }
    if d >= n && !(d == 0 && n <= 1) && n > 0 {
        return Err(GraphError::Parse(format!("need d < n, got d={d}, n={n}")));
    }
    'attempt: loop {
        let mut stubs: Vec<VertexId> = Vec::with_capacity(n * d);
        for v in 1..=n as VertexId {
            for _ in 0..d {
                stubs.push(v);
            }
        }
        stubs.shuffle(rng);
        let mut g = LabelledGraph::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !g.add_edge_if_absent(u, v).expect("in range") {
                continue 'attempt; // rejection: resample the whole pairing
            }
        }
        return Ok(g);
    }
}

/// Incrementally grown square-free graph: take a random edge order and add
/// each edge iff it closes no 4-cycle. This yields dense-ish members of
/// Theorem 1's class (the class has 2^Θ(n^{3/2}) members, matching the
/// Θ(n^{3/2}) maximum edge count of C4-free graphs).
pub fn random_square_free(n: usize, rng: &mut impl Rng) -> LabelledGraph {
    let mut all: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 1..=n as VertexId {
        for v in (u + 1)..=n as VertexId {
            all.push((u, v));
        }
    }
    all.shuffle(rng);
    let mut g = LabelledGraph::new(n);
    for (u, v) in all {
        g.add_edge(u, v).expect("fresh edge");
        if has_square(&g) {
            g.remove_edge(u, v).expect("just added");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng();
        assert_eq!(gnp(10, 0.0, &mut r).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut r).m(), 45);
        let g = gnp(50, 0.5, &mut r);
        assert!(g.m() > 400 && g.m() < 800, "m = {}", g.m());
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut r = rng();
        for m in [0usize, 1, 10, 44, 45] {
            assert_eq!(gnm(10, m, &mut r).unwrap().m(), m);
        }
        assert!(gnm(10, 46, &mut r).is_err());
    }

    #[test]
    fn prufer_decode_known() {
        // Prüfer (4,4) on 4 vertices → star at 4
        let g = tree_from_prufer(4, &[4, 4]);
        assert_eq!(g.degree(4), 3);
        assert!(algo::is_forest(&g));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut r = rng();
        for n in [1usize, 2, 3, 10, 100] {
            let g = random_tree(n, &mut r);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(algo::is_forest(&g));
            assert!(algo::is_connected(&g));
        }
    }

    #[test]
    fn random_forest_is_forest() {
        let mut r = rng();
        let g = random_forest(200, 0.7, &mut r);
        assert!(algo::is_forest(&g));
        assert!(g.m() < 199);
    }

    #[test]
    fn balanced_bipartite_respects_split() {
        let mut r = rng();
        let g = random_balanced_bipartite(20, 0.4, &mut r);
        assert!(algo::bipartite::respects_balanced_split(&g));
        assert!(algo::is_bipartite(&g));
        // odd n also splits correctly
        let g = random_balanced_bipartite(9, 1.0, &mut r);
        assert_eq!(g.m(), 5 * 4);
    }

    #[test]
    fn regular_graph_degrees() {
        let mut r = rng();
        let g = random_regular(20, 3, &mut r).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert!(random_regular(5, 3, &mut r).is_err()); // odd n·d
        assert!(random_regular(4, 5, &mut r).is_err()); // d ≥ n
    }

    #[test]
    fn square_free_generator() {
        let mut r = rng();
        let g = random_square_free(20, &mut r);
        assert!(!algo::has_square(&g));
        // maximal C4-free graphs on 20 vertices have ≥ 19 edges (a tree is
        // far from maximal; this generator saturates)
        assert!(g.m() >= 20, "m = {}", g.m());
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = gnp(30, 0.3, &mut StdRng::seed_from_u64(7));
        let g2 = gnp(30, 0.3, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }
}
