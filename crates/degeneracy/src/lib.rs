#![warn(missing_docs)]
//! The positive result of Becker et al. (IPDPS 2011), §III: **a one-round
//! frugal protocol reconstructing graphs of bounded degeneracy** (Theorem
//! 5), plus the forest special case (§III.A) and the generalized-degeneracy
//! extension (§III's closing remark).
//!
//! # How the protocol works
//!
//! Every node `v` sends the `(k+2)`-tuple of Algorithm 3:
//!
//! > its identifier `ID(v)`, its degree `deg(v)`, and for each `p ∈ 1..=k`
//! > the power sum `b_p(v) = Σ_{w ∈ N(v)} ID(w)^p`.
//!
//! By Lemma 2 this is `O(k² log n)` bits. The referee (Algorithm 4)
//! repeatedly *prunes*: it picks any vertex of current degree ≤ k, decodes
//! its remaining neighbourhood from the power sums — unique by Wright's
//! theorem on equal sums of like powers (Theorem 4) — and subtracts the
//! pruned vertex's contribution (`deg -= 1`, `b_p -= ID(x)^p`) from each
//! neighbour, exactly as a leaf is pruned from a forest in §III.A.
//!
//! # Decoders
//!
//! Two interchangeable neighbourhood decoders are provided (E9 ablation):
//!
//! * [`decode::TableDecoder`] — the paper's Lemma 3 lookup table over all
//!   ≤ k-subsets of `{1..n}`: `O(n^k)` space, `O(1)` lookups. Feasible
//!   only for tiny `n^k`.
//! * [`decode::NewtonDecoder`] — algebraic: Newton's identities turn the
//!   power sums into elementary symmetric polynomials; the neighbour IDs
//!   are then the integer roots of the associated monic polynomial, found
//!   by divisor filtering + Horner evaluation. Polynomial in `n` and `k`.
//!
//! Both reject corrupted or inconsistent messages with a
//! [`DecodeError`](referee_protocol::DecodeError) instead of mis-decoding.
//!
//! # Unknown k
//!
//! The paper's protocol needs `k` agreed in advance. Two relaxations are
//! provided: [`adaptive`] (E20) runs the doubling schedule as *rounds* of
//! the §IV multi-round model, shipping only the new power sums each round
//! (across-round total = the one-shot sketch); `referee_core`'s
//! `reconstruct_adaptive` is the driver-loop variant that re-sends full
//! sketches per attempt.

pub mod adaptive;
pub mod decode;
pub mod encode;
pub mod forest;
pub mod generalized;
pub mod newton;
pub mod protocol;

pub use adaptive::{adaptive_reconstruct, AdaptiveDegeneracyProtocol};
pub use decode::{DecoderKind, NeighbourhoodDecoder, NewtonDecoder, TableDecoder};
pub use encode::{lemma2_bound_bits, sketch_field_widths, PowerSumSketch};
pub use forest::ForestProtocol;
pub use generalized::GeneralizedDegeneracyProtocol;
pub use protocol::{DegeneracyProtocol, Reconstruction};
