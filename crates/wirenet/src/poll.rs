//! Kernel readiness for the wire reactors: an `epoll`-backed poller
//! with a wakeup fd, plus the portable sweep fallback.
//!
//! Every pump loop in this crate ([`crate::fleet`], [`crate::shard`],
//! [`crate::multiround`], [`crate::placement`]) has the same shape:
//! sweep all connections, and when a sweep makes no progress, wait for
//! something to change. Historically that wait was
//! `thread::sleep(IDLE_SLEEP)` — a readiness *poll* that burned a
//! syscall-and-sleep cycle per 50 µs of idleness and capped wire
//! throughput far below what the sockets can carry. `Poller` replaces
//! the sleep with a real kernel wait:
//!
//! * On Linux, [`PollerBackend::Epoll`] blocks in `epoll_wait(2)` on
//!   every registered socket (edge-triggered) plus an `eventfd(2)`
//!   wakeup fd other threads can `Waker::wake` to interrupt the wait
//!   — e.g. a shard worker that just queued a verdict for the router to
//!   flush.
//! * [`PollerBackend::Sweep`] is the previous behavior (sleep
//!   `idle`), kept as the non-Linux fallback and selectable everywhere
//!   for A/B runs via [`POLLER_ENV`] or
//!   [`FleetServerBuilder::poller`](crate::fleet::FleetServerBuilder::poller).
//!
//! The syscall layer is a hand-rolled `extern "C"` shim (no `libc`
//! crate — the symbols resolve against the C library `std` already
//! links). Waits come in two grades: `Poller::wait` reports only
//! *that* something is ready, while `Poller::wait_ready` also hands
//! back *which* fds edged (`Readiness::Fds`) so the hottest loops
//! (echo server, fleet client) pump exactly the flagged connections
//! instead of probing the whole pool. Any degraded answer — a wakeup,
//! a timeout, an overflowing event buffer, the sweep backend — is
//! `Readiness::All`: probe everything, the historical behavior.
//! Edge-triggered registration is safe here because every pumped
//! socket is drained to `WouldBlock` before the loop returns to the
//! wait; the wait is additionally capped (milliseconds) and reports
//! `All` on timeout, so a hypothetical missed or dropped edge degrades
//! to the old sweep cadence instead of a hang, and shutdown flags are
//! observed promptly.

use std::sync::Arc;
use std::time::Duration;

/// Environment variable selecting the poller backend (`epoll` or
/// `sweep`, case-insensitive). The builder knob
/// ([`FleetServerBuilder::poller`](crate::fleet::FleetServerBuilder::poller))
/// takes precedence; unset or unrecognized values keep the default
/// ([`PollerBackend::Epoll`], falling back to sweep where epoll is
/// unavailable).
pub const POLLER_ENV: &str = "REFEREE_WIRENET_POLLER";

/// Which readiness mechanism a reactor loop blocks on when idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerBackend {
    /// Block in `epoll_wait(2)` with a wakeup fd (Linux). Elsewhere —
    /// or if epoll setup fails — this silently degrades to `Sweep`.
    Epoll,
    /// The historical readiness-polling sweep: sleep the idle interval
    /// and re-probe every socket.
    Sweep,
}

/// Resolve the poller backend with builder-beats-env precedence: an
/// explicit builder choice wins, else a recognized env *value* (passed
/// as a parameter so unit tests never mutate the process environment),
/// else [`PollerBackend::Epoll`].
pub(crate) fn resolve_poller(
    explicit: Option<PollerBackend>,
    env: Option<&str>,
) -> PollerBackend {
    if let Some(b) = explicit {
        return b;
    }
    match env.map(str::trim) {
        Some(v) if v.eq_ignore_ascii_case("sweep") => PollerBackend::Sweep,
        Some(v) if v.eq_ignore_ascii_case("epoll") => PollerBackend::Epoll,
        _ => PollerBackend::Epoll,
    }
}

/// The backend a poller starts from when the builder did not choose:
/// [`POLLER_ENV`] if set to a recognized value, else epoll.
pub(crate) fn default_backend() -> PollerBackend {
    resolve_poller(None, std::env::var(POLLER_ENV).ok().as_deref())
}

/// Raw epoll/eventfd syscall shim (Linux only, no `libc` crate): the
/// symbols link against the system C library that `std` already pulls
/// in.
#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    /// `struct epoll_event`. On x86-64 the kernel ABI packs this to 12
    /// bytes; other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// An epoll instance plus its eventfd wakeup channel. Fields are plain
/// fds, so the type is `Send + Sync`; [`wait`](Epoll::wait) takes
/// `&self` with a stack-local event buffer, so concurrent waiters are
/// fine (the reactors only ever have one).
#[cfg(target_os = "linux")]
struct Epoll {
    epfd: i32,
    wakefd: i32,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// Create the epoll set with its wakeup eventfd already registered
    /// (level-triggered, so a pending wake keeps interrupting waits
    /// until drained). `None` if either syscall fails — callers fall
    /// back to the sweep backend.
    fn new() -> Option<Epoll> {
        // SAFETY: plain fd-creating syscalls with no pointer arguments.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return None;
        }
        // SAFETY: as above.
        let wakefd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if wakefd < 0 {
            // SAFETY: epfd was just created and is owned here.
            unsafe { sys::close(epfd) };
            return None;
        }
        let ep = Epoll { epfd, wakefd };
        // The wakeup fd stays level-triggered: every waiter sees the
        // pending counter until `wait` drains it.
        let mut ev = sys::EpollEvent { events: sys::EPOLLIN, data: u64::MAX };
        // SAFETY: `ev` is a live, properly laid out epoll_event.
        let rc = unsafe { sys::epoll_ctl(ep.epfd, sys::EPOLL_CTL_ADD, wakefd, &mut ev) };
        if rc < 0 {
            return None; // Drop closes both fds.
        }
        Some(ep)
    }

    /// Register a socket edge-triggered for read+write readiness.
    /// Errors (e.g. duplicate registration after an fd number is
    /// reused) are ignored: the capped wait bounds the damage to the
    /// sweep cadence.
    fn register(&self, fd: i32) {
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET,
            data: fd as u64,
        };
        // SAFETY: `ev` is a live, properly laid out epoll_event.
        unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
    }

    /// Block until any registered fd is ready, a wake arrives, or
    /// `cap` elapses. With `out`, collect the ready fds and report
    /// whether the caller may trust them (`Readiness::Fds`) or must
    /// probe everything (`Readiness::All` — returned on wake, on
    /// timeout, on `EINTR`, and when the event buffer overflowed, so
    /// every degraded case falls back to the full sweep).
    fn wait(&self, cap: Duration, mut out: Option<&mut Vec<i32>>) -> Readiness {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        let timeout_ms = cap.as_millis().clamp(1, i32::MAX as u128) as i32;
        // SAFETY: the buffer outlives the call and maxevents matches
        // its length; EINTR is indistinguishable from a wake here,
        // which is exactly the semantic we want.
        let n = unsafe {
            sys::epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        let mut woken = false;
        for ev in events.iter().take(n.max(0) as usize) {
            let data = ev.data;
            if data == u64::MAX {
                woken = true;
            } else if let Some(out) = out.as_deref_mut() {
                out.push(data as i32);
            }
        }
        if woken {
            // Drain the pending wakes so the level-triggered eventfd
            // stops reporting ready. Nonblocking: a racing waker after
            // the drain just triggers the next wait immediately.
            let mut buf = [0u8; 8];
            // SAFETY: 8-byte buffer matches the eventfd read contract.
            unsafe { sys::read(self.wakefd, buf.as_mut_ptr().cast(), buf.len()) };
        }
        // A wake carries no fd, so the waker's intent (usually "bytes
        // were queued somewhere, flush them") needs the full sweep; a
        // full buffer may have truncated the ready list; n <= 0 is a
        // timeout or EINTR, where the capped-wait safety story *is* the
        // sweep.
        if out.is_none() || woken || n <= 0 || n as usize == events.len() {
            Readiness::All
        } else {
            Readiness::Fds
        }
    }

    /// Make the current (or next) [`wait`](Epoll::wait) return now.
    fn wake(&self) {
        let one: u64 = 1;
        let buf = one.to_ne_bytes();
        // SAFETY: 8-byte buffer matches the eventfd write contract.
        unsafe { sys::write(self.wakefd, buf.as_ptr().cast(), buf.len()) };
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this instance.
        unsafe {
            sys::close(self.wakefd);
            sys::close(self.epfd);
        }
    }
}

/// What a readiness wait learned: either a trustworthy list of ready
/// fds, or "probe everything" (the sweep backend, a wake, a timeout, an
/// overflowed event buffer). `All` is always a safe answer; `Fds` is
/// the fast path that lets pump loops skip sockets the kernel has not
/// flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Readiness {
    /// Probe every connection (and the listener).
    All,
    /// Only the fds pushed into the caller's buffer are ready.
    Fds,
}

/// The poller implementation behind `Poller`/[`Waker`].
enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Sweep,
}

/// A reactor loop's idle-wait mechanism: kernel readiness (epoll) or
/// the sleep-and-sweep fallback, behind one interface.
///
/// The loop registers every socket it owns, calls
/// [`wait`](Poller::wait) when a sweep makes no progress, and hands
/// [`Waker`] clones to threads that feed it work through channels the
/// kernel cannot see (shard workers queueing verdicts for the router).
pub(crate) struct Poller {
    imp: Arc<Imp>,
    idle: Duration,
    /// The epoll wait cap: long enough to make idle CPU negligible,
    /// short enough that a (theoretically) missed edge or an unwoken
    /// channel send degrades to sweep cadence rather than a stall.
    cap: Duration,
}

impl Poller {
    /// Build a poller for `backend`, falling back to sweep when epoll
    /// is unavailable. `idle` is the sweep-backend sleep (the
    /// historical `IDLE_SLEEP`); the epoll wait is capped at
    /// `max(idle, 2 ms)` since `epoll_wait` timeouts have millisecond
    /// granularity anyway.
    pub(crate) fn new(backend: PollerBackend, idle: Duration) -> Poller {
        let cap = idle.max(Duration::from_millis(2));
        let imp = match backend {
            #[cfg(target_os = "linux")]
            PollerBackend::Epoll => match Epoll::new() {
                Some(ep) => Imp::Epoll(ep),
                None => Imp::Sweep,
            },
            #[cfg(not(target_os = "linux"))]
            PollerBackend::Epoll => Imp::Sweep,
            PollerBackend::Sweep => Imp::Sweep,
        };
        Poller { imp: Arc::new(imp), idle, cap }
    }

    /// The backend actually in effect (after any fallback).
    pub(crate) fn backend(&self) -> PollerBackend {
        match *self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => PollerBackend::Epoll,
            Imp::Sweep => PollerBackend::Sweep,
        }
    }

    /// Register a socket for readiness (no-op on the sweep backend or
    /// for invalid fds).
    pub(crate) fn register(&self, fd: i32) {
        if fd < 0 {
            return;
        }
        match &*self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.register(fd),
            Imp::Sweep => {}
        }
    }

    /// Wait for readiness, a wake, or the cap — the replacement for
    /// `thread::sleep(IDLE_SLEEP)` in every pump loop.
    pub(crate) fn wait(&self) {
        match &*self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => {
                ep.wait(self.cap, None);
            }
            Imp::Sweep => std::thread::sleep(self.idle),
        }
    }

    /// As [`wait`](Poller::wait), but additionally collect *which* fds
    /// the kernel flagged into `ready` (cleared first). The return
    /// value says whether that list may be trusted: on
    /// `Readiness::All` the caller must probe every socket exactly as
    /// after a plain [`wait`](Poller::wait) — the sweep backend, wakes,
    /// timeouts and event-buffer overflow all take that path, so a
    /// loop built on this method degrades to the historical sweep, it
    /// never loses liveness.
    pub(crate) fn wait_ready(&self, ready: &mut Vec<i32>) -> Readiness {
        ready.clear();
        match &*self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.wait(self.cap, Some(ready)),
            Imp::Sweep => {
                std::thread::sleep(self.idle);
                Readiness::All
            }
        }
    }

    /// As [`wait`](Poller::wait) but capped at `cap` (e.g. a deadline
    /// fragment shorter than the default cap).
    #[cfg(test)]
    pub(crate) fn wait_for(&self, cap: Duration) {
        match &*self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => {
                ep.wait(cap.min(self.cap), None);
            }
            Imp::Sweep => std::thread::sleep(self.idle.min(cap)),
        }
    }

    /// Interrupt the current (or next) [`wait`](Poller::wait). The
    /// production paths wake through a cloned [`Waker`] handle; only
    /// tests wake a directly-held poller.
    #[cfg(test)]
    pub(crate) fn wake(&self) {
        match &*self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.wake(),
            Imp::Sweep => {}
        }
    }

    /// A cloneable, sendable handle other threads use to interrupt
    /// this poller's wait.
    pub(crate) fn waker(&self) -> Waker {
        Waker(Arc::clone(&self.imp))
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .field("idle", &self.idle)
            .finish()
    }
}

/// A handle that interrupts a `Poller`'s wait from another thread
/// (no-op for the sweep backend, whose wait is a plain bounded sleep).
#[derive(Clone)]
pub(crate) struct Waker(Arc<Imp>);

impl Waker {
    /// Interrupt the poller's current (or next) wait.
    pub(crate) fn wake(&self) {
        match &*self.0 {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.wake(),
            Imp::Sweep => {}
        }
    }
}

/// The raw fd of a socket, for [`Poller::register`] (`-1`, i.e.
/// "skip", on non-unix platforms).
#[cfg(unix)]
pub(crate) fn fd_of<T: std::os::unix::io::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}

/// Non-unix fallback: no usable fd, registration is skipped.
#[cfg(not(unix))]
pub(crate) fn fd_of<T>(_sock: &T) -> i32 {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poller_backend_resolution_precedence() {
        // Builder beats env; env values are parameters here so no test
        // ever mutates the process environment.
        assert_eq!(resolve_poller(None, None), PollerBackend::Epoll);
        assert_eq!(resolve_poller(None, Some("sweep")), PollerBackend::Sweep);
        assert_eq!(resolve_poller(None, Some(" SWEEP ")), PollerBackend::Sweep);
        assert_eq!(resolve_poller(None, Some("epoll")), PollerBackend::Epoll);
        assert_eq!(
            resolve_poller(Some(PollerBackend::Sweep), Some("epoll")),
            PollerBackend::Sweep
        );
        assert_eq!(
            resolve_poller(Some(PollerBackend::Epoll), Some("sweep")),
            PollerBackend::Epoll
        );
        // Garbage falls back to the default instead of failing a spawn.
        assert_eq!(resolve_poller(None, Some("uring")), PollerBackend::Epoll);
        assert_eq!(resolve_poller(None, Some("")), PollerBackend::Epoll);
    }

    #[test]
    fn sweep_backend_waits_the_idle_interval() {
        let p = Poller::new(PollerBackend::Sweep, Duration::from_millis(5));
        assert_eq!(p.backend(), PollerBackend::Sweep);
        let t = Instant::now();
        p.wait();
        assert!(t.elapsed() >= Duration::from_millis(5));
        // wake() is a no-op, not a panic.
        p.wake();
        p.waker().wake();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_wake_interrupts_wait() {
        let p = Poller::new(PollerBackend::Epoll, Duration::from_micros(50));
        assert_eq!(p.backend(), PollerBackend::Epoll, "epoll must be available on linux CI");
        // A pre-posted wake makes the wait return immediately even
        // with a long cap.
        let waker = p.waker();
        waker.wake();
        let t = Instant::now();
        p.wait_for(Duration::from_secs(2));
        assert!(t.elapsed() < Duration::from_secs(1), "wake did not interrupt the wait");

        // A wake from another thread interrupts a wait in progress.
        let waker = p.waker();
        let t = Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        p.wait_for(Duration::from_secs(5));
        assert!(t.elapsed() < Duration::from_secs(4), "cross-thread wake lost");
        h.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_socket_readiness() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let p = Poller::new(PollerBackend::Epoll, Duration::from_micros(50));
        assert_eq!(p.backend(), PollerBackend::Epoll);
        p.register(fd_of(&rx));
        // Drain the initial edge (registration reports the current
        // state once), then wait for fresh bytes.
        p.wait_for(Duration::from_millis(10));
        let t = Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.write_all(b"ping").unwrap();
            tx
        });
        p.wait_for(Duration::from_secs(5));
        assert!(t.elapsed() < Duration::from_secs(4), "readiness edge lost");
        let _tx = h.join().unwrap();
    }
}
