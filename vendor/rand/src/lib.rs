//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the real dependency. The generator is xoshiro256++ seeded via
//! SplitMix64 — high-quality and deterministic, but **not** the same
//! stream as the real `rand::rngs::StdRng` (ChaCha12). Seeded tests in
//! the workspace assert structural properties, not exact draws, so the
//! difference is invisible to them.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from a bounded range (shim for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                if span == 0 {
                    // full u128 domain (only reachable for u128/i128)
                    return lo.wrapping_add(raw as $t);
                }
                lo.wrapping_add((raw % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: f64,
        hi: f64,
        _inclusive: bool,
        rng: &mut R,
    ) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Ranges convertible into a uniform draw (shim for
/// `rand::distributions::uniform::SampleRange`). The single generic impl
/// per range shape is what lets integer-literal inference unify the range
/// element type with the call site's expected type, exactly as in the
/// real crate.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing random-value methods (blanket-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience free function: one draw from a fresh, OS-entropy-free
/// generator (deterministic per process-lifetime counter).
pub fn random_u64() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CTR: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);
    let x = CTR.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
    rngs::splitmix64(x)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&z));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(1u64..=u64::MAX);
    }
}
