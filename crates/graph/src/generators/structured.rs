//! Deterministic structured families.
//!
//! The paper's positive result covers "many graph classes such as planar
//! graphs, bounded treewidth graphs and, more generally, bounded degeneracy
//! graphs"; these constructors provide canonical members of each with known
//! degeneracy for the reconstruction experiments.

use crate::{GraphError, LabelledGraph, VertexId};

/// Path P_n (degeneracy 1 for n ≥ 2).
pub fn path(n: usize) -> LabelledGraph {
    let mut g = LabelledGraph::new(n);
    for v in 1..n as VertexId {
        g.add_edge(v, v + 1).expect("path edge");
    }
    g
}

/// Cycle C_n; requires n ≥ 3 (degeneracy 2).
pub fn cycle(n: usize) -> Result<LabelledGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::Parse(format!("cycle needs n ≥ 3, got {n}")));
    }
    let mut g = path(n);
    g.add_edge(n as VertexId, 1)?;
    Ok(g)
}

/// Star K_{1,n-1} with centre 1; requires n ≥ 1.
pub fn star(n: usize) -> Result<LabelledGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::Parse("star needs n ≥ 1".into()));
    }
    let mut g = LabelledGraph::new(n);
    for v in 2..=n as VertexId {
        g.add_edge(1, v)?;
    }
    Ok(g)
}

/// Complete graph K_n (degeneracy n − 1).
pub fn complete(n: usize) -> LabelledGraph {
    let mut g = LabelledGraph::new(n);
    for u in 1..=n as VertexId {
        for v in (u + 1)..=n as VertexId {
            g.add_edge(u, v).expect("clique edge");
        }
    }
    g
}

/// Complete bipartite K_{a,b}: part A = `1..=a`, part B = `a+1..=a+b`
/// (degeneracy min(a, b)).
pub fn complete_bipartite(a: usize, b: usize) -> LabelledGraph {
    let mut g = LabelledGraph::new(a + b);
    for u in 1..=a as VertexId {
        for v in (a + 1) as VertexId..=(a + b) as VertexId {
            g.add_edge(u, v).expect("bipartite edge");
        }
    }
    g
}

/// r × c grid (planar, degeneracy 2 for r,c ≥ 2). Vertex (i, j) has ID
/// `i*c + j + 1` (row-major).
pub fn grid(r: usize, c: usize) -> LabelledGraph {
    let mut g = LabelledGraph::new(r * c);
    let id = |i: usize, j: usize| (i * c + j + 1) as VertexId;
    for i in 0..r {
        for j in 0..c {
            if j + 1 < c {
                g.add_edge(id(i, j), id(i, j + 1)).expect("grid edge");
            }
            if i + 1 < r {
                g.add_edge(id(i, j), id(i + 1, j)).expect("grid edge");
            }
        }
    }
    g
}

/// r × c torus (4-regular for r,c ≥ 3; degeneracy 4).
pub fn torus(r: usize, c: usize) -> LabelledGraph {
    assert!(r >= 3 && c >= 3, "torus needs r, c ≥ 3 to stay simple");
    let mut g = LabelledGraph::new(r * c);
    let id = |i: usize, j: usize| (i * c + j + 1) as VertexId;
    for i in 0..r {
        for j in 0..c {
            g.add_edge_if_absent(id(i, j), id(i, (j + 1) % c)).expect("torus edge");
            g.add_edge_if_absent(id(i, j), id((i + 1) % r, j)).expect("torus edge");
        }
    }
    g
}

/// d-dimensional hypercube Q_d on 2^d vertices (d-regular, degeneracy d).
/// Vertex ID = binary label + 1.
pub fn hypercube(d: u32) -> LabelledGraph {
    let n = 1usize << d;
    let mut g = LabelledGraph::new(n);
    for x in 0..n {
        for bit in 0..d {
            let y = x ^ (1 << bit);
            if y > x {
                g.add_edge((x + 1) as VertexId, (y + 1) as VertexId).expect("cube edge");
            }
        }
    }
    g
}

/// The Petersen graph (3-regular, girth 5, degeneracy 3). Outer cycle
/// 1..5, inner pentagram 6..10.
pub fn petersen() -> LabelledGraph {
    let outer = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)];
    let spokes = [(1, 6), (2, 7), (3, 8), (4, 9), (5, 10)];
    let inner = [(6, 8), (8, 10), (10, 7), (7, 9), (9, 6)];
    LabelledGraph::from_edges(10, outer.into_iter().chain(spokes).chain(inner))
        .expect("petersen edges are valid")
}

/// The octahedron K_{2,2,2} (4-regular planar; degeneracy exactly 4).
/// Antipodal pairs: (1,2), (3,4), (5,6).
pub fn octahedron() -> LabelledGraph {
    let mut g = LabelledGraph::new(6);
    for u in 1..=6u32 {
        for v in (u + 1)..=6 {
            // skip the three antipodal non-edges
            let antipodal = (u, v) == (1, 2) || (u, v) == (3, 4) || (u, v) == (5, 6);
            if !antipodal {
                g.add_edge(u, v).expect("octahedron edge");
            }
        }
    }
    g
}

/// The icosahedron (5-regular planar; degeneracy exactly 5 — a *tight*
/// witness for the paper's "planar graphs are of degeneracy at most 5").
pub fn icosahedron() -> LabelledGraph {
    // Standard construction: top apex 1, upper pentagon 2..6, lower
    // pentagon 7..11, bottom apex 12.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(30);
    for i in 0..5u32 {
        let up = 2 + i;
        let up_next = 2 + (i + 1) % 5;
        let low = 7 + i;
        let low_next = 7 + (i + 1) % 5;
        edges.push((1, up)); // apex to upper ring
        edges.push((up, up_next)); // upper ring
        edges.push((low, low_next)); // lower ring
        edges.push((12, low)); // bottom apex to lower ring
                               // antiprism band between rings
        edges.push((up, low));
        edges.push((up_next, low));
    }
    LabelledGraph::from_edges(12, edges).expect("icosahedron edges are simple")
}

/// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves (a tree — degeneracy 1 — with high max degree, which separates
/// "bounded degree" from "bounded degeneracy": footnote 1 of the paper).
pub fn caterpillar(spine: usize, legs: usize) -> LabelledGraph {
    let n = spine + spine * legs;
    let mut g = LabelledGraph::new(n);
    for s in 1..spine as VertexId {
        g.add_edge(s, s + 1).expect("spine edge");
    }
    let mut next = (spine + 1) as VertexId;
    for s in 1..=spine as VertexId {
        for _ in 0..legs {
            g.add_edge(s, next).expect("leg edge");
            next += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn path_props() {
        let g = path(6);
        assert_eq!(g.m(), 5);
        assert!(algo::is_forest(&g));
        assert_eq!(algo::diameter(&g).finite(), Some(5));
        assert_eq!(path(0).n(), 0);
        assert_eq!(path(1).m(), 0);
    }

    #[test]
    fn cycle_props() {
        assert!(cycle(2).is_err());
        let g = cycle(5).unwrap();
        assert_eq!(g.m(), 5);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_props() {
        let g = star(5).unwrap();
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.m(), 4);
        assert!(algo::is_forest(&g));
        assert!(star(0).is_err());
        assert_eq!(star(1).unwrap().m(), 0);
    }

    #[test]
    fn complete_props() {
        let g = complete(7);
        assert_eq!(g.m(), 21);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(algo::diameter(&g).finite(), Some(1));
    }

    #[test]
    fn complete_bipartite_props() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        assert!(algo::is_bipartite(&g));
        assert_eq!(algo::degeneracy_ordering(&g).degeneracy, 3);
    }

    #[test]
    fn grid_props() {
        let g = grid(4, 6);
        assert_eq!(g.n(), 24);
        assert_eq!(g.m(), 4 * 5 + 3 * 6); // horizontal + vertical
        assert!(algo::is_bipartite(&g));
        assert_eq!(algo::degeneracy_ordering(&g).degeneracy, 2);
    }

    #[test]
    fn torus_props() {
        let g = torus(4, 5);
        assert_eq!(g.n(), 20);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn hypercube_props() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(algo::is_bipartite(&g));
        assert_eq!(algo::diameter(&g).finite(), Some(4));
    }

    #[test]
    fn petersen_props() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(algo::diameter(&g).finite(), Some(2));
        assert!(!algo::is_bipartite(&g));
    }

    #[test]
    fn octahedron_props() {
        let g = octahedron();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 12);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(algo::degeneracy_ordering(&g).degeneracy, 4);
        assert_eq!(algo::diameter(&g).finite(), Some(2));
        // the three antipodal pairs are the only non-edges
        assert!(!g.has_edge(1, 2) && !g.has_edge(3, 4) && !g.has_edge(5, 6));
    }

    #[test]
    fn icosahedron_props() {
        let g = icosahedron();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 30); // V - E + F = 2 with F = 20 triangles
        assert!(g.vertices().all(|v| g.degree(v) == 5));
        // tight witness: planar AND degeneracy exactly 5
        assert_eq!(algo::degeneracy_ordering(&g).degeneracy, 5);
        assert_eq!(algo::diameter(&g).finite(), Some(3));
        assert_eq!(algo::girth(&g), Some(3));
        // 20 triangular faces (every triangle is a face in the icosahedron)
        assert_eq!(algo::count_triangles(&g), 20);
    }

    #[test]
    fn caterpillar_props() {
        let g = caterpillar(4, 3);
        assert_eq!(g.n(), 16);
        assert!(algo::is_forest(&g));
        assert_eq!(g.max_degree(), 5); // interior spine: 2 spine + 3 legs
        assert_eq!(algo::degeneracy_ordering(&g).degeneracy, 1);
    }
}
