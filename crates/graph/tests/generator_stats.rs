//! Statistical sanity of the random generators (fixed seeds, so these are
//! deterministic regression tests, not flaky hypothesis tests).

use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, enumerate, generators};
use std::collections::HashMap;

/// Prüfer sampling is uniform over labelled trees: on n = 4 there are
/// 4^2 = 16 trees; 3200 samples should hit each ≈ 200 times.
#[test]
fn prufer_trees_are_uniform() {
    let mut rng = StdRng::seed_from_u64(1000);
    let slots = enumerate::slot_edges(4);
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let samples = 3200;
    for _ in 0..samples {
        let t = generators::random_tree(4, &mut rng);
        *counts.entry(enumerate::mask_from_graph(&t, &slots)).or_insert(0) += 1;
    }
    assert_eq!(counts.len(), 16, "every labelled tree must appear");
    let expected = samples as f64 / 16.0;
    for (&mask, &c) in &counts {
        assert!(
            (c as f64 - expected).abs() < expected * 0.35,
            "tree {mask:#x} sampled {c} times (expected ≈ {expected})"
        );
    }
}

/// G(n, m) produces exactly m edges and, across samples, touches many
/// distinct graphs (it is not collapsing onto a few outcomes).
#[test]
fn gnm_spreads_over_the_family() {
    let mut rng = StdRng::seed_from_u64(1001);
    let slots = enumerate::slot_edges(6);
    let mut seen = HashMap::new();
    for _ in 0..300 {
        let g = generators::gnm(6, 7, &mut rng).unwrap();
        assert_eq!(g.m(), 7);
        *seen.entry(enumerate::mask_from_graph(&g, &slots)).or_insert(0u32) += 1;
    }
    // C(15,7) = 6435 possible graphs; 300 samples should rarely repeat.
    assert!(seen.len() > 250, "only {} distinct G(6,7) draws", seen.len());
}

/// G(n, p) edge count concentrates around p·C(n,2).
#[test]
fn gnp_edge_count_concentrates() {
    let mut rng = StdRng::seed_from_u64(1002);
    let n = 100;
    let p = 0.3;
    let trials = 30;
    let total: usize = (0..trials).map(|_| generators::gnp(n, p, &mut rng).m()).sum();
    let mean = total as f64 / trials as f64;
    let expect = p * (n * (n - 1) / 2) as f64;
    assert!((mean - expect).abs() < expect * 0.05, "mean {mean} vs expected {expect}");
}

/// The k-degenerate generator with density 1 concentrates near the
/// maximum edge count k·n − k(k+1)/2.
#[test]
fn k_degenerate_density_one_is_near_maximal() {
    let mut rng = StdRng::seed_from_u64(1003);
    for k in [2usize, 4] {
        let n = 100;
        let g = generators::random_k_degenerate(n, k, 1.0, &mut rng);
        let max_edges = k * n - k * (k + 1) / 2;
        assert_eq!(g.m(), max_edges, "k={k}: density 1 fills every slot");
        assert_eq!(algo::degeneracy_ordering(&g).degeneracy, k);
    }
}

/// Random regular graphs are uniform enough to usually be connected at
/// d = 3 (a.a.s. property; deterministic under seed).
#[test]
fn random_cubic_graphs_usually_connected() {
    let mut rng = StdRng::seed_from_u64(1004);
    let connected = (0..20)
        .filter(|_| {
            let g = generators::random_regular(40, 3, &mut rng).unwrap();
            algo::is_connected(&g)
        })
        .count();
    assert!(connected >= 18, "only {connected}/20 cubic graphs connected");
}

/// Square-free generator saturates: the output is maximal (no edge can be
/// added without creating a C4).
#[test]
fn square_free_output_is_maximal() {
    let mut rng = StdRng::seed_from_u64(1005);
    let mut g = generators::random_square_free(14, &mut rng);
    assert!(!algo::has_square(&g));
    for u in 1..=14u32 {
        for v in (u + 1)..=14 {
            if !g.has_edge(u, v) {
                g.add_edge(u, v).unwrap();
                assert!(
                    algo::has_square(&g),
                    "edge {u}-{v} could have been added — not maximal"
                );
                g.remove_edge(u, v).unwrap();
            }
        }
    }
}
