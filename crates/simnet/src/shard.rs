//! Sharded one-round sessions: the referee's mailbox split across
//! [`RefereeShard`]s that exchange [`PartialState`] summaries *through
//! the transport*.
//!
//! A [`ShardedOneRoundSession`] runs the same protocol as a
//! [`OneRoundSession`](crate::OneRoundSession) but collects arrivals
//! into `k` shard states (routed by the balanced ID partition of
//! `referee_protocol::shard`) and then runs a **cross-shard exchange
//! phase**: every shard serializes its partial state and ships it as a
//! round-2 envelope, in an order scrambled by a seed — so the collector
//! must cope with out-of-order, duplicated, lost and corrupted partials
//! exactly the way it copes with node traffic. The round stamp is what
//! makes that safe: late round-1 stragglers surfacing during the
//! exchange are committed history (counted `stale`), mirroring the
//! future-round mailbox of the multi-round runtime.
//!
//! Delivery semantics match [`OneRoundSession`](crate::OneRoundSession)
//! bit for bit on every transport (pinned by tests): identical
//! duplicates are absorbed, conflicting ones fail the session, loss is
//! starvation, corruption flows to the decoders. A corrupted partial
//! either fails [`PartialState::decode`] (structural damage) or decodes
//! to altered embedded messages — the same exposure corrupting the
//! original node message would have had; the protocol decoders remain
//! the integrity layer.
//!
//! The [`multiround`] submodule lifts the same design to multi-round
//! protocols: a
//! [`ShardedMultiRoundSession`](multiround::ShardedMultiRoundSession)
//! routes every round's uplinks into `k` per-round shards and runs a
//! seeded cross-shard exchange before each `referee_step`.

pub mod multiround;

use crate::clock::{real_clock, SharedClock};
use crate::metrics::SessionMetrics;
use crate::session::Step;
use crate::transport::{Envelope, SessionId, Transport, REFEREE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use referee_graph::LabelledGraph;
use referee_protocol::shard::{shard_of, Arrival, PartialState, RefereeShard};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// Nodes computed per `step()` call in the local phase (matches the
/// unsharded session).
const LOCAL_BATCH: usize = 64;

enum Phase {
    Local { next: u32 },
    Collect,
    Exchange,
    CollectPartials,
    Finished,
}

/// A one-round protocol execution whose referee is split across `k`
/// mergeable shards (see the module docs).
pub struct ShardedOneRoundSession<'a, P: OneRoundProtocol> {
    protocol: &'a P,
    graph: &'a LabelledGraph,
    session: SessionId,
    clock: SharedClock,
    exchange_seed: u64,
    phase: Phase,
    shards: Vec<Option<RefereeShard>>,
    filled: usize,
    /// Partial envelopes already absorbed, by shard index (for
    /// idempotent duplicate handling during the exchange).
    partial_seen: Vec<Option<Message>>,
    merged: usize,
    acc: PartialState,
    exchange_bits: usize,
    started: f64,
    outcome: Option<Result<P::Output, DecodeError>>,
    metrics: SessionMetrics,
}

impl<'a, P: OneRoundProtocol + Sync> ShardedOneRoundSession<'a, P> {
    /// A fresh session for `protocol` on `graph` with `shards` referee
    /// shards (clamped to at least 1).
    pub fn new(protocol: &'a P, graph: &'a LabelledGraph, shards: usize) -> Self {
        let n = graph.n();
        let k = shards.max(1);
        let clock = real_clock();
        ShardedOneRoundSession {
            protocol,
            graph,
            session: SessionId::default(),
            started: clock.now(),
            clock,
            exchange_seed: 0,
            phase: Phase::Local { next: 1 },
            shards: (0..k).map(|i| Some(RefereeShard::new(n, k, i))).collect(),
            filled: 0,
            partial_seen: vec![None; k],
            merged: 0,
            acc: PartialState::new(n),
            exchange_bits: 0,
            outcome: None,
            metrics: SessionMetrics::new(n),
        }
    }

    /// Number of referee shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Tag this session's envelopes with `id` (multiplexing); inbound
    /// envelopes carrying any other id fail the run as a demux fault.
    pub fn with_session(mut self, id: SessionId) -> Self {
        self.session = id;
        self
    }

    /// Stamp latency metrics from `clock` instead of wall time.
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.started = clock.now();
        self.clock = clock;
        self
    }

    /// Scramble the order shards emit their partials with `seed` — the
    /// exchange must be order-invariant (merge is commutative), and a
    /// seeded shuffle proves it on every run.
    pub fn with_exchange_seed(mut self, seed: u64) -> Self {
        self.exchange_seed = seed;
        self
    }

    /// Advance as far as deliverable traffic allows.
    pub fn step(&mut self, transport: &mut impl Transport) -> Step {
        match self.phase {
            Phase::Local { next } => self.step_local(next, transport),
            Phase::Collect => self.step_collect(transport),
            Phase::Exchange => self.step_exchange(transport),
            Phase::CollectPartials => self.step_collect_partials(transport),
            Phase::Finished => Step::Done,
        }
    }

    /// Drive to completion on `transport`.
    pub fn run(mut self, transport: &mut impl Transport) -> ShardedReport<P::Output> {
        while self.step(transport) == Step::Running {}
        self.into_report(transport)
    }

    /// The outcome and metrics; call after `step` returns [`Step::Done`].
    pub fn into_report(mut self, transport: &impl Transport) -> ShardedReport<P::Output> {
        let outcome = self.outcome.take().expect("session not finished");
        self.metrics.transport.merge(&transport.counters());
        ShardedReport {
            outcome,
            metrics: self.metrics,
            shards: self.shards.len(),
            exchange_bits: self.exchange_bits,
        }
    }

    fn step_local(&mut self, next: u32, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        let t0 = self.clock.now();
        // Mirror OneRoundSession: big standalone graphs take the
        // fanned-out local phase; scheduler sweeps disable it.
        if next == 1 && n >= referee_protocol::parallel_threshold() {
            let messages = referee_protocol::referee::local_phase(self.protocol, self.graph);
            for (i, payload) in messages.into_iter().enumerate() {
                self.account_uplink(&payload);
                transport.send(Envelope {
                    session: self.session,
                    round: 1,
                    from: (i + 1) as u32,
                    to: REFEREE,
                    payload,
                });
            }
            self.metrics.stats.local_seconds += self.clock.now() - t0;
            self.phase = Phase::Collect;
            return Step::Running;
        }
        let last = (next as usize + LOCAL_BATCH - 1).min(n) as u32;
        for v in next..=last {
            let view = NodeView::new(n, v, self.graph.neighbourhood(v));
            let payload = self.protocol.local(view);
            self.account_uplink(&payload);
            transport.send(Envelope {
                session: self.session,
                round: 1,
                from: v,
                to: REFEREE,
                payload,
            });
        }
        self.metrics.stats.local_seconds += self.clock.now() - t0;
        self.phase =
            if (last as usize) >= n { Phase::Collect } else { Phase::Local { next: last + 1 } };
        Step::Running
    }

    fn account_uplink(&mut self, payload: &Message) {
        // Only node uplinks count toward the frugality stats — the
        // exchange is referee-internal and tracked separately.
        self.metrics.stats.max_message_bits =
            self.metrics.stats.max_message_bits.max(payload.len_bits());
        self.metrics.stats.total_message_bits += payload.len_bits();
    }

    fn step_collect(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        let k = self.shards.len();
        while self.filled < n {
            let Some(env) = transport.recv() else {
                let missing = n - self.filled;
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained with {missing} of {n} messages missing"
                ))));
            };
            if env.session != self.session {
                return self.finish(Err(DecodeError::Invalid(format!(
                    "envelope for session {} delivered to session {} (demux fault)",
                    env.session, self.session
                ))));
            }
            if env.to != REFEREE || env.round != 1 {
                return self.finish(Err(DecodeError::Invalid(format!(
                    "unexpected round-{} envelope from node {} to {} in a one-round session",
                    env.round, env.from, env.to
                ))));
            }
            if env.from == REFEREE || env.from as usize > n {
                return self.finish(Err(DecodeError::OutOfRange(format!(
                    "message from unknown node {} (n = {n})",
                    env.from
                ))));
            }
            let shard = self.shards[shard_of(n, k, env.from)]
                .as_mut()
                .expect("shards live until the exchange");
            match shard.ingest(env.from, env.payload) {
                Ok(Arrival::Fresh) => self.filled += 1,
                Ok(Arrival::Duplicate { identical: true }) => {
                    // At-least-once delivery made idempotent.
                    self.metrics.transport.stale += 1;
                }
                Ok(Arrival::Duplicate { identical: false }) => {
                    return self.finish(Err(DecodeError::Inconsistent(format!(
                        "conflicting duplicate message from node {}",
                        env.from
                    ))));
                }
                // Out-of-range was rejected above; a routing error here
                // is a bug in this session, surfaced loudly.
                Ok(Arrival::OutOfRange) | Err(_) => {
                    return self.finish(Err(DecodeError::Invalid(format!(
                        "misrouted arrival from node {}",
                        env.from
                    ))));
                }
            }
        }
        self.phase = Phase::Exchange;
        Step::Running
    }

    fn step_exchange(&mut self, transport: &mut impl Transport) -> Step {
        // Emit every shard's partial in a seeded order. All partials
        // cross the transport — shard 0's included — so the collector
        // path is uniform and every partial is exposed to the same
        // faults as node traffic.
        let k = self.shards.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.shuffle(&mut StdRng::seed_from_u64(self.exchange_seed));
        for idx in order {
            let shard = self.shards[idx].take().expect("exchange runs once");
            let payload = shard.into_partial().encode();
            self.exchange_bits += payload.len_bits();
            transport.send(Envelope {
                session: self.session,
                round: 2,
                from: (idx + 1) as u32,
                to: REFEREE,
                payload,
            });
        }
        self.phase = Phase::CollectPartials;
        Step::Running
    }

    fn step_collect_partials(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        let k = self.shards.len();
        while self.merged < k {
            let Some(env) = transport.recv() else {
                let missing = k - self.merged;
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained with {missing} of {k} shard partials missing"
                ))));
            };
            if env.session != self.session {
                return self.finish(Err(DecodeError::Invalid(format!(
                    "envelope for session {} delivered to session {} (demux fault)",
                    env.session, self.session
                ))));
            }
            if env.round < 2 {
                // Round-1 stragglers (duplicates released late by a
                // reordering transport): committed history, dropped
                // uncompared — the originals were already consumed.
                self.metrics.transport.stale += 1;
                continue;
            }
            if env.round != 2 || env.to != REFEREE || env.from == 0 || env.from as usize > k {
                return self.finish(Err(DecodeError::Invalid(format!(
                    "unexpected round-{} envelope from {} to {} during the shard exchange",
                    env.round, env.from, env.to
                ))));
            }
            let idx = (env.from - 1) as usize;
            match &self.partial_seen[idx] {
                Some(existing) if *existing == env.payload => {
                    self.metrics.transport.stale += 1;
                    continue;
                }
                Some(_) => {
                    return self.finish(Err(DecodeError::Inconsistent(format!(
                        "conflicting duplicate partial from shard {idx}"
                    ))));
                }
                None => {}
            }
            let partial = match PartialState::decode(n, &env.payload) {
                Ok(p) => p,
                Err(e) => return self.finish(Err(e)),
            };
            self.partial_seen[idx] = Some(env.payload);
            if let Err(e) = self.acc.merge(partial) {
                return self.finish(Err(e));
            }
            self.merged += 1;
        }
        let messages = match std::mem::replace(&mut self.acc, PartialState::new(0)).finish() {
            Ok(m) => m,
            Err(e) => return self.finish(Err(e)),
        };
        let t0 = self.clock.now();
        let output = self.protocol.global(n, &messages);
        self.metrics.stats.global_seconds = self.clock.now() - t0;
        self.finish(Ok(output))
    }

    fn finish(&mut self, outcome: Result<P::Output, DecodeError>) -> Step {
        self.metrics.rounds = 1;
        self.metrics.round_seconds = vec![self.clock.now() - self.started];
        self.outcome = Some(outcome);
        self.phase = Phase::Finished;
        Step::Done
    }
}

/// Outcome of a sharded one-round session.
#[derive(Debug)]
pub struct ShardedReport<O> {
    /// The referee's output, or the decode/delivery failure that ended
    /// the session.
    pub outcome: Result<O, DecodeError>,
    /// Everything measured along the way. The frugality stats count node
    /// uplinks only, so they match the unsharded session exactly.
    pub metrics: SessionMetrics,
    /// Shard count the session ran with.
    pub shards: usize,
    /// Total bits of serialized partial states shipped in the exchange.
    pub exchange_bits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultyTransport};
    use crate::session::OneRoundSession;
    use crate::transport::PerfectTransport;
    use referee_graph::generators;
    use referee_protocol::easy::EdgeCountProtocol;

    #[test]
    fn matches_unsharded_session_bit_for_bit() {
        for g in [
            generators::petersen(),
            generators::grid(4, 7),
            generators::path(1),
            LabelledGraph::new(0),
            generators::complete(9),
        ] {
            let mut perfect = PerfectTransport::new();
            let mono = OneRoundSession::new(&EdgeCountProtocol, &g).run(&mut perfect);
            let mono_out = mono.outcome.unwrap();
            for k in 1..=8usize {
                let mut t = PerfectTransport::new();
                let sharded = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, k)
                    .with_exchange_seed(k as u64 * 77)
                    .run(&mut t);
                assert_eq!(sharded.outcome.unwrap(), mono_out, "k={k}, n={}", g.n());
                assert_eq!(
                    sharded.metrics.stats.max_message_bits, mono.metrics.stats.max_message_bits,
                    "k={k}: frugality accounting must ignore the exchange"
                );
                assert_eq!(
                    sharded.metrics.stats.total_message_bits,
                    mono.metrics.stats.total_message_bits
                );
                assert_eq!(sharded.shards, k);
                assert!(sharded.exchange_bits > 0, "partials always carry headers");
            }
        }
    }

    #[test]
    fn exchange_order_is_immaterial() {
        let g = generators::grid(5, 5);
        let mut outputs = Vec::new();
        for seed in 0..16u64 {
            let mut t = PerfectTransport::new();
            let r = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, 5)
                .with_exchange_seed(seed)
                .run(&mut t);
            outputs.push(r.outcome.unwrap());
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn faulty_transport_never_fabricates() {
        // Under loss/dup/reorder (no corruption) every completed outcome
        // is exact; loss of node traffic or partials rejects cleanly.
        let mut completed = 0usize;
        let mut rejected = 0usize;
        for seed in 0..60u64 {
            let g = generators::gnp(
                14 + (seed % 9) as usize,
                0.25,
                &mut rand::rngs::StdRng::seed_from_u64(seed),
            );
            let cfg = FaultConfig {
                seed,
                loss: 0.02,
                duplication: 0.15,
                reorder: 0.35,
                corruption: 0.0,
            };
            let mut t = FaultyTransport::new(PerfectTransport::new(), cfg);
            let r = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, 4)
                .with_exchange_seed(seed)
                .run(&mut t);
            match r.outcome {
                Ok(out) => {
                    assert_eq!(out, Ok(g.m()), "seed {seed} fabricated an edge count");
                    completed += 1;
                }
                Err(_) => rejected += 1,
            }
        }
        assert!(completed > 0, "some runs must survive 2% loss");
        assert!(rejected > 0, "some runs must lose an envelope");
    }

    #[test]
    fn lost_partial_is_detected_as_starvation() {
        // Full loss after round 1 cannot be arranged with FaultConfig
        // alone; a tiny wrapper drops every round-2 envelope instead.
        struct DropPartials<T: Transport>(T);
        impl<T: Transport> Transport for DropPartials<T> {
            fn send(&mut self, env: Envelope) {
                if env.round != 2 {
                    self.0.send(env);
                }
            }
            fn recv(&mut self) -> Option<Envelope> {
                self.0.recv()
            }
            fn counters(&self) -> crate::metrics::TransportCounters {
                self.0.counters()
            }
        }
        let g = generators::grid(3, 3);
        let mut t = DropPartials(PerfectTransport::new());
        let r = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, 3).run(&mut t);
        let err = r.outcome.unwrap_err();
        assert!(format!("{err}").contains("shard partials missing"), "{err}");
    }

    #[test]
    fn corrupted_partial_structure_is_rejected() {
        // Flip a bit in the length-field region of every round-2
        // payload: the partial decoder must reject, the session must
        // fail closed.
        struct CorruptPartials<T: Transport>(T);
        impl<T: Transport> Transport for CorruptPartials<T> {
            fn send(&mut self, mut env: Envelope) {
                if env.round == 2 {
                    env.payload = env.payload.with_bit_flipped(10); // inside n field
                }
                self.0.send(env);
            }
            fn recv(&mut self) -> Option<Envelope> {
                self.0.recv()
            }
            fn counters(&self) -> crate::metrics::TransportCounters {
                self.0.counters()
            }
        }
        let g = generators::grid(3, 4);
        let mut t = CorruptPartials(PerfectTransport::new());
        let r = ShardedOneRoundSession::new(&EdgeCountProtocol, &g, 2).run(&mut t);
        assert!(r.outcome.is_err(), "structurally corrupted partial must reject");
    }
}
