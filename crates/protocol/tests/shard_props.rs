//! Shard-merge equivalence, pinned: for arbitrary arrival multisets
//! (duplicates, missing nodes, unknown senders), arbitrary arrival
//! orders, any shard count in `1..=8`, and arbitrary merge shapes, the
//! sharded referee's output and error verdicts equal the monolithic
//! [`assemble_from_arrivals`] **exactly** — same message vector, same
//! `DecodeError` variant and text.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use referee_protocol::referee::assemble_from_arrivals;
use referee_protocol::shard::{route_arrival, Arrival, PartialState, RefereeShard};
use referee_protocol::{BitWriter, DecodeError, Message};

fn msg(value: u64, width: u32) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(value & ((1u64 << width) - 1), width);
    Message::from_writer(w)
}

/// An arrival multiset for a size-`n` network: mostly one message per
/// node, mutated with drops, identical + conflicting duplicates and
/// out-of-range senders, in a shuffled order.
fn arrivals(n: usize, seed: u64) -> Vec<(u32, Message)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(u32, Message)> = Vec::new();
    for v in 1..=n as u32 {
        if rng.gen_bool(0.1) {
            continue; // missing node
        }
        let m = msg(rng.gen_range(0..=u64::MAX >> 16), 31);
        out.push((v, m.clone()));
        if rng.gen_bool(0.1) {
            out.push((v, m)); // identical duplicate
        } else if rng.gen_bool(0.07) {
            out.push((v, msg(rng.gen_range(0..1 << 20), 31))); // conflicting duplicate
        }
    }
    if rng.gen_bool(0.2) {
        let stray =
            if rng.gen_bool(0.3) { 0 } else { n as u32 + rng.gen_range(1..20u64) as u32 };
        out.push((stray, msg(3, 5)));
    }
    out.shuffle(&mut rng);
    out
}

/// Run the sharded path: route every arrival to its shard, ingest with
/// the monolithic duplicate policy, then merge the partial states in a
/// seeded order, either as a left fold or as a pairwise tree.
fn sharded_assembly(
    n: usize,
    k: usize,
    arrivals: &[(u32, Message)],
    seed: u64,
    pairwise: bool,
) -> Result<Vec<Message>, DecodeError> {
    let mut shards: Vec<RefereeShard> = (0..k).map(|i| RefereeShard::new(n, k, i)).collect();
    for (sender, m) in arrivals {
        let shard = &mut shards[route_arrival(n, k, *sender)];
        if let Arrival::Duplicate { .. } = shard.ingest(*sender, m.clone()).expect("routed") {
            shard.note_duplicate(*sender);
        }
    }
    let mut partials: Vec<PartialState> =
        shards.into_iter().map(RefereeShard::into_partial).collect();
    partials.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x5eed));
    if pairwise {
        // Merge as a tree: repeatedly merge adjacent pairs.
        while partials.len() > 1 {
            let mut next = Vec::new();
            let mut it = partials.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge(b).expect("same n");
                }
                next.push(a);
            }
            partials = next;
        }
        partials.pop().expect("k >= 1").finish()
    } else {
        let mut acc = PartialState::new(n);
        for p in partials {
            acc.merge(p).expect("same n");
        }
        acc.finish()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Any shard count, any arrival interleaving, any merge shape —
    /// identical `Result` (messages or verdict) to the monolithic path.
    #[test]
    fn sharded_equals_monolithic(
        n in 0usize..48,
        k in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let arr = arrivals(n, seed);
        let mono = assemble_from_arrivals(n, arr.iter().cloned());
        let fold = sharded_assembly(n, k, &arr, seed, false);
        let tree = sharded_assembly(n, k, &arr, seed.wrapping_add(1), true);
        prop_assert_eq!(&fold, &mono, "left-fold merge diverged (n={}, k={})", n, k);
        prop_assert_eq!(&tree, &mono, "pairwise-tree merge diverged (n={}, k={})", n, k);
    }

    /// Partial states survive their wire serialization: shard, encode,
    /// decode, merge the *decoded* copies — still the monolithic result.
    #[test]
    fn encoded_partials_still_merge_exactly(
        n in 0usize..32,
        k in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let arr = arrivals(n, seed);
        let mono = assemble_from_arrivals(n, arr.iter().cloned());
        let mut shards: Vec<RefereeShard> =
            (0..k).map(|i| RefereeShard::new(n, k, i)).collect();
        for (sender, m) in &arr {
            let shard = &mut shards[route_arrival(n, k, *sender)];
            if let Arrival::Duplicate { .. } =
                shard.ingest(*sender, m.clone()).expect("routed")
            {
                shard.note_duplicate(*sender);
            }
        }
        let mut acc = PartialState::new(n);
        for s in shards {
            let p = s.into_partial();
            let wire = p.encode();
            let decoded = PartialState::decode(n, &wire).expect("own encoding decodes");
            prop_assert_eq!(&decoded, &p);
            acc.merge(decoded).expect("same n");
        }
        prop_assert_eq!(acc.finish(), mono);
    }
}

/// Cross-shard sender collisions (impossible under honest routing, but
/// exactly what a duplicated exchange or a buggy router would produce)
/// surface as the canonical duplicate verdict after merge.
#[test]
fn merge_collision_is_a_duplicate_verdict() {
    let build = |payload: u64| {
        let mut s = RefereeShard::new(4, 1, 0);
        for v in 1..=4u32 {
            s.ingest(v, msg(payload + v as u64, 8)).unwrap();
        }
        s.into_partial()
    };
    let mut a = build(0);
    a.merge(build(100)).unwrap();
    match a.finish() {
        Err(DecodeError::Inconsistent(m)) => {
            assert!(m.contains("duplicate message from node 1"), "{m}")
        }
        other => panic!("expected duplicate verdict, got {other:?}"),
    }
}

/// The monolithic wrapper still rejects exactly what it used to.
#[test]
fn monolithic_rejections_unchanged() {
    let m = Message::empty();
    assert!(matches!(
        assemble_from_arrivals(2, [(1, m.clone()), (1, m.clone())]),
        Err(DecodeError::Inconsistent(_))
    ));
    assert!(matches!(
        assemble_from_arrivals(2, [(1, m.clone())]),
        Err(DecodeError::Inconsistent(_))
    ));
    assert!(matches!(
        assemble_from_arrivals(2, [(1, m.clone()), (3, m.clone())]),
        Err(DecodeError::OutOfRange(_))
    ));
    assert_eq!(assemble_from_arrivals(2, [(2, m.clone()), (1, m)]).unwrap().len(), 2);
}
