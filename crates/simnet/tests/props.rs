//! Property and acceptance tests for the session runtime.
//!
//! The load-bearing property: a session over a **zero-fault**
//! [`FaultyTransport`] is bit-for-bit equivalent to the legacy
//! synchronous `run_protocol` — same output, same `max_message_bits` —
//! on arbitrary random graphs. That equivalence is what licenses the
//! facade crate to route everything through simnet.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::{DegeneracyProtocol, ForestProtocol, Reconstruction};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_simnet::{
    FaultConfig, FaultyTransport, MultiRoundSession, OneRoundSession, PerfectTransport,
    Scheduler,
};

fn gnp(n: usize, seed: u64, p10: u32) -> LabelledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::gnp(n, p10 as f64 / 10.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero-fault FaultyTransport ≡ legacy run_protocol: same output,
    /// same max_message_bits, on random graphs (ISSUE acceptance).
    #[test]
    fn lossless_faulty_transport_equals_legacy(
        n in 2usize..40,
        seed in any::<u64>(),
        p10 in 0u32..=10,
        k in 1usize..4,
    ) {
        let g = gnp(n, seed, p10);
        let protocol = DegeneracyProtocol::new(k);
        let legacy = referee_protocol::run_protocol(&protocol, &g);

        let mut transport = FaultyTransport::new(
            PerfectTransport::new(),
            FaultConfig::lossless(seed ^ 0xabcd),
        );
        let report = OneRoundSession::new(&protocol, &g).run(&mut transport);

        prop_assert_eq!(report.outcome.expect("lossless delivery"), legacy.output);
        prop_assert_eq!(report.metrics.stats.max_message_bits, legacy.stats.max_message_bits);
        prop_assert_eq!(report.metrics.stats.total_message_bits, legacy.stats.total_message_bits);
        // No fault counter may tick on a lossless config.
        let c = report.metrics.transport;
        prop_assert_eq!(
            (c.dropped, c.duplicated, c.corrupted, c.reordered, c.stale),
            (0, 0, 0, 0, 0)
        );
    }

    /// Same equivalence for the forest protocol (different decoder path).
    #[test]
    fn lossless_equivalence_forest_protocol(n in 1usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        let legacy = referee_protocol::run_protocol(&ForestProtocol, &g);
        let mut transport =
            FaultyTransport::new(PerfectTransport::new(), FaultConfig::lossless(seed));
        let report = OneRoundSession::new(&ForestProtocol, &g).run(&mut transport);
        prop_assert_eq!(report.outcome.expect("lossless delivery"), legacy.output);
        prop_assert_eq!(report.metrics.stats.max_message_bits, legacy.stats.max_message_bits);
    }

    /// Multi-round sessions under a lossless faulty transport agree with
    /// the legacy lock-step executor.
    #[test]
    fn lossless_equivalence_multiround(n in 2usize..40, seed in any::<u64>(), p10 in 0u32..=10) {
        let g = gnp(n, seed, p10);
        let cap = 64;
        let (legacy, legacy_stats) =
            referee_protocol::multiround::run_multiround(&BoruvkaConnectivity, &g, cap);
        let mut transport =
            FaultyTransport::new(PerfectTransport::new(), FaultConfig::lossless(seed));
        let report = MultiRoundSession::new(&BoruvkaConnectivity, &g, cap).run(&mut transport);
        let simnet = report.outcome.expect("lossless delivery");
        prop_assert_eq!(
            simnet.map(|r| r.expect("honest run decodes")),
            legacy.map(|r| r.expect("honest run decodes"))
        );
        prop_assert_eq!(report.stats.rounds, legacy_stats.rounds);
        prop_assert_eq!(report.stats.max_uplink_bits, legacy_stats.max_uplink_bits);
    }

    /// Under loss, duplication and reordering (no corruption), a session
    /// either rejects with a DecodeError or returns the *correct* result
    /// — never a wrong one, never a hang.
    #[test]
    fn loss_dup_reorder_never_lies(n in 2usize..30, seed in any::<u64>(), p10 in 0u32..=10) {
        let g = gnp(n, seed, p10);
        let truth = referee_protocol::run_protocol(&EdgeCountProtocol, &g)
            .output
            .expect("honest count");
        let cfg = FaultConfig {
            seed,
            loss: 0.05,
            duplication: 0.2,
            reorder: 0.4,
            corruption: 0.0,
        };
        let mut transport = FaultyTransport::new(PerfectTransport::new(), cfg);
        let report = OneRoundSession::new(&EdgeCountProtocol, &g).run(&mut transport);
        match report.outcome {
            Err(_) => {} // loss detected and rejected
            Ok(out) => prop_assert_eq!(out.expect("well-formed messages"), truth),
        }
    }

    /// Duplication + reordering *without* loss is always survivable:
    /// identical retransmissions are deduplicated, order is irrelevant.
    #[test]
    fn dup_reorder_without_loss_always_succeeds(
        n in 2usize..30,
        seed in any::<u64>(),
        p10 in 0u32..=10,
    ) {
        let g = gnp(n, seed, p10);
        let truth = referee_protocol::run_protocol(&EdgeCountProtocol, &g)
            .output
            .expect("honest count");
        let cfg = FaultConfig {
            seed,
            loss: 0.0,
            duplication: 0.3,
            reorder: 0.5,
            corruption: 0.0,
        };
        let mut transport = FaultyTransport::new(PerfectTransport::new(), cfg);
        let report = OneRoundSession::new(&EdgeCountProtocol, &g).run(&mut transport);
        prop_assert_eq!(
            report.outcome.expect("nothing was lost").expect("well-formed"),
            truth
        );
    }

    /// Corrupted one-round degeneracy runs end in a decode error, a
    /// rejection, or the original graph — never a different graph
    /// (the transport-level mirror of the bit-flip sweeps).
    #[test]
    fn corruption_never_misreconstructs(seed in any::<u64>(), n in 6usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_k_degenerate(n, 2, 1.0, &mut rng);
        let protocol = DegeneracyProtocol::new(2);
        let mut transport = FaultyTransport::new(
            PerfectTransport::new(),
            FaultConfig::corrupting(seed, 0.3),
        );
        let report = OneRoundSession::new(&protocol, &g).run(&mut transport);
        match report.outcome {
            Err(_) => {}
            Ok(Err(_)) | Ok(Ok(Reconstruction::NotInClass)) => {}
            Ok(Ok(Reconstruction::Graph(h))) => {
                prop_assert_eq!(h, g, "silent mis-reconstruction under corruption");
            }
        }
    }
}

/// ISSUE acceptance: ≥ 1000 concurrent DegeneracyProtocol sessions in
/// one process, with aggregate metrics.
#[test]
fn thousand_concurrent_degeneracy_sessions() {
    let mut rng = StdRng::seed_from_u64(2011);
    let graphs: Vec<LabelledGraph> = (0..1000)
        .map(|i| generators::random_k_degenerate(16 + i % 17, 2, 1.0, &mut rng))
        .collect();
    let protocol = DegeneracyProtocol::new(2);

    let sweep = Scheduler::default().sweep_one_round(&protocol, &graphs, None);

    assert_eq!(sweep.reports.len(), 1000);
    assert_eq!(sweep.aggregate.sessions, 1000);
    assert_eq!(sweep.aggregate.ok, 1000, "perfect transport: no rejections");
    assert_eq!(sweep.aggregate.rejected, 0);
    assert!(sweep.aggregate.total_message_bits > 0);
    assert!(sweep.aggregate.max_frugality_ratio > 0.0);
    // Every session reconstructed its own graph exactly.
    for (report, g) in sweep.reports.iter().zip(&graphs) {
        match report.outcome.as_ref().expect("perfect transport") {
            Ok(Reconstruction::Graph(h)) => assert_eq!(h, g),
            other => panic!("k-degenerate graph not reconstructed: {other:?}"),
        }
    }
    // The transport counters saw every node's message exactly once.
    let expected_messages: u64 = graphs.iter().map(|g| g.n() as u64).sum();
    assert_eq!(sweep.aggregate.transport.sent, expected_messages);
    assert_eq!(sweep.aggregate.transport.delivered, expected_messages);
}

/// The same fleet under a hostile network: sessions reject cleanly, the
/// fleet rollup accounts for every fault, and no run hangs or panics.
#[test]
fn thousand_sessions_survive_hostile_network() {
    let mut rng = StdRng::seed_from_u64(4022);
    let graphs: Vec<LabelledGraph> =
        (0..1000).map(|_| generators::random_k_degenerate(14, 2, 1.0, &mut rng)).collect();
    let protocol = DegeneracyProtocol::new(2);

    let sweep =
        Scheduler::new(8, 16).sweep_one_round(&protocol, &graphs, Some(FaultConfig::noisy(77)));

    assert_eq!(sweep.aggregate.sessions, 1000);
    assert_eq!(sweep.aggregate.ok + sweep.aggregate.rejected, 1000);
    // With 2% loss over ~14-message sessions, some but not all sessions
    // must fail; both branches of the runtime get exercised.
    assert!(sweep.aggregate.rejected > 0, "hostile network never bit");
    assert!(sweep.aggregate.ok > 0, "hostile network killed everything");
    let c = sweep.aggregate.transport;
    assert!(c.dropped > 0 && c.duplicated > 0 && c.corrupted > 0 && c.reordered > 0);
    // No fabricated graphs: whatever decoded, decoded to the original.
    for (report, g) in sweep.reports.iter().zip(&graphs) {
        if let Ok(Ok(Reconstruction::Graph(h))) = &report.outcome {
            assert_eq!(h, g, "corrupted session fabricated a graph");
        }
    }
}

/// With an injected [`ManualClock`] advanced only *between* steps (the
/// way a reactor poll loop stamps time), latency metrics are exact,
/// reproducible numbers instead of wall-clock noise.
#[test]
fn manual_clock_makes_latency_metrics_deterministic() {
    use referee_simnet::{ManualClock, Step};

    // One-round: the single round spans every step but the first.
    let g = generators::path(8);
    let clock = ManualClock::new();
    let mut transport = PerfectTransport::new();
    let mut session = OneRoundSession::new(&EdgeCountProtocol, &g).with_clock(clock.clone());
    let mut steps = 0usize;
    while session.step(&mut transport) == Step::Running {
        clock.advance(0.25);
        steps += 1;
    }
    let report = session.into_report(&transport);
    assert_eq!(report.outcome.unwrap().unwrap(), g.m());
    assert_eq!(report.metrics.round_seconds, vec![steps as f64 * 0.25]);
    // No advance happened *inside* a step, so phase times are exactly 0.
    assert_eq!(report.metrics.stats.local_seconds, 0.0);
    assert_eq!(report.metrics.stats.global_seconds, 0.0);

    // Multi-round: each full round is exactly 3 steps (send, uplinks,
    // receive) with the clock advanced after each, except the last
    // (which terminates during its uplink step).
    let clock = ManualClock::new();
    let mut transport = PerfectTransport::new();
    let mut session =
        MultiRoundSession::new(&BoruvkaConnectivity, &g, 64).with_clock(clock.clone());
    while session.step(&mut transport) == Step::Running {
        clock.advance(0.25);
    }
    let report = session.into_report(&transport);
    assert!(report.outcome.unwrap().unwrap().unwrap(), "path is connected");
    let rounds = report.metrics.rounds;
    assert!(rounds >= 3, "Borůvka needs rounds on a path");
    assert_eq!(report.metrics.round_seconds.len(), rounds);
    for (r, &secs) in report.metrics.round_seconds.iter().enumerate() {
        let expect = if r + 1 < rounds { 0.5 } else { 0.25 };
        assert_eq!(secs, expect, "round {r} latency");
    }
    assert_eq!(report.metrics.stats.local_seconds, 0.0);
    assert_eq!(report.metrics.stats.global_seconds, 0.0);
}

/// Multi-round sweep: a thousand Borůvka sessions, mixed topologies,
/// perfect transport — verdicts match centralized connectivity.
#[test]
fn multiround_sweep_matches_centralized() {
    let mut rng = StdRng::seed_from_u64(5033);
    let graphs: Vec<LabelledGraph> = (0..300).map(|_| gnp_from(&mut rng)).collect();
    let sweep = Scheduler::default().sweep_multi_round(&BoruvkaConnectivity, &graphs, 64, None);
    assert_eq!(sweep.aggregate.sessions, 300);
    assert_eq!(sweep.aggregate.ok, 300);
    assert!(sweep.aggregate.mean_rounds() >= 3.0, "Borůvka needs rounds");
    for (report, g) in sweep.reports.iter().zip(&graphs) {
        let verdict = report
            .outcome
            .as_ref()
            .expect("perfect transport")
            .as_ref()
            .expect("referee finished under cap")
            .as_ref()
            .expect("honest run decodes");
        assert_eq!(*verdict, referee_graph::algo::is_connected(g));
    }

    fn gnp_from(rng: &mut StdRng) -> LabelledGraph {
        use rand::Rng;
        let n = rng.gen_range(2usize..40);
        let p = [0.02, 0.08, 0.2][rng.gen_range(0..3usize)];
        generators::gnp(n, p, rng)
    }
}
