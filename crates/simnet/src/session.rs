//! Session state machines: protocol executions as explicit, pollable
//! state, with all I/O abstracted behind a [`Transport`].
//!
//! A session owns *both* sides of the referee model — the nodes' local
//! computations and the referee's global computation — but routes every
//! message between them through the transport. `step()` advances the
//! machine as far as currently-deliverable traffic allows and returns;
//! the caller (a scheduler, a test, an eventual async reactor) decides
//! when to poll again. Nothing here blocks, sleeps, or spawns.
//!
//! Delivery semantics (the same for both machines):
//!
//! * **Out-of-order arrivals** are fine: envelopes are round-stamped and
//!   buffered until their consumer phase runs (the early-message cache).
//! * **Duplicates** are fine *if identical*: at-least-once delivery is
//!   made idempotent by content comparison; the copy is counted as
//!   `stale`. A duplicate that *differs* from the recorded original
//!   **and arrives while its round is still open** is evidence of
//!   tampering and fails the session with
//!   [`DecodeError::Inconsistent`]; duplicates straggling in after
//!   their round committed are dropped uncompared (the original was
//!   already consumed, so they can no longer influence any outcome).
//! * **Loss** is detected when the transport reports itself empty while
//!   the session still expects traffic — a session never hangs.
//! * **Corruption** is *not* detected here. Flipped bits flow unchanged
//!   into the protocol decoders, whose existing [`DecodeError`] rejection
//!   paths are the system's integrity layer. (Transports that cross real
//!   sockets add their own frame MACs — `wirenet` — but that happens
//!   below this boundary.)
//! * **Cross-session traffic** is a demux fault: an inbound envelope
//!   whose [`SessionId`] differs from the session's own fails the run
//!   with [`DecodeError::Invalid`] rather than being silently absorbed
//!   into the wrong protocol state.

use crate::clock::{real_clock, SharedClock};
use crate::metrics::SessionMetrics;
use crate::transport::{Envelope, SessionId, Transport, REFEREE};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::multiround::{MultiRoundProtocol, MultiRoundStats, RefereeStep};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};
use std::collections::BTreeMap;

/// Result of one [`step`](OneRoundSession::step) call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// More work remains; poll again.
    Running,
    /// The session has an outcome.
    Done,
}

/// Nodes computed per `step()` call in the local phase — small enough
/// that a scheduler interleaving thousands of sessions stays responsive,
/// large enough to amortise the call overhead.
const LOCAL_BATCH: usize = 64;

// ---------------------------------------------------------------------------
// One-round sessions
// ---------------------------------------------------------------------------

enum OneRoundPhase {
    /// Computing and transmitting local messages; `next` is the first
    /// node that has not sent yet.
    Local {
        next: u32,
    },
    /// Waiting for the referee's mailbox to fill.
    Collect,
    Finished,
}

/// A single execution of a [`OneRoundProtocol`] as a state machine.
pub struct OneRoundSession<'a, P: OneRoundProtocol> {
    protocol: &'a P,
    graph: &'a LabelledGraph,
    session: SessionId,
    clock: SharedClock,
    phase: OneRoundPhase,
    slots: Vec<Option<Message>>,
    filled: usize,
    started: f64,
    outcome: Option<Result<P::Output, DecodeError>>,
    metrics: SessionMetrics,
}

impl<'a, P: OneRoundProtocol + Sync> OneRoundSession<'a, P> {
    /// A fresh session for `protocol` on `graph`.
    pub fn new(protocol: &'a P, graph: &'a LabelledGraph) -> Self {
        let n = graph.n();
        let clock = real_clock();
        OneRoundSession {
            protocol,
            graph,
            session: SessionId::default(),
            started: clock.now(),
            clock,
            phase: OneRoundPhase::Local { next: 1 },
            slots: vec![None; n],
            filled: 0,
            outcome: None,
            metrics: SessionMetrics::new(n),
        }
    }

    /// Tag this session's envelopes with `id` (multiplexing). Inbound
    /// envelopes carrying any *other* session id fail the run — they are
    /// evidence of a demultiplexing fault in the transport layer.
    pub fn with_session(mut self, id: SessionId) -> Self {
        self.session = id;
        self
    }

    /// Stamp latency metrics from `clock` instead of wall time.
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.started = clock.now();
        self.clock = clock;
        self
    }

    /// Advance as far as deliverable traffic allows.
    pub fn step(&mut self, transport: &mut impl Transport) -> Step {
        match self.phase {
            OneRoundPhase::Local { next } => self.step_local(next, transport),
            OneRoundPhase::Collect => self.step_collect(transport),
            OneRoundPhase::Finished => Step::Done,
        }
    }

    /// Drive to completion on `transport`.
    pub fn run(mut self, transport: &mut impl Transport) -> OneRoundReport<P::Output> {
        while self.step(transport) == Step::Running {}
        self.into_report(transport)
    }

    /// The outcome and metrics; call after `step` returns [`Step::Done`].
    pub fn into_report(mut self, transport: &impl Transport) -> OneRoundReport<P::Output> {
        let outcome = self.outcome.take().expect("session not finished");
        self.metrics.transport.merge(&transport.counters());
        OneRoundReport { outcome, metrics: self.metrics }
    }

    fn step_local(&mut self, next: u32, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        let t0 = self.clock.now();
        // Large standalone runs keep the legacy simulator's thread
        // fan-out for the embarrassingly-parallel local phase (a
        // scheduler sweep sets the threshold to MAX, so its sessions
        // always take the incremental path below and stay interleavable).
        if next == 1 && n >= referee_protocol::parallel_threshold() {
            let messages = referee_protocol::referee::local_phase(self.protocol, self.graph);
            for (i, payload) in messages.into_iter().enumerate() {
                self.metrics.stats.max_message_bits =
                    self.metrics.stats.max_message_bits.max(payload.len_bits());
                self.metrics.stats.total_message_bits += payload.len_bits();
                transport.send(Envelope {
                    session: self.session,
                    round: 1,
                    from: (i + 1) as u32,
                    to: REFEREE,
                    payload,
                });
            }
            self.metrics.stats.local_seconds += self.clock.now() - t0;
            self.phase = OneRoundPhase::Collect;
            return Step::Running;
        }
        let last = (next as usize + LOCAL_BATCH - 1).min(n) as u32;
        for v in next..=last {
            let view = NodeView::new(n, v, self.graph.neighbourhood(v));
            let payload = self.protocol.local(view);
            self.metrics.stats.max_message_bits =
                self.metrics.stats.max_message_bits.max(payload.len_bits());
            self.metrics.stats.total_message_bits += payload.len_bits();
            transport.send(Envelope {
                session: self.session,
                round: 1,
                from: v,
                to: REFEREE,
                payload,
            });
        }
        self.metrics.stats.local_seconds += self.clock.now() - t0;
        self.phase = if (last as usize) >= n {
            OneRoundPhase::Collect
        } else {
            OneRoundPhase::Local { next: last + 1 }
        };
        Step::Running
    }

    fn step_collect(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        while self.filled < n {
            let Some(env) = transport.recv() else {
                let missing = n - self.filled;
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained with {missing} of {n} messages missing"
                ))));
            };
            if env.session != self.session {
                return self.finish(Err(DecodeError::Invalid(format!(
                    "envelope for session {} delivered to session {} (demux fault)",
                    env.session, self.session
                ))));
            }
            if env.to != REFEREE || env.round != 1 {
                return self.finish(Err(DecodeError::Invalid(format!(
                    "unexpected round-{} envelope from node {} to {} in a one-round session",
                    env.round, env.from, env.to
                ))));
            }
            if env.from == REFEREE || env.from as usize > n {
                return self.finish(Err(DecodeError::OutOfRange(format!(
                    "message from unknown node {} (n = {n})",
                    env.from
                ))));
            }
            let slot = &mut self.slots[(env.from - 1) as usize];
            match slot {
                None => {
                    *slot = Some(env.payload);
                    self.filled += 1;
                }
                Some(existing) if *existing == env.payload => {
                    // At-least-once delivery made idempotent.
                    self.metrics.transport.stale += 1;
                }
                Some(_) => {
                    return self.finish(Err(DecodeError::Inconsistent(format!(
                        "conflicting duplicate message from node {}",
                        env.from
                    ))));
                }
            }
        }
        let messages: Vec<Message> =
            self.slots.drain(..).map(|s| s.expect("all slots filled")).collect();
        let t0 = self.clock.now();
        let output = self.protocol.global(n, &messages);
        self.metrics.stats.global_seconds = self.clock.now() - t0;
        self.finish(Ok(output))
    }

    fn finish(&mut self, outcome: Result<P::Output, DecodeError>) -> Step {
        self.metrics.rounds = 1;
        self.metrics.round_seconds = vec![self.clock.now() - self.started];
        self.outcome = Some(outcome);
        self.phase = OneRoundPhase::Finished;
        Step::Done
    }
}

/// Outcome of a one-round session.
#[derive(Debug)]
pub struct OneRoundReport<O> {
    /// The referee's output, or the decode/delivery failure that ended
    /// the session.
    pub outcome: Result<O, DecodeError>,
    /// Everything measured along the way.
    pub metrics: SessionMetrics,
}

// ---------------------------------------------------------------------------
// Multi-round sessions
// ---------------------------------------------------------------------------

/// Per-round mailboxes. Envelopes for *future* rounds land here too —
/// that is the early-message cache that makes reordering across round
/// boundaries harmless.
struct RoundBuf {
    uplinks: Vec<Option<Message>>,
    uplinks_filled: usize,
    downlinks: Vec<Option<Message>>,
    downlinks_filled: usize,
    inbox: Vec<Vec<(VertexId, Message)>>,
    inbox_count: usize,
}

impl RoundBuf {
    fn new(n: usize) -> Self {
        RoundBuf {
            uplinks: vec![None; n],
            uplinks_filled: 0,
            downlinks: vec![None; n],
            downlinks_filled: 0,
            inbox: vec![Vec::new(); n],
            inbox_count: 0,
        }
    }
}

enum MultiRoundPhase {
    NodeSend,
    AwaitUplinks,
    AwaitReceive,
    Finished,
}

/// A single execution of a [`MultiRoundProtocol`] as a state machine.
pub struct MultiRoundSession<'a, P: MultiRoundProtocol> {
    protocol: &'a P,
    graph: &'a LabelledGraph,
    session: SessionId,
    clock: SharedClock,
    max_rounds: usize,
    node_states: Vec<P::NodeState>,
    referee_state: P::RefereeState,
    round: u32,
    phase: MultiRoundPhase,
    bufs: BTreeMap<u32, RoundBuf>,
    /// Node→node envelopes sent this round (recorded at send time: the
    /// session knows the ground truth of what was transmitted, so loss is
    /// distinguishable from "that neighbour simply did not send").
    links_expected: usize,
    /// Per-(node, round) duplicate-target detection in O(1) per send:
    /// `link_seen[target] == link_epoch` means this sender already
    /// messaged `target` in the current round.
    link_seen: Vec<u64>,
    link_epoch: u64,
    round_started: f64,
    outcome: Option<Result<Option<P::Output>, DecodeError>>,
    metrics: SessionMetrics,
    mr_stats: MultiRoundStats,
}

impl<'a, P: MultiRoundProtocol> MultiRoundSession<'a, P> {
    /// A fresh session; `max_rounds` is the safety stop, mirroring
    /// [`referee_protocol::multiround::run_multiround`].
    pub fn new(protocol: &'a P, graph: &'a LabelledGraph, max_rounds: usize) -> Self {
        let n = graph.n();
        let node_states: Vec<P::NodeState> = (1..=n as u32)
            .map(|v| protocol.node_init(NodeView::new(n, v, graph.neighbourhood(v))))
            .collect();
        let referee_state = protocol.referee_init(n);
        let clock = real_clock();
        MultiRoundSession {
            protocol,
            graph,
            session: SessionId::default(),
            round_started: clock.now(),
            clock,
            max_rounds,
            node_states,
            referee_state,
            round: 1,
            phase: MultiRoundPhase::NodeSend,
            bufs: BTreeMap::new(),
            links_expected: 0,
            link_seen: vec![0; n + 1],
            link_epoch: 0,
            outcome: None,
            metrics: SessionMetrics::new(n),
            mr_stats: MultiRoundStats {
                n,
                rounds: 0,
                max_uplink_bits: 0,
                max_downlink_bits: 0,
                max_link_bits: 0,
            },
        }
    }

    /// Tag this session's envelopes with `id` (multiplexing). Inbound
    /// envelopes carrying any *other* session id fail the run — they are
    /// evidence of a demultiplexing fault in the transport layer.
    pub fn with_session(mut self, id: SessionId) -> Self {
        self.session = id;
        self
    }

    /// Stamp latency metrics from `clock` instead of wall time.
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.round_started = clock.now();
        self.clock = clock;
        self
    }

    /// Advance as far as deliverable traffic allows.
    pub fn step(&mut self, transport: &mut impl Transport) -> Step {
        match self.phase {
            MultiRoundPhase::NodeSend => self.step_send(transport),
            MultiRoundPhase::AwaitUplinks => self.step_uplinks(transport),
            MultiRoundPhase::AwaitReceive => self.step_receive(transport),
            MultiRoundPhase::Finished => Step::Done,
        }
    }

    /// Drive to completion on `transport`.
    pub fn run(mut self, transport: &mut impl Transport) -> MultiRoundReport<P::Output> {
        while self.step(transport) == Step::Running {}
        self.into_report(transport)
    }

    /// The outcome, metrics and multi-round stats; call after `step`
    /// returns [`Step::Done`].
    pub fn into_report(mut self, transport: &impl Transport) -> MultiRoundReport<P::Output> {
        let outcome = self.outcome.take().expect("session not finished");
        self.metrics.transport.merge(&transport.counters());
        MultiRoundReport { outcome, metrics: self.metrics, stats: self.mr_stats }
    }

    fn buf(bufs: &mut BTreeMap<u32, RoundBuf>, n: usize, round: u32) -> &mut RoundBuf {
        bufs.entry(round).or_insert_with(|| RoundBuf::new(n))
    }

    /// Classify one arrival into its round buffer. Rounds older than the
    /// current one are committed history: their traffic is counted stale
    /// and dropped (idempotent at-least-once delivery).
    fn classify(&mut self, env: Envelope) -> Result<(), DecodeError> {
        let n = self.graph.n();
        if env.session != self.session {
            return Err(DecodeError::Invalid(format!(
                "envelope for session {} delivered to session {} (demux fault)",
                env.session, self.session
            )));
        }
        if env.round < self.round {
            self.metrics.transport.stale += 1;
            return Ok(());
        }
        if env.from == REFEREE {
            // Downlink.
            if env.to == REFEREE || env.to as usize > n {
                return Err(DecodeError::OutOfRange(format!(
                    "downlink to unknown node {}",
                    env.to
                )));
            }
            let buf = Self::buf(&mut self.bufs, n, env.round);
            let slot = &mut buf.downlinks[(env.to - 1) as usize];
            match slot {
                None => {
                    *slot = Some(env.payload);
                    buf.downlinks_filled += 1;
                }
                Some(existing) if *existing == env.payload => self.metrics.transport.stale += 1,
                Some(_) => {
                    return Err(DecodeError::Inconsistent(format!(
                        "conflicting duplicate downlink for node {}",
                        env.to
                    )))
                }
            }
            return Ok(());
        }
        if env.from as usize > n {
            return Err(DecodeError::OutOfRange(format!(
                "message from unknown node {} (n = {n})",
                env.from
            )));
        }
        if env.to == REFEREE {
            // Uplink.
            let buf = Self::buf(&mut self.bufs, n, env.round);
            let slot = &mut buf.uplinks[(env.from - 1) as usize];
            match slot {
                None => {
                    *slot = Some(env.payload);
                    buf.uplinks_filled += 1;
                }
                Some(existing) if *existing == env.payload => self.metrics.transport.stale += 1,
                Some(_) => {
                    return Err(DecodeError::Inconsistent(format!(
                        "conflicting duplicate uplink from node {}",
                        env.from
                    )))
                }
            }
            return Ok(());
        }
        // Node → node link message.
        if env.to as usize > n {
            return Err(DecodeError::OutOfRange(format!("message to unknown node {}", env.to)));
        }
        if !self.graph.has_edge(env.from, env.to) {
            return Err(DecodeError::Invalid(format!(
                "link message along non-edge {} → {}",
                env.from, env.to
            )));
        }
        let buf = Self::buf(&mut self.bufs, n, env.round);
        let inbox = &mut buf.inbox[(env.to - 1) as usize];
        match inbox.iter().find(|(from, _)| *from == env.from) {
            Some((_, existing)) if *existing == env.payload => {
                self.metrics.transport.stale += 1
            }
            Some(_) => {
                return Err(DecodeError::Inconsistent(format!(
                    "conflicting duplicate link message {} → {}",
                    env.from, env.to
                )))
            }
            None => {
                inbox.push((env.from, env.payload));
                buf.inbox_count += 1;
            }
        }
        Ok(())
    }

    /// Pull envelopes until `ready` holds or the transport drains.
    /// Returns `Ok(true)` when ready, `Ok(false)` on starvation.
    fn pump(
        &mut self,
        transport: &mut impl Transport,
        ready: impl Fn(&RoundBuf, usize) -> bool,
    ) -> Result<bool, DecodeError> {
        let n = self.graph.n();
        loop {
            {
                let buf = Self::buf(&mut self.bufs, n, self.round);
                if ready(buf, self.links_expected) {
                    return Ok(true);
                }
            }
            let Some(env) = transport.recv() else {
                return Ok(false);
            };
            self.classify(env)?;
        }
    }

    fn step_send(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        if self.mr_stats.rounds >= self.max_rounds {
            return self.finish(Ok(None)); // round cap: referee never finished
        }
        self.round_started = self.clock.now();
        self.mr_stats.rounds += 1;
        self.links_expected = 0;
        for v in 1..=n as u32 {
            let view = NodeView::new(n, v, self.graph.neighbourhood(v));
            let (to_nbrs, uplink) = self.protocol.node_send(
                &self.node_states[(v - 1) as usize],
                view,
                self.round as usize,
            );
            self.mr_stats.max_uplink_bits =
                self.mr_stats.max_uplink_bits.max(uplink.len_bits());
            self.metrics.stats.total_message_bits += uplink.len_bits();
            transport.send(Envelope {
                session: self.session,
                round: self.round,
                from: v,
                to: REFEREE,
                payload: uplink,
            });
            self.link_epoch += 1;
            for (target, payload) in to_nbrs {
                if !self.graph.has_edge(v, target) {
                    return self.finish(Err(DecodeError::Invalid(format!(
                        "node {v} tried to message non-neighbour {target}"
                    ))));
                }
                // CONGEST carries one message per link per round; a
                // second send to the same target would be inseparable
                // from a transport duplicate at the receiver, so it is
                // rejected here rather than mis-accounted later.
                if self.link_seen[target as usize] == self.link_epoch {
                    return self.finish(Err(DecodeError::Invalid(format!(
                        "node {v} sent two messages to {target} in round {} \
                         (one message per link per round)",
                        self.round
                    ))));
                }
                self.link_seen[target as usize] = self.link_epoch;
                self.mr_stats.max_link_bits =
                    self.mr_stats.max_link_bits.max(payload.len_bits());
                self.metrics.stats.total_message_bits += payload.len_bits();
                self.links_expected += 1;
                transport.send(Envelope {
                    session: self.session,
                    round: self.round,
                    from: v,
                    to: target,
                    payload,
                });
            }
        }
        self.metrics.stats.local_seconds += self.clock.now() - self.round_started;
        self.phase = MultiRoundPhase::AwaitUplinks;
        Step::Running
    }

    fn step_uplinks(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        match self.pump(transport, |buf, _| buf.uplinks_filled == buf.uplinks.len()) {
            Err(e) => return self.finish(Err(e)),
            Ok(false) => {
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained while referee awaited round-{} uplinks",
                    self.round
                ))))
            }
            Ok(true) => {}
        }
        let uplinks: Vec<Message> = {
            let buf = self.bufs.get_mut(&self.round).expect("buffer exists once ready");
            buf.uplinks.iter().map(|s| s.clone().expect("uplink present")).collect()
        };
        let t0 = self.clock.now();
        let step = self.protocol.referee_step(
            &mut self.referee_state,
            n,
            self.round as usize,
            &uplinks,
        );
        self.metrics.stats.global_seconds += self.clock.now() - t0;
        match step {
            RefereeStep::Done(out) => self.finish(Ok(Some(out))),
            RefereeStep::Continue(downlinks) => {
                if downlinks.len() != n {
                    return self.finish(Err(DecodeError::Inconsistent(format!(
                        "referee produced {} downlinks for {n} nodes",
                        downlinks.len()
                    ))));
                }
                for (i, payload) in downlinks.into_iter().enumerate() {
                    self.mr_stats.max_downlink_bits =
                        self.mr_stats.max_downlink_bits.max(payload.len_bits());
                    self.metrics.stats.total_message_bits += payload.len_bits();
                    transport.send(Envelope {
                        session: self.session,
                        round: self.round,
                        from: REFEREE,
                        to: (i + 1) as u32,
                        payload,
                    });
                }
                self.phase = MultiRoundPhase::AwaitReceive;
                Step::Running
            }
        }
    }

    fn step_receive(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        match self.pump(transport, |buf, links| {
            buf.downlinks_filled == buf.downlinks.len() && buf.inbox_count == links
        }) {
            Err(e) => return self.finish(Err(e)),
            Ok(false) => {
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained while nodes awaited round-{} deliveries",
                    self.round
                ))))
            }
            Ok(true) => {}
        }
        let mut buf = self.bufs.remove(&self.round).expect("buffer exists once ready");
        let t0 = self.clock.now();
        for v in 1..=n as u32 {
            let i = (v - 1) as usize;
            buf.inbox[i].sort_by_key(|&(from, _)| from);
            let view = NodeView::new(n, v, self.graph.neighbourhood(v));
            let downlink = buf.downlinks[i].take().expect("downlink present");
            self.protocol.node_receive(
                &mut self.node_states[i],
                view,
                self.round as usize,
                &buf.inbox[i],
                &downlink,
            );
        }
        self.metrics.stats.local_seconds += self.clock.now() - t0;
        self.metrics.round_seconds.push(self.clock.now() - self.round_started);
        self.round += 1;
        self.phase = MultiRoundPhase::NodeSend;
        Step::Running
    }

    fn finish(&mut self, outcome: Result<Option<P::Output>, DecodeError>) -> Step {
        // Close out the round timer if the session ended mid-round.
        if self.metrics.round_seconds.len() < self.mr_stats.rounds {
            self.metrics.round_seconds.push(self.clock.now() - self.round_started);
        }
        self.metrics.rounds = self.mr_stats.rounds;
        self.metrics.stats.max_message_bits = self
            .mr_stats
            .max_uplink_bits
            .max(self.mr_stats.max_downlink_bits)
            .max(self.mr_stats.max_link_bits);
        self.outcome = Some(outcome);
        self.phase = MultiRoundPhase::Finished;
        Step::Done
    }
}

/// Outcome of a multi-round session.
#[derive(Debug)]
pub struct MultiRoundReport<O> {
    /// `Ok(Some(out))` when the referee finished, `Ok(None)` when the
    /// round cap was hit, `Err` on decode/delivery failure.
    pub outcome: Result<Option<O>, DecodeError>,
    /// Runtime metrics.
    pub metrics: SessionMetrics,
    /// Legacy-compatible per-link-class message-size stats.
    pub stats: MultiRoundStats,
}
