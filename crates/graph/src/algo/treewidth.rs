//! Treewidth: exact computation at small `n`, elimination-order
//! heuristics at any `n`, and tree-decomposition construction/validation.
//!
//! The paper leans on the chain *degeneracy ≤ treewidth* (§I.A: "the
//! degeneracy of a graph is upper bounded by its treewidth", so the
//! Theorem 5 protocol covers bounded-treewidth graphs). This module
//! provides the centralized ground truth for that chain:
//!
//! * [`treewidth_exact`] — Held–Karp-style dynamic programming over
//!   vertex subsets (the classic `O(2ⁿ·poly)` elimination-order DP),
//!   feasible up to `n ≈ 20`;
//! * [`min_degree_order`] / [`min_fill_order`] — greedy elimination
//!   heuristics giving upper bounds with witness orders;
//! * [`width_of_order`] — the width any fixed elimination order attains;
//! * [`decomposition_from_order`] / [`TreeDecomposition::validate`] — turn
//!   an elimination order into a tree decomposition and check the three
//!   defining properties (vertex coverage, edge coverage, running
//!   intersection).
//!
//! The exact DP uses the elimination-order characterization: `tw(G)` is
//! the minimum over vertex orders of the maximum *elimination degree*,
//! where eliminating `v` connects its not-yet-eliminated neighbours into
//! a clique. Writing `Q(S, v)` for the number of vertices outside
//! `S ∪ {v}` reachable from `v` through paths with all internal vertices
//! in `S`, the DP is
//!
//! ```text
//! f(∅) = 0,   f(S) = min_{v ∈ S} max( f(S \ {v}), Q(S \ {v}, v) )
//! ```
//!
//! and `tw(G) = f(V)` (Bodlaender et al., "On exact algorithms for
//! treewidth").

use crate::{LabelledGraph, VertexId};

/// Largest `n` accepted by [`treewidth_exact`] (the DP table is `2ⁿ`
/// bytes and each entry costs a reachability scan).
pub const EXACT_TREEWIDTH_MAX_N: usize = 24;

/// Exact treewidth via subset DP. Panics if `g.n() > `
/// [`EXACT_TREEWIDTH_MAX_N`]. The empty graph has treewidth 0; a single
/// edge has treewidth 1; `K_n` has `n − 1`.
///
/// ```
/// use referee_graph::{algo, generators};
/// assert_eq!(algo::treewidth_exact(&generators::path(8)), 1);
/// assert_eq!(algo::treewidth_exact(&generators::cycle(8).unwrap()), 2);
/// assert_eq!(algo::treewidth_exact(&generators::grid(3, 4)), 3);
/// // §I.A: degeneracy never exceeds treewidth.
/// let g = generators::petersen();
/// let deg = algo::degeneracy_ordering(&g).degeneracy;
/// assert!(deg <= algo::treewidth_exact(&g));
/// ```
pub fn treewidth_exact(g: &LabelledGraph) -> usize {
    let n = g.n();
    assert!(
        n <= EXACT_TREEWIDTH_MAX_N,
        "treewidth_exact is exponential; n = {n} exceeds the {EXACT_TREEWIDTH_MAX_N} cap"
    );
    if n == 0 {
        return 0;
    }
    // Bitmask adjacency; vertex i (0-based) ↔ bit i.
    let adj: Vec<u64> = (1..=n as VertexId)
        .map(|v| g.neighbourhood(v).iter().fold(0u64, |m, &w| m | (1 << (w - 1))))
        .collect();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    // Q(S, v): |{w ∉ S∪{v} : w reachable from v with internals ⊆ S}|.
    let q = |s: u64, v: usize| -> u32 {
        // Grow the set of reached-through-S vertices to a fixpoint, then
        // count the frontier outside S.
        let mut inside = 1u64 << v; // reached vertices that are in S∪{v}
        let mut outside = adj[v] & !s & !(1 << v);
        let mut frontier = adj[v] & s;
        while frontier != 0 {
            let w = frontier.trailing_zeros() as usize;
            frontier &= frontier - 1;
            if inside & (1 << w) != 0 {
                continue;
            }
            inside |= 1 << w;
            outside |= adj[w] & !s & !(1 << v);
            frontier |= adj[w] & s & !inside;
        }
        outside.count_ones()
    };

    let mut f = vec![u8::MAX; 1usize << n];
    f[0] = 0;
    for s in 1u64..=full {
        let mut best = u8::MAX;
        let mut vs = s;
        while vs != 0 {
            let v = vs.trailing_zeros() as usize;
            vs &= vs - 1;
            let rest = s & !(1 << v);
            let sub = f[rest as usize];
            if sub >= best {
                continue; // cannot improve
            }
            let cand = sub.max(q(rest, v).min(u8::MAX as u32) as u8);
            if cand < best {
                best = cand;
            }
        }
        f[s as usize] = best;
    }
    f[full as usize] as usize
}

/// An elimination order together with the width it attains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationOrder {
    /// Vertices in the order they are eliminated (first removed first).
    pub order: Vec<VertexId>,
    /// `max |N_fill(v) ∩ remaining|` over the eliminations — an upper
    /// bound on treewidth witnessed by this order.
    pub width: usize,
}

/// Simulate eliminating `order` on `g` with fill-in, returning the
/// attained width. Panics if `order` is not a permutation of `1..=n`.
pub fn width_of_order(g: &LabelledGraph, order: &[VertexId]) -> usize {
    let n = g.n();
    assert_eq!(order.len(), n, "order must list every vertex exactly once");
    let mut fill = FillGraph::new(g);
    let mut width = 0;
    for &v in order {
        width = width.max(fill.eliminate(v));
    }
    width
}

/// Greedy minimum-degree elimination: always eliminate a vertex of
/// smallest current (fill) degree. `O(n²)`-ish; good bound on sparse
/// graphs (on a `k`-tree it recovers width exactly `k`).
pub fn min_degree_order(g: &LabelledGraph) -> EliminationOrder {
    greedy_order(g, |fill, v| fill.degree(v))
}

/// Greedy minimum-fill elimination: always eliminate the vertex whose
/// elimination adds the fewest fill edges. Usually the strongest of the
/// classic heuristics.
pub fn min_fill_order(g: &LabelledGraph) -> EliminationOrder {
    greedy_order(g, |fill, v| fill.fill_in_cost(v))
}

fn greedy_order(
    g: &LabelledGraph,
    score: impl Fn(&FillGraph, VertexId) -> usize,
) -> EliminationOrder {
    let n = g.n();
    let mut fill = FillGraph::new(g);
    let mut remaining: Vec<VertexId> = (1..=n as VertexId).collect();
    let mut order = Vec::with_capacity(n);
    let mut width = 0;
    while !remaining.is_empty() {
        let (idx, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| (score(&fill, v), v))
            .expect("nonempty");
        remaining.swap_remove(idx);
        width = width.max(fill.eliminate(best));
        order.push(best);
    }
    EliminationOrder { order, width }
}

/// Working fill-in graph for elimination simulations: adjacency as
/// per-vertex sorted vectors over *remaining* vertices.
struct FillGraph {
    adj: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
}

impl FillGraph {
    fn new(g: &LabelledGraph) -> Self {
        let adj = (1..=g.n() as VertexId).map(|v| g.neighbourhood(v).to_vec()).collect();
        FillGraph { adj, alive: vec![true; g.n()] }
    }

    fn degree(&self, v: VertexId) -> usize {
        self.adj[(v - 1) as usize].len()
    }

    /// Number of fill edges eliminating `v` would create now.
    fn fill_in_cost(&self, v: VertexId) -> usize {
        let nbrs = &self.adj[(v - 1) as usize];
        let mut missing = 0;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if self.adj[(a - 1) as usize].binary_search(&b).is_err() {
                    missing += 1;
                }
            }
        }
        missing
    }

    fn connect(&mut self, a: VertexId, b: VertexId) {
        let ai = (a - 1) as usize;
        if let Err(pos) = self.adj[ai].binary_search(&b) {
            self.adj[ai].insert(pos, b);
            let bi = (b - 1) as usize;
            let pos = self.adj[bi].binary_search(&a).unwrap_err();
            self.adj[bi].insert(pos, a);
        }
    }

    /// Eliminate `v`: clique its neighbourhood, drop it. Returns the
    /// elimination degree `|N(v)|` at the moment of removal.
    fn eliminate(&mut self, v: VertexId) -> usize {
        let vi = (v - 1) as usize;
        assert!(self.alive[vi], "vertex {v} eliminated twice");
        self.alive[vi] = false;
        let nbrs = std::mem::take(&mut self.adj[vi]);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                self.connect(a, b);
            }
        }
        for &w in &nbrs {
            let wi = (w - 1) as usize;
            if let Ok(pos) = self.adj[wi].binary_search(&v) {
                self.adj[wi].remove(pos);
            }
        }
        nbrs.len()
    }
}

/// A tree decomposition: bags of vertices plus tree edges between bag
/// indices. Produced by [`decomposition_from_order`]; check it with
/// [`TreeDecomposition::validate`].
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    /// One bag per original vertex; `bags[i]` is the bag created when
    /// vertex `i + 1` was eliminated.
    pub bags: Vec<Vec<VertexId>>,
    /// Tree edges between bag indices (0-based).
    pub edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Width: max bag size − 1 (−0 for an empty decomposition).
    pub fn width(&self) -> usize {
        self.bags.iter().map(Vec::len).max().unwrap_or(1).saturating_sub(1)
    }

    /// Check the three tree-decomposition properties against `g`:
    /// every vertex appears in a bag; every edge of `g` lies inside some
    /// bag; and for each vertex, the bags containing it induce a
    /// connected subtree. Also checks the edge set forms a forest whose
    /// trees each span the bags they touch (acyclicity + count).
    pub fn validate(&self, g: &LabelledGraph) -> Result<(), String> {
        let n = g.n();
        if self.bags.len() != n {
            return Err(format!("expected {n} bags, found {}", self.bags.len()));
        }
        // Tree shape: with b bags we expect b−1 edges and no cycles
        // (single tree; we root every component at its last bag).
        let mut dsu = crate::dsu::Dsu::new(self.bags.len());
        for &(a, b) in &self.edges {
            if a >= self.bags.len() || b >= self.bags.len() {
                return Err(format!("tree edge ({a},{b}) out of range"));
            }
            if !dsu.union(a, b) {
                return Err(format!("tree edge ({a},{b}) closes a cycle"));
            }
        }
        if n > 0 && self.edges.len() != n - 1 {
            return Err(format!(
                "decomposition tree has {} edges for {n} bags (want {})",
                self.edges.len(),
                n - 1
            ));
        }
        // Vertex coverage.
        let mut seen = vec![false; n + 1];
        for bag in &self.bags {
            for &v in bag {
                if v == 0 || v as usize > n {
                    return Err(format!("bag vertex {v} out of range"));
                }
                seen[v as usize] = true;
            }
        }
        if let Some(v) = (1..=n).find(|&v| !seen[v]) {
            return Err(format!("vertex {v} appears in no bag"));
        }
        // Edge coverage.
        'edges: for e in g.edges() {
            for bag in &self.bags {
                if bag.contains(&e.0) && bag.contains(&e.1) {
                    continue 'edges;
                }
            }
            return Err(format!("edge {{{},{}}} inside no bag", e.0, e.1));
        }
        // Running intersection: bags containing v must induce a subtree.
        let mut bag_adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.edges {
            bag_adj[a].push(b);
            bag_adj[b].push(a);
        }
        for v in 1..=n as VertexId {
            let holders: Vec<usize> =
                (0..self.bags.len()).filter(|&i| self.bags[i].contains(&v)).collect();
            if holders.is_empty() {
                continue;
            }
            // BFS inside the holder set.
            let in_holders: Vec<bool> = {
                let mut f = vec![false; self.bags.len()];
                for &h in &holders {
                    f[h] = true;
                }
                f
            };
            let mut reached = vec![false; self.bags.len()];
            let mut queue = vec![holders[0]];
            reached[holders[0]] = true;
            while let Some(b) = queue.pop() {
                for &c in &bag_adj[b] {
                    if in_holders[c] && !reached[c] {
                        reached[c] = true;
                        queue.push(c);
                    }
                }
            }
            if let Some(&h) = holders.iter().find(|&&h| !reached[h]) {
                return Err(format!(
                    "bags holding vertex {v} are disconnected (bag {h} unreachable)"
                ));
            }
        }
        Ok(())
    }
}

/// Build a tree decomposition from an elimination order: the bag of `v`
/// is `{v} ∪ (fill-neighbours of v still remaining)`, and its parent is
/// the bag of the earliest-eliminated remaining fill-neighbour (or the
/// next vertex in the order, keeping one tree even across components).
pub fn decomposition_from_order(g: &LabelledGraph, order: &[VertexId]) -> TreeDecomposition {
    let n = g.n();
    assert_eq!(order.len(), n, "order must list every vertex exactly once");
    let mut position = vec![usize::MAX; n + 1];
    for (i, &v) in order.iter().enumerate() {
        assert!(v >= 1 && (v as usize) <= n && position[v as usize] == usize::MAX, "bad order");
        position[v as usize] = i;
    }
    let mut fill = FillGraph::new(g);
    let mut bags: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut edges = Vec::new();
    for (i, &v) in order.iter().enumerate() {
        let mut bag = fill.adj[(v - 1) as usize].clone();
        // Parent: the remaining fill-neighbour eliminated soonest.
        let parent = bag
            .iter()
            .copied()
            .min_by_key(|&w| position[w as usize])
            .map(|w| (w - 1) as usize)
            .or_else(|| order.get(i + 1).map(|&w| (w - 1) as usize));
        bag.push(v);
        bag.sort_unstable();
        bags[(v - 1) as usize] = bag;
        if let Some(p) = parent {
            edges.push(((v - 1) as usize, p));
        }
        fill.eliminate(v);
    }
    TreeDecomposition { bags, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::degeneracy_ordering;
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn exact_on_named_families() {
        assert_eq!(treewidth_exact(&LabelledGraph::new(0)), 0);
        assert_eq!(treewidth_exact(&LabelledGraph::new(5)), 0);
        assert_eq!(treewidth_exact(&generators::path(8)), 1);
        assert_eq!(treewidth_exact(&generators::star(7).unwrap()), 1);
        assert_eq!(treewidth_exact(&generators::cycle(9).unwrap()), 2);
        assert_eq!(treewidth_exact(&generators::complete(6)), 5);
        assert_eq!(treewidth_exact(&generators::complete_bipartite(3, 4)), 3);
        // r×c grid has treewidth min(r, c)
        assert_eq!(treewidth_exact(&generators::grid(3, 4)), 3);
        assert_eq!(treewidth_exact(&generators::grid(2, 6)), 2);
        // Petersen graph: treewidth 4 (well-known)
        assert_eq!(treewidth_exact(&generators::petersen()), 4);
    }

    #[test]
    fn exact_on_k_trees() {
        // A k-tree on n > k vertices has treewidth exactly k.
        let mut rng = StdRng::seed_from_u64(7);
        for k in 1..=4usize {
            let g = generators::k_tree(10, k, &mut rng);
            assert_eq!(treewidth_exact(&g), k, "k = {k}");
        }
    }

    #[test]
    fn exact_handles_disconnected() {
        let g = generators::path(4).disjoint_union(&generators::complete(4));
        assert_eq!(treewidth_exact(&g), 3);
    }

    #[test]
    fn heuristics_are_upper_bounds_and_tight_on_chordal() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in 1..=3usize {
            let g = generators::k_tree(12, k, &mut rng);
            let md = min_degree_order(&g);
            let mf = min_fill_order(&g);
            // Both greedy orders peel simplicial vertices of the k-tree.
            assert_eq!(md.width, k, "min-degree on {k}-tree");
            assert_eq!(mf.width, k, "min-fill on {k}-tree");
            assert_eq!(width_of_order(&g, &md.order), md.width);
            assert_eq!(width_of_order(&g, &mf.order), mf.width);
        }
    }

    #[test]
    fn heuristic_vs_exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let g = generators::gnp(9, 0.3, &mut rng);
            let exact = treewidth_exact(&g);
            let deg = degeneracy_ordering(&g).degeneracy;
            let mf = min_fill_order(&g).width;
            let md = min_degree_order(&g).width;
            assert!(deg <= exact, "trial {trial}: degeneracy {deg} > tw {exact}");
            assert!(exact <= mf, "trial {trial}: tw {exact} > min-fill {mf}");
            assert!(exact <= md, "trial {trial}: tw {exact} > min-degree {md}");
        }
    }

    #[test]
    fn width_of_order_matches_worst_and_best() {
        // On a path, the natural end-to-start order attains width 1; the
        // middle-out order is worse.
        let g = generators::path(5);
        assert_eq!(width_of_order(&g, &[1, 2, 3, 4, 5]), 1);
        assert!(width_of_order(&g, &[3, 2, 4, 1, 5]) >= 1);
        // On a cycle, any order attains exactly 2.
        let c = generators::cycle(7).unwrap();
        assert_eq!(width_of_order(&c, &[1, 2, 3, 4, 5, 6, 7]), 2);
        assert_eq!(width_of_order(&c, &[4, 2, 6, 1, 7, 3, 5]), 2);
    }

    #[test]
    #[should_panic(expected = "order must list every vertex")]
    fn width_of_order_rejects_partial_orders() {
        width_of_order(&generators::path(4), &[1, 2, 3]);
    }

    #[test]
    fn decomposition_valid_on_families() {
        let mut rng = StdRng::seed_from_u64(23);
        let graphs = vec![
            generators::path(10),
            generators::cycle(8).unwrap(),
            generators::grid(3, 5),
            generators::complete(5),
            generators::petersen(),
            generators::k_tree(12, 3, &mut rng),
            generators::path(3).disjoint_union(&generators::complete(4)),
            LabelledGraph::new(6),
        ];
        for g in graphs {
            let mf = min_fill_order(&g);
            let td = decomposition_from_order(&g, &mf.order);
            td.validate(&g).unwrap_or_else(|e| panic!("{g:?}: {e}"));
            assert_eq!(td.width(), mf.width, "{g:?}");
        }
    }

    #[test]
    fn decomposition_width_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let g = generators::gnp(10, 0.35, &mut rng);
            let exact = treewidth_exact(&g);
            let td = decomposition_from_order(&g, &min_fill_order(&g).order);
            td.validate(&g).unwrap();
            assert!(td.width() >= exact);
        }
    }

    #[test]
    fn validate_catches_broken_decompositions() {
        let g = generators::path(3); // 1-2-3
        let good = decomposition_from_order(&g, &[1, 2, 3]);
        good.validate(&g).unwrap();

        // Remove a vertex from every bag → coverage failure.
        let mut missing_vertex = good.clone();
        for bag in &mut missing_vertex.bags {
            bag.retain(|&v| v != 1);
        }
        assert!(missing_vertex.validate(&g).unwrap_err().contains("no bag"));

        // Break edge coverage: separate the endpoints of edge {2,3}.
        let broken_edge = TreeDecomposition {
            bags: vec![vec![1, 2], vec![2], vec![3]],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(broken_edge.validate(&g).unwrap_err().contains("inside no bag"));

        // Break running intersection: vertex 1 in two disconnected bags.
        let broken_ri = TreeDecomposition {
            bags: vec![vec![1, 2], vec![2, 3], vec![1, 3]],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(broken_ri.validate(&g).unwrap_err().contains("disconnected"));

        // A cycle among bags is not a tree.
        let cyclic =
            TreeDecomposition { bags: good.bags.clone(), edges: vec![(0, 1), (1, 2), (2, 0)] };
        assert!(cyclic.validate(&g).unwrap_err().contains("cycle"));
    }

    #[test]
    fn degeneracy_at_most_treewidth_exhaustive_small() {
        // The §I.A inequality, exhaustively at n = 5.
        for g in crate::enumerate::all_graphs(5) {
            let deg = degeneracy_ordering(&g).degeneracy;
            let tw = treewidth_exact(&g);
            assert!(deg <= tw, "degeneracy {deg} > treewidth {tw} on {g:?}");
        }
    }
}
