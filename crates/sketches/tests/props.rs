//! Property tests for the linear ℓ₀-sketches: linearity, boundary
//! cancellation on real graphs, and protocol soundness.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, generators};
use referee_sketches::connectivity::sketch_connectivity;
use referee_sketches::{EdgeSlot, L0Sampler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edge_slot_bijective(v in 2u32..2000, offset in 0u32..1999) {
        let u = 1 + offset % (v - 1);
        let slot = EdgeSlot::encode(u, v);
        prop_assert_eq!(slot.decode(), (u, v));
    }

    #[test]
    fn linearity_under_permutation(seed in any::<u64>(), n_slots in 1usize..100) {
        // Sum of singleton sketches == one bulk sketch, in any order.
        let mut rng = StdRng::seed_from_u64(seed);
        let slots: Vec<u64> = (0..n_slots as u64).map(|i| i * 13 + 1).collect();
        let mut bulk = L0Sampler::new(5000, seed, 0);
        let mut singles: Vec<L0Sampler> = Vec::new();
        for &s in &slots {
            let sign = if rand::Rng::gen_bool(&mut rng, 0.5) { 1 } else { -1 };
            bulk.update(EdgeSlot(s), sign);
            let mut one = L0Sampler::new(5000, seed, 0);
            one.update(EdgeSlot(s), sign);
            singles.push(one);
        }
        // merge in a shuffled order
        rand::seq::SliceRandom::shuffle(&mut singles[..], &mut rng);
        let mut acc = L0Sampler::new(5000, seed, 0);
        for s in &singles {
            acc.merge(s);
        }
        prop_assert_eq!(acc, bulk);
    }

    #[test]
    fn component_sum_sketches_boundary(seed in any::<u64>(), n in 4usize..24) {
        // Sum the incidence sketches of the vertex set of one component:
        // the result must be the zero vector (no boundary edges leave a
        // component).
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.25, &mut rng);
        let labels = algo::components(&g);
        let comp0: Vec<u32> = (1..=n as u32)
            .filter(|&v| labels[(v - 1) as usize] == 0)
            .collect();
        let mut sum = L0Sampler::new(n, seed, 0);
        for &v in &comp0 {
            for &nb in g.neighbourhood(v) {
                let (a, b) = (v.min(nb), v.max(nb));
                let sign = if v == a { 1 } else { -1 };
                sum.update(EdgeSlot::encode(a, b), sign);
            }
        }
        prop_assert!(sum.is_zero(), "component boundary must cancel");
    }

    #[test]
    fn sampled_edges_are_boundary_edges(seed in any::<u64>()) {
        // Sketch a strict subset of one component: any sample must be a
        // real boundary edge of that subset.
        let _rng = StdRng::seed_from_u64(seed);
        let g = generators::grid(4, 5);
        let subset: Vec<u32> = (1..=10u32).collect(); // half the grid
        let in_subset = |v: u32| subset.contains(&v);
        let mut sum = L0Sampler::new(20, seed, 1);
        for &v in &subset {
            for &nb in g.neighbourhood(v) {
                let (a, b) = (v.min(nb), v.max(nb));
                let sign = if v == a { 1 } else { -1 };
                sum.update(EdgeSlot::encode(a, b), sign);
            }
        }
        if let Some(slot) = sum.sample() {
            let (u, v) = slot.decode();
            prop_assert!(g.has_edge(u, v), "sampled non-edge {}-{}", u, v);
            prop_assert!(in_subset(u) != in_subset(v), "sampled interior edge");
        }
    }

    #[test]
    fn disconnected_never_accepted(seed in any::<u64>(), n in 3usize..20) {
        // one-sided error, property-tested: any graph with an isolated
        // vertex is rejected under every seed.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.3, &mut rng).grow(n + 1);
        prop_assert!(!sketch_connectivity(&g, seed));
    }
}

// ---------------------------------------------------------------------------
// Extension-layer properties: double cover, forests, peeling
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The double-cover component identity (the mathematical heart of
    /// E18) on arbitrary random graphs.
    #[test]
    fn double_cover_identity(n in 2usize..14, seed in any::<u64>(), p10 in 0u32..=10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, p10 as f64 / 10.0, &mut rng);
        let b = referee_sketches::double_cover(&g);
        prop_assert_eq!(b.n(), 2 * n);
        prop_assert_eq!(b.m(), 2 * g.m());
        prop_assert!(algo::is_bipartite(&b)); // covers are always bipartite
        prop_assert_eq!(
            algo::component_count(&b) == 2 * algo::component_count(&g),
            algo::is_bipartite(&g)
        );
    }

    /// Spanning-forest recovery returns a genuine sub-forest; when it
    /// certifies completeness, the component structure is exact.
    #[test]
    fn sketch_forest_soundness(n in 2usize..30, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 2.0 / n as f64, &mut rng);
        let r = referee_sketches::sketch_spanning_forest(&g, seed ^ 0xabcd);
        for e in &r.edges {
            prop_assert!(g.has_edge(e.0, e.1));
        }
        let f = referee_graph::LabelledGraph::from_edges(
            n, r.edges.iter().map(|e| (e.0, e.1))).unwrap();
        prop_assert!(algo::is_forest(&f));
        if r.complete {
            prop_assert_eq!(r.components, algo::component_count(&g));
            prop_assert_eq!(r.edges.len(), n - r.components);
        }
    }

    /// k-edge-connectivity never over-reports (one-sided error
    /// direction), at any threshold.
    #[test]
    fn kconn_one_sided(n in 4usize..20, seed in any::<u64>(), k in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.3, &mut rng);
        let got = referee_sketches::sketch_edge_connectivity(&g, seed, k);
        prop_assert!(got <= algo::edge_connectivity(&g).min(k));
    }

    /// Bipartiteness can only err through a sampler miss, and a miss can
    /// only turn "bipartite" into "non-bipartite" or vice versa through
    /// COUNT inflation — exhaustively check the verdict is never wrong
    /// when the connectivity substrate is certain (forest completeness
    /// on both the base and a fresh run agrees with truth).
    #[test]
    fn bipartiteness_usually_agrees(n in 4usize..24, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 2.5 / n as f64, &mut rng);
        let truth = algo::is_bipartite(&g);
        // majority of 3 independent seeds — crisp agreement check
        let votes = (0..3u64)
            .filter(|i| referee_sketches::sketch_bipartiteness(&g, seed * 7 + i))
            .count();
        prop_assert_eq!(votes >= 2, truth);
    }
}

// ---------------------------------------------------------------------------
// OneRoundAsMultiRound equivalence: every sketch protocol rides the
// multi-round adapter without changing its answer.
// ---------------------------------------------------------------------------

use referee_graph::LabelledGraph;
use referee_protocol::combinators::OneRoundAsMultiRound;
use referee_protocol::multiround::run_multiround;
use referee_protocol::{run_protocol as run_one_round, OneRoundProtocol};
use referee_sketches::{
    SketchBipartitenessProtocol, SketchConnectivityProtocol, SketchKConnectivityProtocol,
    SketchSpanningForestProtocol,
};

fn adapter_matches_native<P>(p: &P, g: &LabelledGraph)
where
    P: OneRoundProtocol + Sync,
    P::Output: PartialEq + std::fmt::Debug,
{
    let native = run_one_round(p, g).output;
    let (adapted, stats) = run_multiround(&OneRoundAsMultiRound(p), g, 4);
    assert_eq!(adapted.expect("adapter finishes in one step"), native, "{}", p.name());
    assert_eq!(stats.rounds, 1, "{}", p.name());
    assert_eq!(stats.max_link_bits, 0, "{}", p.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sketch_protocols_ride_the_multiround_adapter_unchanged(
        n in 2usize..14,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.35, &mut rng);
        adapter_matches_native(&SketchConnectivityProtocol::new(seed), &g);
        adapter_matches_native(&SketchSpanningForestProtocol::new(seed), &g);
        adapter_matches_native(&SketchKConnectivityProtocol::new(seed, k), &g);
        adapter_matches_native(&SketchBipartitenessProtocol::new(seed), &g);
    }
}
