//! E15 + E16: frugality audits — Lemma 2 scaling for the sketch, and the
//! footnote-1 baseline's dependence on maximum degree.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_message_size`

use referee_bench::experiments::message_size as ms;
use referee_bench::section;

fn main() {
    println!("# E16: Lemma 2 — sketch size Θ(k² log n)");

    section("E16a — bits vs n at fixed k = 2 (grid family); ratio must flatten");
    let rep = ms::sketch_vs_n(2, &[64, 256, 1024, 4096, 16384]);
    println!("{}", rep.to_table());

    section("E16b — bits vs k at fixed n = 4096 (closed form); bits/k² ≈ const");
    println!("k\tbits\tbits/k²");
    for (k, bits, ratio) in ms::sketch_vs_k(4096, &[1, 2, 3, 4, 5, 6, 7, 8]) {
        println!("{k}\t{bits}\t{ratio:.1}");
    }

    section("E7 size side — §III.A forest triple: 'less than 4 log n bits'");
    println!("n\tbits\t4·log₂n");
    for n in [64usize, 1024, 16384, 262144] {
        let bits = referee_degeneracy::forest::forest_message_bits(n);
        let bound = 4.0 * (n as f64).log2();
        println!("{n}\t{bits}\t{bound:.1}");
        assert!((bits as f64) < bound);
    }

    println!("\n# E15: footnote 1 — adjacency baseline frugal iff degree bounded");

    section("bounded degree (caterpillar, 3 legs/vertex): ratio flat ⇒ frugal");
    let flat = ms::baseline_vs_degree(&[64, 256, 1024, 4096], 3);
    println!("{}", flat.to_table());

    section("unbounded degree (stars, Δ = n−1): ratio diverges ⇒ not frugal");
    let steep = ms::baseline_on_stars(&[64, 256, 1024, 4096]);
    println!("{}", steep.to_table());

    assert!(!ms::sketch_vs_n(2, &[64, 256, 1024]).ratio_diverges(0.2));
    assert!(steep.ratio_diverges(1.0));
    println!("shape checks passed ✓");
}
