//! The tentpole correctness gate for the epoll reactor: for every shard
//! count the kernel-readiness backend must be **observationally
//! identical** to the portable sweep backend — bit-for-bit equal
//! verdict digests for honest sessions, identical fail-closed shapes
//! under deterministic wire tampering. The two backends differ only in
//! *when* loops wake, never in *what* bytes flow, so any divergence
//! here is a reactor bug, not a tolerance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_protocol::referee::local_phase;
use referee_simnet::SessionId;
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, vector_digest, AuthKey, FleetClient,
    FleetServer, PollerBackend, TamperConfig,
};

/// Small fleet spanning n = 4..=15 so every k in 1..=8 exercises both
/// populated and empty shard ranges (k > n leaves ranges empty — the
/// hosts/workers must still reach quorum instantly).
fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(4 + i % 12, 0.3, &mut rng)).collect()
}

const BACKENDS: [PollerBackend; 2] = [PollerBackend::Sweep, PollerBackend::Epoll];

/// One-round sharded referee: per-session digests under the epoll
/// backend equal the sweep backend's bit for bit, for every k.
#[test]
fn one_round_digests_match_across_backends() {
    let key = AuthKey::from_seed(61);
    let fleet = graphs(5, 611);
    for k in 1..=8usize {
        let mut per_backend: Vec<Vec<u64>> = Vec::new();
        for backend in BACKENDS {
            let server = FleetServer::builder(key).shards(k).poller(backend).spawn().unwrap();
            let client = FleetClient::connect(server.addr(), 2, key).unwrap();
            let digests: Vec<u64> = fleet
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let messages = local_phase(&EdgeCountProtocol, g);
                    let arrivals =
                        messages.into_iter().enumerate().map(|(j, m)| (j as u32 + 1, m));
                    client
                        .verify_session(SessionId(i as u64), g.n(), arrivals)
                        .unwrap_or_else(|e| panic!("k={k} {backend:?} session {i}: {e:?}"))
                })
                .collect();
            server.stop();
            per_backend.push(digests);
        }
        assert_eq!(per_backend[0], per_backend[1], "k={k}: sweep vs epoll digests diverge");
        // Both must also pin the honest vectors, not merely agree.
        for (i, g) in fleet.iter().enumerate() {
            let want = vector_digest(&key, &local_phase(&EdgeCountProtocol, g));
            assert_eq!(per_backend[0][i], want, "k={k} session {i} digest is wrong");
        }
    }
}

/// Multi-round Borůvka service: wire verdicts are identical across
/// backends for every k, and both equal the centralized truth.
#[test]
fn multiround_verdicts_match_across_backends() {
    let key = AuthKey::from_seed(62);
    let fleet = graphs(5, 622);
    const CAP: usize = 64;
    for k in 1..=8usize {
        let mut per_backend: Vec<Vec<bool>> = Vec::new();
        for backend in BACKENDS {
            let server = FleetServer::builder(key)
                .shards(k)
                .multiround(boruvka_connectivity_service())
                .poller(backend)
                .spawn()
                .unwrap();
            let client = FleetClient::connect(server.addr(), 2, key).unwrap();
            let verdicts: Vec<bool> = fleet
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let out = client
                        .run_multiround_session(
                            SessionId(i as u64),
                            &BoruvkaConnectivity,
                            g,
                            CAP,
                        )
                        .unwrap_or_else(|e| panic!("k={k} {backend:?} session {i}: {e:?}"));
                    decode_bool_output(&out).expect("honest uplinks decode")
                })
                .collect();
            server.stop();
            per_backend.push(verdicts);
        }
        assert_eq!(per_backend[0], per_backend[1], "k={k}: sweep vs epoll verdicts diverge");
        for (i, g) in fleet.iter().enumerate() {
            assert_eq!(per_backend[0][i], algo::is_connected(g), "k={k} session {i}");
        }
    }
}

/// Tampering equivalence: the client's deterministic bit-flip schedule
/// produces the same byte stream under either backend, so the same
/// sessions must fail closed and the same sessions must verify with the
/// same digests — and no tampered session may ever be accepted.
#[test]
fn tamper_outcomes_match_across_backends() {
    let key = AuthKey::from_seed(63);
    let fleet = graphs(8, 633);
    for k in [2usize, 8] {
        let mut per_backend: Vec<Vec<Option<u64>>> = Vec::new();
        for backend in BACKENDS {
            let server = FleetServer::builder(key).shards(k).poller(backend).spawn().unwrap();
            let client = FleetClient::connect(server.addr(), fleet.len(), key)
                .unwrap()
                .with_tamper(TamperConfig { flip_every: 3 });
            let outcomes: Vec<Option<u64>> = fleet
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    let messages = local_phase(&EdgeCountProtocol, g);
                    let arrivals =
                        messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m));
                    client.verify_session(SessionId(i as u64), g.n(), arrivals).ok()
                })
                .collect();
            let stats = server.stop();
            assert!(stats.mac_rejects > 0, "k={k} {backend:?}: no corruption reached MAC");
            per_backend.push(outcomes);
        }
        assert_eq!(per_backend[0], per_backend[1], "k={k}: tamper outcomes diverge");
        for (i, outcome) in per_backend[0].iter().enumerate() {
            if let Some(digest) = outcome {
                let want = vector_digest(&key, &local_phase(&EdgeCountProtocol, &fleet[i]));
                assert_eq!(*digest, want, "k={k}: tampered session {i} was accepted");
            }
        }
    }
}
