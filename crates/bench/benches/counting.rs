//! E5/E6 (runtime side): exhaustive enumeration throughput and collision
//! search — the costs that cap how far the exact Lemma 1 table reaches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use referee_graph::{algo, enumerate};
use referee_reductions::collision::{find_collision, ModularSumSketch};
use referee_reductions::counting;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting/enumerate");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("square_free", n), &n, |b, &n| {
            b.iter(|| enumerate::count_graphs(n, |g| !algo::has_square(g)).0)
        });
        group.bench_with_input(BenchmarkId::new("forests", n), &n, |b, &n| {
            b.iter(|| enumerate::count_graphs(n, algo::is_forest).0)
        });
    }
    group.finish();
}

fn bench_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting/bigint_budgets");
    group.sample_size(20);
    // 2^(c·n·log n) at n = 2^20 is a ~168-million-bit number: exercises
    // the wideint substrate the way the E5 asymptotic table does.
    group.bench_function("budget_n_1e6_c8", |b| {
        b.iter(|| counting::message_vector_budget(1 << 20, 8).bit_len())
    });
    group.bench_function("count_all_graphs_n2048", |b| {
        b.iter(|| counting::count_all_graphs(2048).bit_len())
    });
    group.finish();
}

fn bench_collision_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting/collision_search");
    group.sample_size(10);
    group.bench_function("modular_sketch_n4", |b| {
        b.iter(|| {
            find_collision(&ModularSumSketch { bits: 1 }, enumerate::all_graphs(4))
                .expect("collides")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_budgets, bench_collision_search);
criterion_main!(benches);
