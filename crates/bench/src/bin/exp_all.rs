//! Run the entire experiment grid E1–E25 in one go (compact parameters)
//! and emit a single markdown report — the source material for
//! `EXPERIMENTS.md`.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_all`

use referee_bench::experiments::{
    blowup, counting, degeneracy, extensions, gadget_validation as gv, message_size as ms,
    openq,
};
use referee_bench::{render_table, section};

fn main() {
    println!("# referee-one-round — full experiment grid (compact run)");

    section("E1–E3: gadget iff validations");
    let mut rows = gv::validate_diameter(4, 40, 5);
    rows.extend(gv::validate_triangle(5, 40, 5));
    rows.extend(gv::validate_square(4, 30, 5));
    println!("{}", render_table(&gv::to_table(&rows)));
    let violations: u64 = rows.iter().map(|r| r.violations).sum();
    assert_eq!(violations, 0, "gadget iff violated");

    section("E4: reduction blow-ups (n = 12)");
    let b = blowup::run(12, 7);
    println!("{}", render_table(&blowup::to_table(&b)));
    assert!(b.iter().all(|r| r.exact));

    section("E5: Lemma 1 exact counts (n ≤ 6)");
    println!("{}", render_table(&counting::to_table(&counting::exact_table(6))));

    section("E6: pigeonhole witnesses");
    for line in counting::collision_findings() {
        println!("- {line}");
    }

    section("E7/E8/E10/E11: reconstruction grid (n = 200)");
    let rows = degeneracy::run_grid(200, 42);
    println!("{}", render_table(&degeneracy::to_table(&rows)));
    assert!(rows.iter().all(|r| r.verdict != "WRONG"));

    section("E15/E16: frugality audits");
    println!("{}", ms::sketch_vs_n(2, &[64, 256, 1024]).to_table());
    println!("{}", ms::baseline_on_stars(&[64, 256, 1024]).to_table());

    section("E12: partition connectivity (n = 200)");
    println!("k\tbits\tbound\tcorrect");
    for (k, bits, bound, ok) in openq::partition_sweep(200, &[2, 8, 32], 3) {
        println!("{k}\t{bits}\t{bound}\t{ok}");
        assert!(ok);
    }

    section("E13: bipartiteness ⇒ bipartite connectivity");
    for (n, agree, total) in openq::bipartite_connectivity_sweep(&[10, 14], 4) {
        println!("n={n}: {agree}/{total} agreements");
        assert_eq!(agree, total);
    }

    section("E14: multi-round Borůvka");
    for (n, rounds, logn, bits, ans) in openq::boruvka_sweep(&[64, 1024]) {
        println!("n={n}: {rounds} rounds (⌈log₂ n⌉ = {logn}), {bits} bits, connected={ans}");
        assert!(ans);
    }

    section("E17: public-coin sketch connectivity");
    for (n, sk, adj, agree, total) in openq::sketch_sweep(&[32, 128], 5) {
        println!("n={n}: {sk} sketch bits vs {adj} adjacency bits, {agree}/{total} agree");
    }

    section("E18: public-coin double-cover bipartiteness");
    for (n, bits, agree, total) in extensions::bipartiteness_sweep(&[16, 32], 6) {
        println!("n={n}: {bits} bits/node, {agree}/{total} agree");
    }

    section("E19: k-edge-connectivity by forest peeling (k = 3)");
    for (name, lambda, k, got) in extensions::kconn_named_families(3) {
        println!("{name}: λ={lambda}, protocol min(λ,{k})={got}");
        assert_eq!(got, lambda.min(k));
    }

    section("E20: adaptive unknown-k degeneracy");
    for (name, d, rounds, predicted, k_final, total, one_round) in extensions::adaptive_sweep()
    {
        println!("{name}: d={d}, rounds={rounds} (predicted {predicted}), k_final={k_final}, {total} bits (one-shot {one_round})");
        assert_eq!(rounds, predicted);
    }

    section("E21: diameter ≤ t hardness, t ∈ {3,4,6}");
    for (t, n, pairs, iff_ok, recon_ok) in extensions::diameter_t_sweep(&[3, 4, 6], 8, 2) {
        println!("t={t}, n={n}: {pairs} pairs, iff={iff_ok}, reconstructs={recon_ok}");
        assert!(iff_ok && recon_ok);
    }

    section("E22: degeneracy ≤ treewidth ≤ min-fill chain");
    for (name, d, tw, mf, ok) in extensions::treewidth_chain() {
        println!("{name}: degeneracy={d} ≤ treewidth={tw} ≤ min-fill={mf}, protocol ok={ok}");
        assert!(d <= tw && tw <= mf && ok);
    }

    section("E23: the positive boundary (degree-statistic protocols)");
    for (name, _n, bits, verdict) in extensions::easy_protocol_table(200, 99) {
        println!("{name}: {bits} bits/node — {verdict}");
    }

    section("E24: scale-free hubs vs Theorem 5 (BA, m = 3)");
    for (n, _m, hub, thm5, naive, ok) in extensions::scale_free_sweep(&[200, 800], 3, 17) {
        println!("n={n}: hub Δ={hub}, Thm5 {thm5} bits vs naive {naive}, exact={ok}");
        assert!(ok && thm5 < naive);
    }

    section("E25: width triangle + colouring payoff");
    for (name, omega1, d, tw, greedy, chi) in extensions::width_triangle() {
        println!("{name}: ω−1={omega1} ≤ d={d} ≤ tw={tw}; χ={chi} ≤ greedy={greedy} ≤ d+1");
        assert!(omega1 <= d && d <= tw && chi <= greedy && greedy <= d + 1);
    }

    println!("\nALL EXPERIMENTS PASSED ✓");
}
