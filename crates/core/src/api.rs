//! High-level convenience API over the protocol machinery.
//!
//! These helpers run a full protocol round (local phase at every node,
//! global phase at the referee) and package the outcome with the
//! measurements a user typically wants: message sizes, the Lemma 2 bound,
//! and wall times.

use referee_degeneracy::{
    lemma2_bound_bits, DegeneracyProtocol, ForestProtocol, Reconstruction,
};
use referee_graph::LabelledGraph;
use referee_protocol::{DecodeError, RunStats};
// All high-level runs execute on the simnet session runtime; property
// tests pin its perfect-transport path to the legacy simulator.
use referee_simnet::run_protocol;

/// Outcome of a high-level reconstruction call.
#[derive(Debug, Clone)]
pub struct ReconstructionReport {
    /// The referee's verdict.
    pub result: Reconstruction,
    /// Simulator measurements.
    pub stats: RunStats,
    /// The exact per-message bit bound of Lemma 2 for these parameters
    /// (equals `stats.max_message_bits` for the degeneracy protocol —
    /// every sketch message has the same deterministic width).
    pub message_bound_bits: usize,
}

impl ReconstructionReport {
    /// Did the protocol accept and reproduce the graph exactly?
    pub fn reconstructed(&self, original: &LabelledGraph) -> bool {
        matches!(&self.result, Reconstruction::Graph(g) if g == original)
    }
}

/// Run Theorem 5's protocol on `g` with parameter `k`.
///
/// Returns `Err` only on genuinely malformed message vectors, which
/// cannot happen through this entry point (messages are generated
/// honestly); the interesting outcomes are `Reconstruction::Graph` and
/// `Reconstruction::NotInClass`.
pub fn reconstruct_bounded_degeneracy(
    g: &LabelledGraph,
    k: usize,
) -> Result<ReconstructionReport, DecodeError> {
    let outcome = run_protocol(&DegeneracyProtocol::new(k), g);
    let result = outcome.output?;
    Ok(ReconstructionReport {
        result,
        message_bound_bits: lemma2_bound_bits(g.n(), k),
        stats: outcome.stats,
    })
}

/// Outcome of [`reconstruct_adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The report of the successful (or final failed) attempt.
    pub report: ReconstructionReport,
    /// The `k` that succeeded (`None` if even `k_max` was rejected).
    pub k_used: Option<usize>,
    /// Every `k` tried, in order.
    pub attempts: Vec<usize>,
}

/// Reconstruct with **unknown** degeneracy by doubling `k` until the
/// recognition protocol accepts (`k = 1, 2, 4, …, ≤ k_max`).
///
/// Note on the model: the paper's protocol fixes `k` in advance ("each
/// vertex needs to know the value of k"). Doubling is therefore a
/// *sequence* of one-round protocols — `⌈log₂ k*⌉ + 1` rounds in the
/// multi-round reading, or a practical driver loop in the systems
/// reading. Total bits stay `O(k*² log n)` per node across all attempts
/// (the geometric sum is dominated by the last attempt).
pub fn reconstruct_adaptive(
    g: &LabelledGraph,
    k_max: usize,
) -> Result<AdaptiveReport, DecodeError> {
    let mut attempts = Vec::new();
    let mut k = 1usize;
    loop {
        attempts.push(k);
        let report = reconstruct_bounded_degeneracy(g, k)?;
        match report.result {
            Reconstruction::Graph(_) => {
                return Ok(AdaptiveReport { report, k_used: Some(k), attempts });
            }
            Reconstruction::NotInClass if k >= k_max => {
                return Ok(AdaptiveReport { report, k_used: None, attempts });
            }
            Reconstruction::NotInClass => k = (k * 2).min(k_max),
        }
    }
}

/// Run the §III.A forest protocol on `g`.
pub fn reconstruct_forest(g: &LabelledGraph) -> Result<ReconstructionReport, DecodeError> {
    let outcome = run_protocol(&ForestProtocol, g);
    let result = outcome.output?;
    Ok(ReconstructionReport {
        result,
        message_bound_bits: referee_degeneracy::forest::forest_message_bits(g.n()),
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::generators;

    #[test]
    fn degeneracy_report() {
        let g = generators::grid(5, 5);
        let r = reconstruct_bounded_degeneracy(&g, 2).unwrap();
        assert!(r.reconstructed(&g));
        assert_eq!(r.stats.max_message_bits, r.message_bound_bits);
    }

    #[test]
    fn rejection_report() {
        let g = generators::complete(8); // degeneracy 7
        let r = reconstruct_bounded_degeneracy(&g, 3).unwrap();
        assert_eq!(r.result, Reconstruction::NotInClass);
        assert!(!r.reconstructed(&g));
    }

    #[test]
    fn adaptive_finds_minimal_doubled_k() {
        let mut rng = StdRng::seed_from_u64(91);
        // true degeneracy 3 ⇒ doubling tries 1, 2, 4 and stops at 4
        let g = generators::random_k_degenerate(60, 3, 1.0, &mut rng);
        let true_k = referee_graph::algo::degeneracy_ordering(&g).degeneracy;
        assert_eq!(true_k, 3);
        let r = reconstruct_adaptive(&g, 64).unwrap();
        assert_eq!(r.k_used, Some(4));
        assert_eq!(r.attempts, vec![1, 2, 4]);
        assert!(r.report.reconstructed(&g));
    }

    #[test]
    fn adaptive_gives_up_at_k_max() {
        let g = generators::complete(20); // degeneracy 19
        let r = reconstruct_adaptive(&g, 8).unwrap();
        assert_eq!(r.k_used, None);
        assert_eq!(*r.attempts.last().unwrap(), 8);
        assert_eq!(r.report.result, Reconstruction::NotInClass);
    }

    #[test]
    fn adaptive_on_forest_stops_immediately() {
        let mut rng = StdRng::seed_from_u64(92);
        let g = generators::random_tree(40, &mut rng);
        let r = reconstruct_adaptive(&g, 16).unwrap();
        assert_eq!(r.k_used, Some(1));
        assert_eq!(r.attempts, vec![1]);
    }

    #[test]
    fn forest_report() {
        let mut rng = StdRng::seed_from_u64(90);
        let g = generators::random_tree(30, &mut rng);
        let r = reconstruct_forest(&g).unwrap();
        assert!(r.reconstructed(&g));
        assert_eq!(r.stats.max_message_bits, r.message_bound_bits);
        assert!((r.message_bound_bits as f64) < 4.0 * (30f64).log2());
    }
}

/// One-round public-coin census of a topology: everything the sketch
/// suite can learn from a single round of polylog-bit messages.
#[derive(Debug, Clone)]
pub struct SketchCensus {
    /// Is the network connected? (E17; one-sided Monte-Carlo.)
    pub connected: bool,
    /// Is it bipartite / 2-colourable? (E18, double cover.)
    pub bipartite: bool,
    /// `min(λ(G), k)` — edge connectivity capped at the threshold
    /// requested (E19, forest peeling).
    pub edge_connectivity: usize,
    /// The spanning forest the referee recovered as a witness.
    pub forest_edges: Vec<referee_graph::Edge>,
    /// Whether the forest recovery certified completeness (final
    /// component boundaries all sketched to zero).
    pub forest_complete: bool,
}

/// Run the whole public-coin suite (connectivity, bipartiteness,
/// k-edge-connectivity, spanning forest) on `g` with shared seed
/// `seed`. Each protocol is one round; a real deployment would ship all
/// four message groups in a single concatenated transmission.
pub fn sketch_census(g: &LabelledGraph, seed: u64, k: usize) -> SketchCensus {
    use referee_sketches as sk;
    let forest = sk::sketch_spanning_forest(g, seed);
    SketchCensus {
        connected: sk::connectivity::sketch_connectivity(g, seed),
        bipartite: sk::sketch_bipartiteness(g, seed),
        edge_connectivity: sk::kconn::sketch_edge_connectivity(g, seed, k.max(1)),
        forest_complete: forest.complete,
        forest_edges: forest.edges,
    }
}

#[cfg(test)]
mod census_tests {
    use super::*;
    use referee_graph::{algo, generators};

    #[test]
    fn census_on_healthy_fabric() {
        let g = generators::hypercube(3); // connected, bipartite, λ = 3
        let c = sketch_census(&g, 2011, 3);
        assert!(c.connected && c.bipartite);
        assert_eq!(c.edge_connectivity, 3);
        assert!(c.forest_complete);
        assert_eq!(c.forest_edges.len(), g.n() - 1);
    }

    #[test]
    fn census_on_split_fabric() {
        let g = generators::path(5).disjoint_union(&generators::cycle(5).unwrap());
        let c = sketch_census(&g, 7, 2);
        assert!(!c.connected);
        assert!(!c.bipartite); // the C5 half
        assert_eq!(c.edge_connectivity, 0);
        assert_eq!(c.forest_edges.len(), g.n() - algo::component_count(&g));
    }
}
