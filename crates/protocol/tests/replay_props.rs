//! Replay idempotence for the redial path: a [`ShardJournal`] replayed
//! into a fresh shard after a reconnect rebuilds **bit-for-bit** the
//! same uncommitted round state no matter how many times the replay
//! runs — the property that makes a shard-host kill/redial/kill/redial
//! sequence safe against double-delivery of journaled uplinks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use referee_protocol::shard::multiround::{RoundPartialState, RoundShard};
use referee_protocol::shard::replay::{Recorded, ShardJournal};
use referee_protocol::shard::Arrival;
use referee_protocol::{BitWriter, Message};
use std::collections::BTreeMap;

fn msg(value: u64, width: u32) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(value & ((1u64 << width) - 1), width);
    Message::from_writer(w)
}

/// What a reconnected shard host ends up holding after one full journal
/// replay: per uncommitted round, the encoded partial of a fresh shard
/// fed the replay stream under the monolithic duplicate policy —
/// exactly the bytes the host would emit once each round completes.
fn rebuilt_state(journal: &ShardJournal, n: usize) -> Vec<(u32, Message)> {
    let mut per_round: BTreeMap<u32, RoundShard> = BTreeMap::new();
    for (round, sender, payload) in journal.replay() {
        let shard = per_round.entry(round).or_insert_with(|| RoundShard::new(n, 1, 0, round));
        if let Ok(Arrival::Duplicate { .. }) = shard.ingest(sender, payload.clone()) {
            shard.note_duplicate(sender);
        }
    }
    per_round.into_iter().map(|(r, s)| (r, s.into_partial().encode())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Random routed streams with interleaved commits: replaying the
    /// journal twice (two successive redials) rebuilds byte-identical
    /// partials, the journal itself is untouched by replay, committed
    /// rounds never resurface, and a straggler for a committed round is
    /// classified `Stale` without perturbing the replay stream.
    #[test]
    fn replay_twice_rebuilds_identical_state(
        n in 1usize..20,
        ops in 1usize..60,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut journal = ShardJournal::new(n);
        for _ in 0..ops {
            if rng.gen_bool(0.15) {
                journal.commit(rng.gen_range(1..6u64) as u32);
            } else {
                // Mostly in-range senders, some strays (0 or > n).
                let sender = rng.gen_range(0..n as u64 + 4) as u32;
                let round = rng.gen_range(1..8u64) as u32;
                journal.record(round, sender, msg(rng.gen_range(0..1 << 16), 20));
            }
        }

        let before = (journal.resume_round(), journal.buffered());
        let first = rebuilt_state(&journal, n);
        let second = rebuilt_state(&journal, n);
        prop_assert_eq!(&first, &second, "second replay diverged");
        prop_assert_eq!(
            (journal.resume_round(), journal.buffered()),
            before,
            "replay mutated the journal"
        );

        // Nothing below the resume round may ever replay: the shard
        // host no longer holds those rounds, re-sending them would
        // poison committed state.
        let resume = journal.resume_round();
        prop_assert!(journal.replay().all(|(r, _, _)| r >= resume));

        // Double-delivery of committed history: the redial race can
        // hand the journal an uplink for an already-merged round. It
        // must be classified Stale and leave the replay untouched.
        if journal.committed() {
            let stream: Vec<(u32, u32, Message)> =
                journal.replay().map(|(r, v, m)| (r, v, m.clone())).collect();
            let verdict = journal.record(resume - 1, 1, msg(7, 5));
            prop_assert_eq!(verdict, Recorded::Stale);
            let after: Vec<(u32, u32, Message)> =
                journal.replay().map(|(r, v, m)| (r, v, m.clone())).collect();
            prop_assert_eq!(stream, after, "a stale record changed the replay");
            prop_assert_eq!(rebuilt_state(&journal, n), first);
        }
    }

    /// The replay stream itself is stable: two collections of
    /// `replay()` see the same (round, sender, payload) triples in the
    /// same order — rounds ascending, routing order within a round.
    #[test]
    fn replay_iteration_is_deterministic(
        n in 1usize..16,
        ops in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut journal = ShardJournal::new(n);
        for _ in 0..ops {
            let sender = rng.gen_range(1..=n as u64) as u32;
            let round = rng.gen_range(1..5u64) as u32;
            journal.record(round, sender, msg(rng.gen_range(0..1 << 10), 12));
        }
        let a: Vec<(u32, u32, Message)> =
            journal.replay().map(|(r, v, m)| (r, v, m.clone())).collect();
        let b: Vec<(u32, u32, Message)> =
            journal.replay().map(|(r, v, m)| (r, v, m.clone())).collect();
        prop_assert_eq!(&a, &b);
        let mut rounds: Vec<u32> = a.iter().map(|(r, _, _)| *r).collect();
        let sorted = {
            let mut s = rounds.clone();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(&mut rounds, &sorted, "replay not round-ordered");
    }
}

/// The bit-for-bit acceptance case spelled out: fill half a round, kill
/// the host, replay into a fresh shard, finish the round — the partial
/// equals the one an uninterrupted shard would have shipped.
#[test]
fn reconnect_mid_round_is_bit_transparent() {
    let n = 6usize;
    let uplinks: Vec<(u32, Message)> =
        (1..=n as u32).map(|v| (v, msg(u64::from(v) * 3 + 1, 9))).collect();

    // Uninterrupted run.
    let mut direct = RoundShard::new(n, 1, 0, 1);
    for (v, m) in &uplinks {
        direct.ingest(*v, m.clone()).unwrap();
    }
    let expected = direct.into_partial().encode();

    // Journaled run: three uplinks reach the host, then it dies. The
    // journal replays them into a fresh shard; the rest arrive live.
    let mut journal = ShardJournal::new(n);
    for (v, m) in &uplinks {
        assert_eq!(journal.record(1, *v, m.clone()), Recorded::Forward);
    }
    let mut rebuilt = RoundShard::new(n, 1, 0, journal.resume_round());
    for (round, v, m) in journal.replay() {
        assert_eq!(round, 1);
        rebuilt.ingest(v, m.clone()).unwrap();
    }
    let replayed = rebuilt.into_partial().encode();
    assert_eq!(replayed, expected, "replayed partial differs from the uninterrupted one");

    // Once the partial commits, the journal drops the round and a
    // second reconnect has nothing to replay — committed state cannot
    // be double-applied.
    journal.commit(1);
    assert!(journal.committed());
    assert_eq!(journal.buffered(), 0);
    assert_eq!(journal.replay().count(), 0);
    assert_eq!(
        RoundPartialState::decode(n, &expected).unwrap().round(),
        1,
        "sanity: the committed partial still decodes"
    );
}
