//! Experiment harness for the `referee-one-round` reproduction.
//!
//! The paper (a theory paper) has two figures — both gadget constructions
//! — and no measured tables; `EXPERIMENTS.md` at the repository root
//! defines the experiment grid E1–E25 that substitutes for them. Each
//! submodule of [`experiments`] computes one experiment's rows; the
//! `exp_*` binaries in `src/bin/` print them, and the Criterion benches in
//! `benches/` measure the runtime-scaling claims (local time O(n),
//! reconstruction O(n²), table-vs-Newton decoding).
//!
//! Everything here is deterministic under fixed seeds so `EXPERIMENTS.md`
//! can quote exact numbers.

pub mod experiments;

/// Render aligned rows (first row = header) as a markdown-ish table.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
        if ri == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out.push('\n');
        }
    }
    out
}

/// Print a section header for the experiment binaries.
pub fn section(title: &str) {
    println!("\n### {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            vec!["n".into(), "bits".into()],
            vec!["8".into(), "24".into()],
            vec!["1024".into(), "77".into()],
        ];
        let t = render_table(&rows);
        assert!(t.contains("|    n | bits |"));
        assert!(t.lines().count() == 4);
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {t}");
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }
}
