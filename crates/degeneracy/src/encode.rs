//! Algorithm 3: the power-sum sketch each node sends.
//!
//! The message of node `x` is `(ID(x), deg(x), b(x))` with
//! `b_p(x) = Σ_{w ∈ N(x)} ID(w)^p` for `p = 1..=k` — the product
//! `A(k,n) · x` of the paper's power matrix with the neighbourhood
//! incidence vector.
//!
//! Serialization uses **exact deterministic field widths** so the decoder
//! needs no length prefixes: `b_p ≤ (n-1)·n^p < n^{p+1}`, so field `p`
//! gets `bit_len(n^{p+1})` bits. Lemma 2's `O(k² log n)` bound falls out
//! of summing those widths; [`lemma2_bound_bits`] computes it exactly and
//! the tests pin the encoded size to it.

use referee_graph::VertexId;
use referee_protocol::{bits_for, BitWriter, DecodeError, Message};
use referee_wideint::UBig;

/// The decoded content of one Algorithm 3 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerSumSketch {
    /// `ID(x)`.
    pub id: VertexId,
    /// `deg(x)` in the full graph `G`.
    pub degree: usize,
    /// `b_p(x)` for `p = 1..=k` (index `p - 1`).
    pub sums: Vec<UBig>,
}

impl PowerSumSketch {
    /// Algorithm 3 proper: build the sketch from a node's local view.
    /// `O(deg · k)` limb operations — the "local time O(n)" of Lemma 2
    /// (per power), with no materialized `A(k, n)` matrix.
    pub fn compute(n: usize, id: VertexId, neighbours: &[VertexId], k: usize) -> Self {
        let _ = n;
        let mut sums = vec![UBig::zero(); k];
        for &w in neighbours {
            for (p, sum) in sums.iter_mut().enumerate() {
                sum.add_assign_ref(&UBig::pow_of(w as u64, (p + 1) as u32));
            }
        }
        PowerSumSketch { id, degree: neighbours.len(), sums }
    }

    /// Subtract a pruned vertex `x` from this sketch, i.e. the referee's
    /// update step in Algorithm 4: `deg -= 1; b_p -= ID(x)^p`.
    ///
    /// Fails (instead of panicking) when the messages were inconsistent —
    /// e.g. a corrupted sum going negative.
    pub fn prune_neighbour(&mut self, x: VertexId) -> Result<(), DecodeError> {
        if self.degree == 0 {
            return Err(DecodeError::Inconsistent(format!(
                "pruning neighbour {x} of vertex {} with degree 0",
                self.id
            )));
        }
        for (p, sum) in self.sums.iter_mut().enumerate() {
            let sub = UBig::pow_of(x as u64, (p + 1) as u32);
            *sum = sum.checked_sub(&sub).ok_or_else(|| {
                DecodeError::Inconsistent(format!(
                    "power sum p={} of vertex {} underflows removing {x}",
                    p + 1,
                    self.id
                ))
            })?;
        }
        self.degree -= 1;
        Ok(())
    }

    /// Serialize with the deterministic widths of [`sketch_field_widths`].
    pub fn to_message(&self, n: usize, k: usize) -> Message {
        assert_eq!(self.sums.len(), k, "sketch arity mismatch");
        let widths = sketch_field_widths(n, k);
        let mut w = BitWriter::new();
        w.write_bits(self.id as u64, widths.id);
        w.write_bits(self.degree as u64, widths.degree);
        for (p, sum) in self.sums.iter().enumerate() {
            write_ubig(&mut w, sum, widths.sums[p]);
        }
        Message::from_writer(w)
    }

    /// Deserialize (inverse of [`PowerSumSketch::to_message`]); validates
    /// ranges but not cross-message consistency.
    pub fn from_message(msg: &Message, n: usize, k: usize) -> Result<Self, DecodeError> {
        let widths = sketch_field_widths(n, k);
        let mut r = msg.reader();
        let id = r.read_bits(widths.id)? as VertexId;
        if id == 0 || id as usize > n {
            return Err(DecodeError::OutOfRange(format!("id {id} not in 1..={n}")));
        }
        let degree = r.read_bits(widths.degree)? as usize;
        if degree >= n.max(1) {
            return Err(DecodeError::OutOfRange(format!("degree {degree} ≥ n = {n}")));
        }
        let mut sums = Vec::with_capacity(k);
        for p in 0..k {
            sums.push(read_ubig(&mut r, widths.sums[p])?);
        }
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid(format!("{} trailing bits", r.remaining())));
        }
        Ok(PowerSumSketch { id, degree, sums })
    }
}

/// Field widths (in bits) of a serialized sketch for given `n`, `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchWidths {
    /// Width of the `ID` field: `⌈log₂(n+1)⌉`.
    pub id: u32,
    /// Width of the degree field.
    pub degree: u32,
    /// Width of each power-sum field: `sums[p-1]` holds `b_p < n^{p+1}`.
    pub sums: Vec<u32>,
}

impl SketchWidths {
    /// Total message size in bits.
    pub fn total(&self) -> usize {
        self.id as usize
            + self.degree as usize
            + self.sums.iter().map(|&w| w as usize).sum::<usize>()
    }
}

/// Deterministic field widths shared by encoder and decoder.
pub fn sketch_field_widths(n: usize, k: usize) -> SketchWidths {
    let id = bits_for(n);
    let degree = bits_for(n.saturating_sub(1));
    let sums = (1..=k)
        .map(|p| {
            // b_p ≤ (n-1)·n^p < n^{p+1}; width = bit_len(n^{p+1} - 1).
            // Computed exactly in UBig so no float rounding sneaks in.
            if n == 0 {
                1
            } else {
                let bound = UBig::pow_of(n as u64, (p + 1) as u32);
                let max_val = bound.checked_sub(&UBig::one()).expect("n ≥ 1");
                (max_val.bit_len() as u32).max(1)
            }
        })
        .collect();
    SketchWidths { id, degree, sums }
}

/// Lemma 2's exact message size for parameters `(n, k)`, in bits. The
/// paper bounds this by `k(k+1)·log n` for the sums plus the id/degree
/// fields — "more precisely, O(k² log n) bits".
pub fn lemma2_bound_bits(n: usize, k: usize) -> usize {
    sketch_field_widths(n, k).total()
}

fn write_ubig(w: &mut BitWriter, v: &UBig, width: u32) {
    assert!(v.bit_len() as u32 <= width, "value exceeds its field bound");
    // MSB-first in 64-bit chunks.
    let mut remaining = width;
    while remaining > 0 {
        let take = remaining.min(64);
        remaining -= take;
        // bits [remaining, remaining + take)
        let chunk = extract_bits(v, remaining, take);
        w.write_bits(chunk, take);
    }
}

fn read_ubig(r: &mut referee_protocol::BitReader<'_>, width: u32) -> Result<UBig, DecodeError> {
    let mut acc = UBig::zero();
    let mut remaining = width;
    while remaining > 0 {
        let take = remaining.min(64);
        remaining -= take;
        let chunk = r.read_bits(take)?;
        acc = acc.shl(take as usize).add_ref(&UBig::from(chunk));
    }
    Ok(acc)
}

/// Extract `count ≤ 64` bits of `v` starting at bit `lo` (little-endian).
fn extract_bits(v: &UBig, lo: u32, count: u32) -> u64 {
    let mut out = 0u64;
    for i in (0..count).rev() {
        out <<= 1;
        if v.bit((lo + i) as usize) {
            out |= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::generators;

    #[test]
    fn compute_known_sums() {
        // neighbours {2, 3}: b1 = 5, b2 = 13, b3 = 35
        let s = PowerSumSketch::compute(5, 1, &[2, 3], 3);
        assert_eq!(s.degree, 2);
        assert_eq!(s.sums[0], UBig::from(5u64));
        assert_eq!(s.sums[1], UBig::from(13u64));
        assert_eq!(s.sums[2], UBig::from(35u64));
    }

    #[test]
    fn empty_neighbourhood() {
        let s = PowerSumSketch::compute(5, 2, &[], 2);
        assert_eq!(s.degree, 0);
        assert!(s.sums.iter().all(|b| b.is_zero()));
    }

    #[test]
    fn prune_matches_recompute() {
        let mut s = PowerSumSketch::compute(9, 1, &[2, 5, 9], 4);
        s.prune_neighbour(5).unwrap();
        let expect = PowerSumSketch::compute(9, 1, &[2, 9], 4);
        assert_eq!(s.degree, expect.degree);
        assert_eq!(s.sums, expect.sums);
    }

    #[test]
    fn prune_detects_underflow() {
        let mut s = PowerSumSketch::compute(9, 1, &[2], 2);
        // Removing a non-neighbour with bigger id underflows b_1.
        assert!(s.prune_neighbour(7).is_err());
        // Degree-0 prune is inconsistent too.
        let mut s0 = PowerSumSketch::compute(9, 3, &[], 2);
        assert!(s0.prune_neighbour(1).is_err());
    }

    #[test]
    fn message_round_trip() {
        for (n, k) in [(10usize, 1usize), (100, 3), (1000, 5), (70000, 8)] {
            let nbrs: Vec<u32> =
                (1..=k as u32).map(|i| i * (n as u32 / (k as u32 + 1))).collect();
            let nbrs: Vec<u32> = nbrs.into_iter().filter(|&v| v >= 1).collect();
            let s = PowerSumSketch::compute(n, (n / 2) as u32, &nbrs, k);
            let m = s.to_message(n, k);
            assert_eq!(m.len_bits(), lemma2_bound_bits(n, k), "n={n}, k={k}");
            let back = PowerSumSketch::from_message(&m, n, k).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn widths_are_lemma2_shaped() {
        // k(k+1)/2 · log n growth for the sum fields plus 2 log n overhead.
        let n = 1024;
        for k in 1..=8usize {
            let total = lemma2_bound_bits(n, k) as f64;
            let logn = (n as f64).log2();
            // Σ_{p=1..k} (p+1)·log n = (k(k+1)/2 + k)·log n plus rounding.
            let predicted = ((k * (k + 1) / 2 + k) as f64 + 2.0) * logn;
            assert!(
                (total - predicted).abs() <= (k as f64 + 3.0) * 2.0,
                "k={k}: total {total} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn message_is_frugal_for_fixed_k() {
        // Fixed k: bits / log2(n) bounded as n grows.
        let k = 4;
        let ratios: Vec<f64> = [64usize, 256, 1024, 4096, 16384]
            .iter()
            .map(|&n| lemma2_bound_bits(n, k) as f64 / (n as f64).log2())
            .collect();
        for w in ratios.windows(2) {
            assert!(w[1] <= w[0] + 1.0, "ratio jumped: {ratios:?}");
        }
        assert!(ratios.last().unwrap() < &18.0);
    }

    #[test]
    fn out_of_range_fields_rejected() {
        let n = 10;
        let k = 2;
        let s = PowerSumSketch::compute(n, 3, &[1, 2], k);
        let good = s.to_message(n, k);
        assert!(PowerSumSketch::from_message(&good, n, k).is_ok());
        // id = 0 (flip id bits to zero)
        let mut bad = PowerSumSketch { id: 3, ..s.clone() };
        bad.id = 0;
        // can't serialize id=0 via to_message range assertion on decode side:
        let msg = {
            let widths = sketch_field_widths(n, k);
            let mut w = BitWriter::new();
            w.write_bits(0, widths.id);
            w.write_bits(2, widths.degree);
            for p in 0..k {
                write_ubig(&mut w, &s.sums[p], widths.sums[p]);
            }
            Message::from_writer(w)
        };
        assert!(matches!(
            PowerSumSketch::from_message(&msg, n, k),
            Err(DecodeError::OutOfRange(_))
        ));
    }

    #[test]
    fn sums_overflow_u128_regime() {
        // n = 70000, k = 8: b_8 can reach ~70000^9 ≈ 2^145 — the reason
        // wideint exists. Exercise a real encode/decode at that scale.
        let n = 70000usize;
        let k = 8usize;
        let nbrs: Vec<u32> = vec![69999, 70000, 12345, 1];
        let s = PowerSumSketch::compute(n, 7, &nbrs, k);
        assert!(s.sums[7].bit_len() > 128 - 64, "big sums exercised");
        let m = s.to_message(n, k);
        let back = PowerSumSketch::from_message(&m, n, k).unwrap();
        assert_eq!(back.sums, s.sums);
    }

    #[test]
    fn whole_graph_encoding_sizes() {
        let g = generators::grid(8, 8);
        let k = 2;
        let n = g.n();
        for v in g.vertices() {
            let s = PowerSumSketch::compute(n, v, g.neighbourhood(v), k);
            let m = s.to_message(n, k);
            assert_eq!(m.len_bits(), lemma2_bound_bits(n, k));
        }
    }
}
