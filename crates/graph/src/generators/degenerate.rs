//! Generators with a *certified* degeneracy bound — the input classes of
//! Theorem 5.
//!
//! Both constructions build the graph along an explicit elimination order,
//! so the bound holds by construction (and the tests double-check with
//! Matula–Beck).

use crate::algo::degeneracy::degeneracy_ordering;
use crate::{LabelledGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Random graph of degeneracy ≤ `k`: vertices are inserted in the order of
/// a random permutation, each new vertex choosing up to `k` random
/// neighbours among those already present (`density` in 0..=1 scales how
/// many of the k slots are used on average).
///
/// The insertion order *reversed* is a valid elimination order with
/// back-degree ≤ k, so the degeneracy is ≤ k by Definition 2.
pub fn random_k_degenerate(
    n: usize,
    k: usize,
    density: f64,
    rng: &mut impl Rng,
) -> LabelledGraph {
    let mut order: Vec<VertexId> = (1..=n as VertexId).collect();
    order.shuffle(rng);
    let mut g = LabelledGraph::new(n);
    let mut present: Vec<VertexId> = Vec::with_capacity(n);
    for &v in &order {
        if !present.is_empty() {
            let want = k.min(present.len());
            // choose `want` distinct earlier vertices, keep each w.p. density
            let chosen: Vec<VertexId> = present
                .choose_multiple(rng, want)
                .copied()
                .filter(|_| density >= 1.0 || rng.gen_bool(density.max(0.0)))
                .collect();
            for u in chosen {
                g.add_edge(u, v).expect("fresh edge to earlier vertex");
            }
        }
        present.push(v);
    }
    g
}

/// Random k-tree on `n ≥ k + 1` vertices: start from K_{k+1}, then each new
/// vertex is joined to a uniformly random existing k-clique. k-trees have
/// treewidth exactly `k` and degeneracy exactly `k` — the paper's
/// "bounded treewidth" class ("graphs of treewidth k are also of
/// degeneracy at most k").
///
/// Vertex IDs are randomly permuted afterwards so the elimination order is
/// *not* revealed by the labelling (the referee must rediscover it).
pub fn k_tree(n: usize, k: usize, rng: &mut impl Rng) -> LabelledGraph {
    assert!(n > k, "k-tree needs n ≥ k+1 (n={n}, k={k})");
    // Build on internal labels 0..n first.
    let mut cliques: Vec<Vec<u32>> = vec![(0..k as u32).collect()];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..=k as u32 {
        for v in (u + 1)..=k as u32 {
            edges.push((u, v));
        }
    }
    // K_{k+1} contributes its k+1 sub-k-cliques as attachment points.
    for omit in 0..=k as u32 {
        let c: Vec<u32> = (0..=k as u32).filter(|&x| x != omit).collect();
        if c.len() == k && !cliques.contains(&c) {
            cliques.push(c);
        }
    }
    for new in (k as u32 + 1)..n as u32 {
        let base = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &base {
            edges.push((u, new));
        }
        // new k-cliques: base with one element replaced by `new`
        for omit in 0..base.len() {
            let mut c = base.clone();
            c[omit] = new;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    // Random relabelling.
    let mut perm: Vec<VertexId> = (1..=n as VertexId).collect();
    perm.shuffle(rng);
    LabelledGraph::from_edges(
        n,
        edges.iter().map(|&(u, v)| (perm[u as usize], perm[v as usize])),
    )
    .expect("k-tree edges are simple")
}

/// Certify that a generated graph really has degeneracy ≤ k (debug aid and
/// test hook).
pub fn check_degeneracy_at_most(g: &LabelledGraph, k: usize) -> bool {
    degeneracy_ordering(g).degeneracy <= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn k_degenerate_respects_bound() {
        let mut r = rng();
        for k in 1..=6 {
            let g = random_k_degenerate(60, k, 1.0, &mut r);
            let d = degeneracy_ordering(&g).degeneracy;
            assert!(d <= k, "k={k}, got degeneracy {d}");
            // full density should usually achieve exactly k
            if k <= 4 {
                assert_eq!(d, k, "k={k} with density 1 should be tight");
            }
        }
    }

    #[test]
    fn k_degenerate_density_zero_is_edgeless() {
        let mut r = rng();
        let g = random_k_degenerate(20, 3, 0.0, &mut r);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn k_tree_structure() {
        let mut r = rng();
        for k in 1..=4usize {
            let g = k_tree(30, k, &mut r);
            // k-tree edge count: C(k+1,2) + (n - k - 1) * k
            let expect = (k + 1) * k / 2 + (30 - k - 1) * k;
            assert_eq!(g.m(), expect, "k={k}");
            assert_eq!(degeneracy_ordering(&g).degeneracy, k, "k={k}");
        }
    }

    #[test]
    fn one_tree_is_a_tree() {
        let mut r = rng();
        let g = k_tree(25, 1, &mut r);
        assert!(crate::algo::is_forest(&g));
        assert!(crate::algo::is_connected(&g));
    }

    #[test]
    fn certificate_helper() {
        let mut r = rng();
        let g = random_k_degenerate(40, 2, 1.0, &mut r);
        assert!(check_degeneracy_at_most(&g, 2));
        assert!(check_degeneracy_at_most(&g, 5));
        assert!(!check_degeneracy_at_most(&crate::generators::complete(6), 3));
    }
}
