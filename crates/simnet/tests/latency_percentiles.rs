//! Deterministic latency percentiles: sessions stamped from a
//! [`ManualClock`] record *exactly* the durations the driver injects, so
//! the aggregate's histogram pins exact p50/p99/p999 values — no wall
//! clock, no tolerance bands.

use referee_graph::generators;
use referee_protocol::easy::EdgeCountProtocol;
use referee_simnet::{
    AggregateMetrics, ManualClock, MultiRoundSession, OneRoundSession, PerfectTransport,
    SharedClock,
};

#[test]
fn manual_clock_pins_exact_percentiles() {
    let clock = ManualClock::new();
    let g = generators::grid(2, 2);
    let mut agg = AggregateMetrics::default();
    // 100 sessions taking exactly 1 000 µs and one straggler taking
    // exactly 1 000 000 µs: p50 and p99 land in the 1 000 µs bucket
    // (bound 1023), p999 in the straggler's (bound 2²⁰ − 1).
    for i in 0..101 {
        let session = OneRoundSession::new(&EdgeCountProtocol, &g)
            .with_clock(clock.clone() as SharedClock);
        clock.advance(if i < 100 { 0.001 } else { 1.0 });
        let report = session.run(&mut PerfectTransport::new());
        assert_eq!(report.outcome.clone().unwrap().unwrap(), g.m());
        agg.absorb(&report.metrics, report.outcome.is_ok());
    }
    assert_eq!(agg.latency.count(), 101);
    assert_eq!(agg.latency.p50(), 1023);
    assert_eq!(agg.latency.p99(), 1023);
    assert_eq!(agg.latency.p999(), (1 << 20) - 1);
}

#[test]
fn merged_aggregates_preserve_exact_percentiles() {
    // Two shards of a fleet absorb disjoint session sets; merging the
    // aggregates yields the same pinned percentiles as one big absorb.
    let clock = ManualClock::new();
    let g = generators::path(3);
    let run = |dt: f64, agg: &mut AggregateMetrics| {
        let session = OneRoundSession::new(&EdgeCountProtocol, &g)
            .with_clock(clock.clone() as SharedClock);
        clock.advance(dt);
        let report = session.run(&mut PerfectTransport::new());
        agg.absorb(&report.metrics, report.outcome.is_ok());
    };
    let (mut a, mut b) = (AggregateMetrics::default(), AggregateMetrics::default());
    for _ in 0..9 {
        run(0.000_100, &mut a); // 100 µs → bucket bound 127
    }
    run(0.016_000, &mut b); // 16 000 µs → bucket bound 16383
    a.merge(&b);
    assert_eq!(a.latency.count(), 10);
    assert_eq!(a.latency.p50(), 127);
    assert_eq!(a.latency.p99(), 16383);
    assert_eq!(a.latency.quantile(0.9), 127);
}

#[test]
fn frozen_clock_pins_zero_latency_for_multiround() {
    // A multi-round session re-stamps its round timer from the clock at
    // every round, so under a ManualClock that never advances every
    // round takes *exactly* zero time: the histogram's one sample lands
    // in bucket 0 and every percentile is exactly 0 µs — the
    // deterministic zero point of the latency pipeline.
    use referee_protocol::multiround::BoruvkaConnectivity;
    let clock = ManualClock::new();
    let g = generators::cycle(6).unwrap();
    let session = MultiRoundSession::new(&BoruvkaConnectivity, &g, 32)
        .with_clock(clock.clone() as SharedClock);
    let report = session.run(&mut PerfectTransport::new());
    assert!(report.outcome.is_ok());
    let mut agg = AggregateMetrics::default();
    agg.absorb(&report.metrics, true);
    assert_eq!(agg.latency.count(), 1);
    assert_eq!(agg.latency.p50(), 0);
    assert_eq!(agg.latency.p999(), 0);
}
