//! Seeded fault injection: a [`Transport`] decorator that loses,
//! duplicates, reorders and corrupts traffic.
//!
//! Corruption flips payload bits, so corrupted transmissions flow into
//! the *existing* decoder rejection paths
//! ([`DecodeError`](referee_protocol::DecodeError)) — the runtime adds no
//! side channel that real messages would not have. All randomness comes
//! from one seeded [`StdRng`], so every adversarial schedule is exactly
//! reproducible.

use crate::metrics::TransportCounters;
use crate::transport::{Envelope, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-envelope fault probabilities (all in `[0, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// RNG seed; two transports with equal configs behave identically.
    pub seed: u64,
    /// P(envelope is destroyed in transit).
    pub loss: f64,
    /// P(an extra copy of the envelope is created).
    pub duplication: f64,
    /// P(envelope is held back and released out of order, possibly
    /// rounds later).
    pub reorder: f64,
    /// P(at least one payload bit is flipped).
    pub corruption: f64,
}

impl FaultConfig {
    /// No faults at all: the decorated transport must behave bit-for-bit
    /// like its inner transport (pinned by property tests).
    pub fn lossless(seed: u64) -> Self {
        FaultConfig { seed, loss: 0.0, duplication: 0.0, reorder: 0.0, corruption: 0.0 }
    }

    /// A mildly hostile network: a little of everything.
    pub fn noisy(seed: u64) -> Self {
        FaultConfig { seed, loss: 0.02, duplication: 0.05, reorder: 0.15, corruption: 0.02 }
    }

    /// Corruption only — the configuration the failure-injection tests
    /// use to prove decoders reject flipped bits.
    pub fn corrupting(seed: u64, corruption: f64) -> Self {
        FaultConfig { seed, loss: 0.0, duplication: 0.0, reorder: 0.0, corruption }
    }

    /// True when every probability is zero.
    pub fn is_lossless(&self) -> bool {
        self.loss == 0.0
            && self.duplication == 0.0
            && self.reorder == 0.0
            && self.corruption == 0.0
    }
}

/// Decorator injecting [`FaultConfig`] faults around any inner transport.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    cfg: FaultConfig,
    rng: StdRng,
    /// Reorder buffer: envelopes held out of the inner FIFO, released at
    /// random points in the future (possibly across round boundaries).
    holdback: Vec<Envelope>,
    counters: TransportCounters,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` with fault injection.
    pub fn new(inner: T, cfg: FaultConfig) -> Self {
        FaultyTransport {
            inner,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            holdback: Vec::new(),
            counters: TransportCounters::default(),
        }
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn corrupt(&mut self, env: &mut Envelope) {
        let bits = env.payload.len_bits();
        if bits == 0 {
            return; // nothing to flip in an empty message
        }
        // Exactly one flipped bit per corruption event: the payload is
        // guaranteed altered (keeping the `corrupted` counter honest).
        // The protocol decoders are what must catch it — length checks,
        // range checks, and the keyed MAC tag on Borůvka proposal
        // uplinks (whose multi-bit coverage the failure-injection tests
        // probe separately with targeted burst patterns).
        self.counters.corrupted += 1;
        let idx = self.rng.gen_range(0..bits);
        env.payload = env.payload.with_bit_flipped(idx);
    }

    fn admit(&mut self, mut env: Envelope) {
        if self.cfg.corruption > 0.0 && self.rng.gen_bool(self.cfg.corruption) {
            self.corrupt(&mut env);
        }
        if self.cfg.reorder > 0.0 && self.rng.gen_bool(self.cfg.reorder) {
            self.counters.reordered += 1;
            self.holdback.push(env);
        } else {
            self.inner.send(env);
        }
    }

    fn release_holdback(&mut self) -> Option<Envelope> {
        if self.holdback.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.holdback.len());
        Some(self.holdback.swap_remove(idx))
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, env: Envelope) {
        self.counters.sent += 1;
        if self.cfg.loss > 0.0 && self.rng.gen_bool(self.cfg.loss) {
            self.counters.dropped += 1;
            return;
        }
        if self.cfg.duplication > 0.0 && self.rng.gen_bool(self.cfg.duplication) {
            self.counters.duplicated += 1;
            let copy = env.clone();
            self.admit(copy);
        }
        self.admit(env);
    }

    fn recv(&mut self) -> Option<Envelope> {
        // Occasionally release a held-back envelope even while the inner
        // queue still has traffic — that is what makes reordering visible.
        if !self.holdback.is_empty() && self.rng.gen_bool(0.33) {
            self.counters.delivered += 1;
            return self.release_holdback();
        }
        if let Some(env) = self.inner.recv() {
            self.counters.delivered += 1;
            return Some(env);
        }
        // Inner empty: drain the reorder buffer so nothing is lost.
        if self.holdback.is_empty() {
            return None;
        }
        self.counters.delivered += 1;
        self.release_holdback()
    }

    fn counters(&self) -> TransportCounters {
        // `sent`/`delivered`/fault counters are tracked here; the inner
        // transport's own counters describe the post-fault stream and are
        // intentionally not merged (they would double-count).
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{PerfectTransport, REFEREE};
    use referee_protocol::{BitWriter, Message};

    fn env(round: u32, from: u32, value: u64) -> Envelope {
        let mut w = BitWriter::new();
        w.write_bits(value, 32);
        Envelope {
            session: Default::default(),
            round,
            from,
            to: REFEREE,
            payload: Message::from_writer(w),
        }
    }

    #[test]
    fn lossless_is_transparent() {
        let mut t = FaultyTransport::new(PerfectTransport::new(), FaultConfig::lossless(1));
        for i in 0..50 {
            t.send(env(1, i + 1, i as u64));
        }
        for i in 0..50 {
            let e = t.recv().expect("delivered");
            assert_eq!(e.from, i + 1, "order preserved");
            assert_eq!(e.payload.reader().read_bits(32).unwrap(), i as u64);
        }
        assert!(t.recv().is_none());
        let c = t.counters();
        assert_eq!((c.dropped, c.duplicated, c.corrupted, c.reordered), (0, 0, 0, 0));
        assert_eq!((c.sent, c.delivered), (50, 50));
    }

    #[test]
    fn loss_drops_and_counts() {
        let mut t = FaultyTransport::new(
            PerfectTransport::new(),
            FaultConfig { seed: 2, loss: 0.5, duplication: 0.0, reorder: 0.0, corruption: 0.0 },
        );
        for i in 0..200 {
            t.send(env(1, i % 30 + 1, i as u64));
        }
        let mut got = 0;
        while t.recv().is_some() {
            got += 1;
        }
        let c = t.counters();
        assert_eq!(c.sent, 200);
        assert_eq!(c.dropped + c.delivered, 200);
        assert_eq!(got as u64, c.delivered);
        assert!((50..150).contains(&c.dropped), "dropped {}", c.dropped);
    }

    #[test]
    fn duplication_creates_identical_copies() {
        let mut t = FaultyTransport::new(
            PerfectTransport::new(),
            FaultConfig { seed: 3, loss: 0.0, duplication: 1.0, reorder: 0.0, corruption: 0.0 },
        );
        t.send(env(1, 7, 99));
        let a = t.recv().unwrap();
        let b = t.recv().unwrap();
        assert_eq!(a, b);
        assert!(t.recv().is_none());
        assert_eq!(t.counters().duplicated, 1);
    }

    #[test]
    fn corruption_changes_bits_but_not_length() {
        let mut t =
            FaultyTransport::new(PerfectTransport::new(), FaultConfig::corrupting(4, 1.0));
        let original = env(1, 1, 0xdeadbeef);
        t.send(original.clone());
        let got = t.recv().unwrap();
        assert_eq!(got.payload.len_bits(), original.payload.len_bits());
        assert_ne!(got.payload, original.payload, "at least one flip expected");
        assert_eq!(t.counters().corrupted, 1);
    }

    #[test]
    fn empty_payloads_are_never_corrupted() {
        let mut t =
            FaultyTransport::new(PerfectTransport::new(), FaultConfig::corrupting(5, 1.0));
        t.send(Envelope {
            session: Default::default(),
            round: 1,
            from: 1,
            to: REFEREE,
            payload: Message::empty(),
        });
        assert_eq!(t.recv().unwrap().payload, Message::empty());
        assert_eq!(t.counters().corrupted, 0);
    }

    #[test]
    fn reorder_delivers_everything_eventually() {
        let mut t = FaultyTransport::new(
            PerfectTransport::new(),
            FaultConfig { seed: 6, loss: 0.0, duplication: 0.0, reorder: 0.9, corruption: 0.0 },
        );
        for i in 0..100 {
            t.send(env(1, i % 20 + 1, i as u64));
        }
        let mut seen = Vec::new();
        while let Some(e) = t.recv() {
            seen.push(e.payload.reader().read_bits(32).unwrap());
        }
        assert_eq!(seen.len(), 100, "no envelope may vanish");
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(seen, sorted, "with 90% holdback, FIFO order must break");
    }
}
