//! §IV "ongoing work": *a frugal one-round protocol for bipartiteness
//! implies a frugal one-round protocol deciding if a bipartite graph is
//! connected.*
//!
//! The paper states this without a construction; the one implemented here
//! is the natural parity-probe argument, in the same one-round style as
//! Theorems 1–3:
//!
//! For a **bipartite** `G` and vertices `s, t`:
//!
//! * the *even probe* `G⁺²_{s,t}` adds one vertex adjacent to `s` and `t`
//!   (a length-2 path). If `s, t` are in the same component at odd
//!   distance, every `s–t` path is odd, so closing it with an even path
//!   creates an odd cycle ⇒ non-bipartite. Otherwise the 2-colouring
//!   extends ⇒ bipartite.
//! * the *odd probe* `G⁺³_{s,t}` adds a length-3 path `s—a—b—t`;
//!   symmetrically it is non-bipartite iff `s, t` are connected at even
//!   distance.
//!
//! Hence `same-component(s, t) ⟺ ¬bip(G⁺²) ∨ ¬bip(G⁺³)`, and `G` is
//! connected iff all pairs are same-component. Each original vertex has at
//! most 5 possible neighbourhood forms across all probes, so one round
//! suffices; `Δ`'s messages are 5 bundled `Γ` messages — still frugal.

use crate::util::{bundle, unbundle};
use referee_graph::dsu::Dsu;
use referee_graph::VertexId;
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// `Δ`: connectivity of (promised bipartite) graphs, from a bipartiteness
/// decider `Γ`.
#[derive(Debug, Clone, Copy)]
pub struct BipartiteConnectivityReduction<P> {
    inner: P,
}

impl<P> BipartiteConnectivityReduction<P> {
    /// Wrap a bipartiteness-decision protocol.
    pub fn new(inner: P) -> Self {
        BipartiteConnectivityReduction { inner }
    }
}

impl<P> OneRoundProtocol for BipartiteConnectivityReduction<P>
where
    P: OneRoundProtocol<Output = bool> + Sync,
{
    type Output = Result<bool, DecodeError>;

    fn name(&self) -> String {
        format!("Δ: bipartite connectivity via [{}] (§IV)", self.inner.name())
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n = view.n;
        let with = |extra: &[VertexId], size: usize| {
            let mut nbrs = Vec::with_capacity(view.degree() + extra.len());
            nbrs.extend_from_slice(view.neighbours);
            nbrs.extend_from_slice(extra); // extras are > n ≥ all of N
            self.inner.local(NodeView::new(size, view.id, &nbrs))
        };
        let a1 = (n + 1) as VertexId;
        let a2 = (n + 2) as VertexId;
        // even probe lives on n+1 vertices; odd probe on n+2.
        let e_plain = with(&[], n + 1);
        let e_role = with(&[a1], n + 1);
        let o_plain = with(&[], n + 2);
        let o_s = with(&[a1], n + 2);
        let o_t = with(&[a2], n + 2);
        bundle(&[e_plain, e_role, o_plain, o_s, o_t])
    }

    fn global(&self, n: usize, messages: &[Message]) -> Result<bool, DecodeError> {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        if n <= 1 {
            return Ok(true);
        }
        let mut parts: Vec<Vec<Message>> = Vec::with_capacity(n);
        for msg in messages {
            parts.push(unbundle(msg, 5)?);
        }
        let a1 = (n + 1) as VertexId;
        let a2 = (n + 2) as VertexId;
        let mut dsu = Dsu::new(n);
        for s in 1..=n as VertexId {
            for t in (s + 1)..=n as VertexId {
                if dsu.same((s - 1) as usize, (t - 1) as usize) {
                    continue; // transitivity saves Γ queries
                }
                // Even probe, size n+1: vertex n+1 adjacent to {s, t}.
                let mut even: Vec<Message> = Vec::with_capacity(n + 1);
                for i in 1..=n as VertexId {
                    let p = &parts[(i - 1) as usize];
                    even.push(if i == s || i == t { p[1].clone() } else { p[0].clone() });
                }
                even.push(self.inner.local(NodeView::new(n + 1, a1, &[s, t])));
                let even_bip = self.inner.global(n + 1, &even);

                let same = if !even_bip {
                    true
                } else {
                    // Odd probe, size n+2: path s — (n+1) — (n+2) — t.
                    let mut odd: Vec<Message> = Vec::with_capacity(n + 2);
                    for i in 1..=n as VertexId {
                        let p = &parts[(i - 1) as usize];
                        odd.push(if i == s {
                            p[3].clone()
                        } else if i == t {
                            p[4].clone()
                        } else {
                            p[2].clone()
                        });
                    }
                    odd.push(self.inner.local(NodeView::new(n + 2, a1, &[s, a2])));
                    odd.push(self.inner.local(NodeView::new(n + 2, a2, &[t, a1])));
                    !self.inner.global(n + 2, &odd)
                };
                if same {
                    dsu.union((s - 1) as usize, (t - 1) as usize);
                }
            }
        }
        Ok(dsu.components() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BipartitenessOracle;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{algo, generators, LabelledGraph};
    use referee_protocol::run_protocol;

    fn decide(g: &LabelledGraph) -> bool {
        assert!(algo::is_bipartite(g), "reduction promises bipartite input");
        run_protocol(&BipartiteConnectivityReduction::new(BipartitenessOracle), g)
            .output
            .unwrap()
    }

    #[test]
    fn connected_bipartite_accepted() {
        assert!(decide(&generators::path(12)));
        assert!(decide(&generators::complete_bipartite(4, 5)));
        assert!(decide(&generators::grid(4, 5)));
        assert!(decide(&generators::cycle(8).unwrap()));
        assert!(decide(&generators::hypercube(3)));
    }

    #[test]
    fn disconnected_bipartite_rejected() {
        let g = generators::path(5).disjoint_union(&generators::path(4));
        assert!(!decide(&g));
        assert!(!decide(&LabelledGraph::new(3)));
        // a connected grid plus one isolated vertex
        let g = generators::grid(3, 3).grow(10);
        assert!(!decide(&g));
    }

    #[test]
    fn matches_centralized_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..10 {
            let g = generators::random_balanced_bipartite(12, 0.18, &mut rng);
            assert_eq!(decide(&g), algo::is_connected(&g), "graph {g:?}");
        }
    }

    #[test]
    fn random_forests_match() {
        // Forests are bipartite; connectivity = being a single tree.
        let mut rng = StdRng::seed_from_u64(71);
        for keep in [1.0, 0.9] {
            let g = generators::random_forest(14, keep, &mut rng);
            assert_eq!(decide(&g), algo::is_connected(&g));
        }
    }

    #[test]
    fn message_is_five_bundled_parts() {
        let g = generators::path(6);
        let delta = BipartiteConnectivityReduction::new(BipartitenessOracle);
        let msgs = referee_protocol::referee::local_phase(&delta, &g);
        for m in &msgs {
            assert_eq!(unbundle(m, 5).unwrap().len(), 5);
        }
    }

    #[test]
    fn trivial_sizes() {
        assert!(decide(&LabelledGraph::new(1)));
        let two = LabelledGraph::from_edges(2, [(1, 2)]).unwrap();
        assert!(decide(&two));
        assert!(!decide(&LabelledGraph::new(2)));
    }
}
