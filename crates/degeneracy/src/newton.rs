//! Newton's identities and integer root extraction — the algebra behind
//! the scalable neighbourhood decoder.
//!
//! Theorem 4 of the paper (Wright 1948) guarantees that the power sums
//! `p_1, …, p_k` of at most `k` distinct integers determine the integers
//! uniquely. This module makes that effective:
//!
//! 1. Newton's identities convert power sums to elementary symmetric
//!    polynomials: `j·e_j = Σ_{i=1}^{j} (-1)^{i-1} e_{j-i} · p_i`.
//! 2. The neighbour IDs are then the roots of the monic polynomial
//!    `Π (x - r_i) = Σ_i (-1)^i e_i x^{d-i}`. All roots are distinct
//!    integers in `1..=n`, so they divide the constant term `e_d`; we scan
//!    candidates, filter by divisibility, and confirm by synthetic
//!    division (which also deflates the polynomial).
//!
//! Every step checks exactness so corrupted sketches surface as
//! [`DecodeError`]s, never as wrong neighbour sets.

use referee_graph::VertexId;
use referee_protocol::DecodeError;
use referee_wideint::{IBig, UBig};

/// Convert power sums `p[0..d]` (`p[i]` = `p_{i+1}`) into elementary
/// symmetric polynomials `e[0..=d]` with `e[0] = 1`.
///
/// Fails if any Newton division is inexact or any `e_j` comes out
/// negative — both impossible for genuine power sums of positive integers.
pub fn power_sums_to_elementary(p: &[UBig], d: usize) -> Result<Vec<IBig>, DecodeError> {
    assert!(p.len() >= d, "need at least d power sums");
    let mut e: Vec<IBig> = Vec::with_capacity(d + 1);
    e.push(IBig::one());
    for j in 1..=d {
        // j·e_j = Σ_{i=1}^{j} (-1)^{i-1} e_{j-i} p_i
        let mut acc = IBig::zero();
        for i in 1..=j {
            let term = &e[j - i] * &IBig::from(p[i - 1].clone());
            if i % 2 == 1 {
                acc = &acc + &term;
            } else {
                acc = &acc - &term;
            }
        }
        let ej = acc.exact_div_small(j as u64).ok_or_else(|| {
            DecodeError::Inconsistent(format!(
                "Newton identity for e_{j} is not divisible by {j}"
            ))
        })?;
        if ej.is_negative() {
            return Err(DecodeError::Inconsistent(format!(
                "elementary symmetric e_{j} is negative"
            )));
        }
        e.push(ej);
    }
    Ok(e)
}

/// Find the `d` distinct integer roots in `1..=n` of the monic polynomial
/// with elementary symmetric coefficients `e` (`e.len() = d + 1`). Returns
/// them ascending. Errors if fewer than `d` roots exist in range.
pub fn integer_roots(e: &[IBig], n: usize) -> Result<Vec<VertexId>, DecodeError> {
    let d = e.len() - 1;
    if d == 0 {
        return Ok(Vec::new());
    }
    // coeffs[i] = (-1)^i e_i, for x^{d-i}
    let mut coeffs: Vec<IBig> =
        e.iter().enumerate().map(|(i, ei)| if i % 2 == 0 { ei.clone() } else { -ei }).collect();
    let mut roots: Vec<VertexId> = Vec::with_capacity(d);

    for cand in 1..=n as u64 {
        if roots.len() == d {
            break;
        }
        // Quick filter: a root must divide the current constant term
        // (unless that term is zero, which cannot happen while roots
        // remain — all roots are ≥ 1 so the constant term is ± their
        // product ≠ 0).
        let konst = coeffs.last().expect("non-empty coeffs");
        if konst.is_zero() {
            return Err(DecodeError::Inconsistent(
                "zero constant term while roots remain (0 is not a valid ID)".into(),
            ));
        }
        if cand > 1 {
            let (_, rem) = konst
                .magnitude()
                .divrem_small(cand)
                .map_err(|_| DecodeError::Inconsistent("divisor zero".into()))?;
            if rem != 0 {
                continue;
            }
        }
        // Synthetic division by (x - cand): b_0 = c_0, b_i = c_i + cand·b_{i-1}.
        let cand_ib = IBig::from(UBig::from(cand));
        let mut b: Vec<IBig> = Vec::with_capacity(coeffs.len());
        b.push(coeffs[0].clone());
        for c in &coeffs[1..] {
            let prev = b.last().expect("non-empty");
            b.push(c + &(&cand_ib * prev));
        }
        if b.last().expect("remainder").is_zero() {
            roots.push(cand as VertexId);
            b.pop();
            coeffs = b; // deflated quotient
        }
    }

    if roots.len() != d {
        return Err(DecodeError::Inconsistent(format!(
            "found only {} of {d} integer roots in 1..={n}",
            roots.len()
        )));
    }
    Ok(roots)
}

/// End-to-end: recover the `degree`-element neighbour set from its power
/// sums. All `sums` provided (even beyond `degree`) are used for a final
/// consistency check, so a corrupted higher power sum is detected even
/// when the first `degree` sums happen to be consistent.
pub fn decode_neighbours(
    n: usize,
    degree: usize,
    sums: &[UBig],
) -> Result<Vec<VertexId>, DecodeError> {
    if degree > sums.len() {
        return Err(DecodeError::Invalid(format!(
            "degree {degree} exceeds sketch arity {}",
            sums.len()
        )));
    }
    let e = power_sums_to_elementary(sums, degree)?;
    let roots = integer_roots(&e, n)?;
    // Verify every provided power sum, not just the first `degree`.
    for (p, expect) in sums.iter().enumerate() {
        let mut acc = UBig::zero();
        for &r in &roots {
            acc.add_assign_ref(&UBig::pow_of(r as u64, (p + 1) as u32));
        }
        if &acc != expect {
            return Err(DecodeError::Inconsistent(format!(
                "power sum p={} mismatch after root recovery",
                p + 1
            )));
        }
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums_of(ids: &[u32], k: usize) -> Vec<UBig> {
        (1..=k)
            .map(|p| {
                let mut acc = UBig::zero();
                for &i in ids {
                    acc.add_assign_ref(&UBig::pow_of(i as u64, p as u32));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn elementary_of_known_roots() {
        // roots {2, 3, 5}: e1 = 10, e2 = 31, e3 = 30
        let p = sums_of(&[2, 3, 5], 3);
        let e = power_sums_to_elementary(&p, 3).unwrap();
        assert_eq!(e[1], IBig::from(10));
        assert_eq!(e[2], IBig::from(31));
        assert_eq!(e[3], IBig::from(30));
    }

    #[test]
    fn roots_recovered_ascending() {
        let p = sums_of(&[7, 2, 9], 3);
        assert_eq!(decode_neighbours(10, 3, &p).unwrap(), vec![2, 7, 9]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(decode_neighbours(10, 0, &sums_of(&[], 2)).unwrap(), Vec::<u32>::new());
        assert_eq!(decode_neighbours(10, 1, &sums_of(&[6], 2)).unwrap(), vec![6]);
    }

    #[test]
    fn extra_sums_strengthen_verification() {
        // degree 2 but 4 sums provided; corrupt the 4th sum only.
        let mut p = sums_of(&[3, 8], 4);
        assert!(decode_neighbours(10, 2, &p).is_ok());
        p[3] = p[3].add_ref(&UBig::one());
        assert!(decode_neighbours(10, 2, &p).is_err());
    }

    #[test]
    fn corrupted_first_sum_detected() {
        let mut p = sums_of(&[3, 8], 2);
        p[0] = p[0].add_ref(&UBig::one());
        assert!(decode_neighbours(10, 2, &p).is_err());
    }

    #[test]
    fn wrong_degree_detected() {
        let p = sums_of(&[3, 8], 2);
        assert!(decode_neighbours(10, 1, &p).is_err());
        assert!(decode_neighbours(10, 3, &p).is_err()); // degree > arity
    }

    #[test]
    fn roots_out_of_range_detected() {
        // power sums of {12} with n = 10: root exists but not in range
        let p = sums_of(&[12], 1);
        assert!(decode_neighbours(10, 1, &p).is_err());
    }

    #[test]
    fn big_ids_exercise_wideint() {
        let ids = [65521u32, 99991, 1, 50000];
        let p = sums_of(&ids, 6);
        assert!(p[5].bit_len() > 64);
        let mut expect = ids.to_vec();
        expect.sort_unstable();
        assert_eq!(decode_neighbours(100_000, 4, &p).unwrap(), expect);
    }

    #[test]
    fn wright_uniqueness_spot_check() {
        // Distinct ≤k-subsets never share all k power sums (Theorem 4):
        // exhaustive over subsets of {1..8} with k = 3.
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<UBig>, Vec<u32>> = HashMap::new();
        let ids: Vec<u32> = (1..=8).collect();
        // all subsets of size ≤ 3
        for mask in 0u32..(1 << 8) {
            if mask.count_ones() > 3 {
                continue;
            }
            let subset: Vec<u32> =
                ids.iter().copied().filter(|&i| mask >> (i - 1) & 1 == 1).collect();
            let key = sums_of(&subset, 3);
            if let Some(prev) = seen.insert(key, subset.clone()) {
                panic!("power-sum collision: {prev:?} vs {subset:?}");
            }
        }
    }
}
