//! Cross-host shard placement: shard workers as first-class network
//! peers.
//!
//! The sharded referee services ([`crate::shard`], [`crate::multiround`])
//! already push every cross-shard partial through the full MAC'd wire
//! codec — this module swaps the in-process channel under that codec for
//! a real socket, so shards can live on separate hosts:
//!
//! * [`PlacementPolicy`] (re-exported from
//!   `referee_protocol::shard::placement`) assigns every shard index to
//!   a [`HostId`]; the balanced-contiguous default reuses the §IV
//!   partition arithmetic one level up, and a static map is available
//!   for deployments that know better.
//! * [`RemotePlacement`] binds the policy to live socket addresses. The
//!   address book is shared and updatable
//!   ([`update_host`](RemotePlacement::update_host)), so a shard host
//!   that restarts on a new port (or migrates to a new machine) is
//!   picked up on the proxy's next redial — no server restart.
//! * [`ShardHost`] is the remote worker role: it accepts coordinator
//!   connections, each registered as one shard of a placement by a
//!   MAC'd [`Register`](FrameKind::Register) handshake, ingests routed
//!   uplinks into [`RefereeShard`]/[`RoundShard`] states, and ships
//!   [`Partial`](FrameKind::Partial) frames back over the same
//!   authenticated codec the rest of the system speaks.
//! * The coordinator runs one **proxy** per shard (spawned by the
//!   remote server modes in [`crate::fleet`]): it forwards the router's
//!   traffic to its shard host, journals everything a live shard may
//!   still need ([`ShardJournal`]), and on disconnect redials,
//!   re-registers and replays — so a shard-host kill/restart is
//!   invisible to honest sessions (pinned bit-for-bit by the chaos
//!   tests).
//!
//! # Per-shard keys
//!
//! Shard-host links never reuse the fleet's client-facing keys:
//!
//! ```text
//! registration key  = base.derive("place_ky")
//! shard key i       = registration.derive(i)          (tweak = shard id)
//! link key (i, g)   = shard key i  .derive(g)         (g = registration generation)
//! ```
//!
//! The [`Register`](FrameKind::Register) frame is the only frame a link
//! carries under the registration key; everything after runs under the
//! generation-scoped link key. Consequences, pinned by tests: a leaked
//! shard key forges nothing on sibling shards (frames MAC'd with shard
//! A's key are rejected by shard B), and a partial from a **previous
//! registration generation** — a reconnected host replaying pre-epoch
//! state — fails the MAC outright, so stale shard state can never merge
//! into a post-reconnect run.
//!
//! # Reconnect semantics
//!
//! The coordinator journals, per shard and session, exactly the uplinks
//! whose round has not yet produced a merged partial
//! ([`ShardJournal`]); a partial's arrival commits its round and prunes
//! the journal. On redial the proxy bumps the generation, re-registers,
//! re-announces every uncommitted session at its
//! [`resume_round`](ShardJournal::resume_round) and replays the
//! journal. Because shards are deterministic in their inputs, the
//! rebuilt shard re-emits bit-identical partials — verdicts are
//! unchanged by any kill/restart schedule that eventually lets the
//! fleet drain.

use crate::auth::AuthKey;
use crate::frame::{
    encode_wire_frame, FrameKind, WireError, HEADER_BYTES, MAX_BODY_BYTES, TAG_BYTES,
};
use crate::metrics::{trace_endpoint, Stage, WireMetrics, WireSnapshot};
use crate::reactor::{Conn, SCRATCH_BYTES, WRITE_BACKPRESSURE_BYTES};
use referee_protocol::shard::multiround::{RoundPartialState, RoundShard};
use referee_protocol::shard::replay::{decode_resume, encode_resume, Recorded, ShardJournal};
use referee_protocol::shard::{shard_range, Arrival, PartialState, RefereeShard};
use referee_protocol::trace::{TraceKind, TraceSnapshot};
use referee_protocol::{BitWriter, DecodeError, Message};
use referee_simnet::{Envelope, SessionId};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

pub use referee_protocol::shard::placement::{HostId, PlacementPolicy};

/// Domain-separation tweak for the placement key hierarchy.
const PLACEMENT_TWEAK: u64 = 0x706c_6163_655f_6b79; // "place_ky"

/// Default proxy redial backoff after a shard-host link dies (see
/// [`REDIAL_BACKOFF_ENV`] and
/// [`FleetServerBuilder::redial_backoff`](crate::fleet::FleetServerBuilder::redial_backoff)).
pub const DEFAULT_REDIAL_BACKOFF: Duration = Duration::from_millis(20);

/// Environment variable overriding the proxy redial backoff, in
/// milliseconds. Unset, unparsable or zero keeps
/// [`DEFAULT_REDIAL_BACKOFF`]; the builder knob takes precedence.
pub const REDIAL_BACKOFF_ENV: &str = "REFEREE_WIRENET_REDIAL_BACKOFF_MS";

/// Resolve the redial backoff from an env *value* (passed as a
/// parameter so unit tests never mutate the process environment — the
/// same discipline as [`WireTimeouts`](crate::WireTimeouts)).
pub(crate) fn resolve_redial_backoff(env: Option<&str>) -> Duration {
    env.and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map_or(DEFAULT_REDIAL_BACKOFF, Duration::from_millis)
}

/// The redial backoff a builder starts from: [`REDIAL_BACKOFF_ENV`] if
/// set, else [`DEFAULT_REDIAL_BACKOFF`].
pub(crate) fn default_redial_backoff() -> Duration {
    resolve_redial_backoff(std::env::var(REDIAL_BACKOFF_ENV).ok().as_deref())
}

/// Dial timeout for one connection attempt to a shard host.
const DIAL_TIMEOUT: Duration = Duration::from_millis(500);

/// Environment variable a shard-host role reads for its bind address
/// (`ip:port`; see [`ShardHost::spawn_env`]).
pub const SHARD_HOST_BIND_ENV: &str = "REFEREE_SHARDHOST_BIND";

/// The key authenticating [`Register`](FrameKind::Register) handshakes
/// of a fleet: `base.derive(placement tweak)`. Shard and link keys are
/// derived *from* it, so leaking any per-shard key reveals nothing
/// about the registration domain.
pub fn registration_key(base: &AuthKey) -> AuthKey {
    base.derive(PLACEMENT_TWEAK)
}

/// Shard `index`'s long-term key: `registration.derive(index)` — the
/// "tweak = shard id" step that keeps sibling shards cryptographically
/// apart.
pub fn shard_key(base: &AuthKey, index: usize) -> AuthKey {
    registration_key(base).derive(index as u64)
}

/// The key authenticating one registration generation of shard
/// `index`'s link. A reconnect bumps the generation, so frames from a
/// previous incarnation of the link — including replayed pre-epoch
/// partials — fail the MAC.
pub fn link_key(base: &AuthKey, index: usize, generation: u32) -> AuthKey {
    shard_key(base, index).derive(generation as u64)
}

/// [`link_key`]'s derivation expressed as an evidence-record path —
/// `[placement tweak, index, generation]` — so a frame captured under a
/// superseded generation can be packaged into a
/// [`ProvableError::StaleReplay`](referee_protocol::evidence::ProvableError)
/// bundle: the stale record paired with a context record whose path
/// differs only in a *newer* final (generation) element. Folding the
/// base key through this path yields exactly [`link_key`]'s MAC key.
pub fn link_key_path(index: usize, generation: u32) -> Vec<u64> {
    vec![PLACEMENT_TWEAK, index as u64, u64::from(generation)]
}

/// Which referee service a shard-host link serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHostMode {
    /// One-round assembly: [`RefereeShard`] per session.
    OneRound,
    /// Multi-round assembly: a [`RoundShard`] per session, advanced
    /// round by round.
    MultiRound,
}

/// Serialize a [`Register`](FrameKind::Register) payload: mode:8,
/// shard index:32, shard count:32, registration generation:32.
fn encode_register(
    mode: ShardHostMode,
    index: usize,
    shards: usize,
    generation: u32,
) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(matches!(mode, ShardHostMode::MultiRound) as u64, 8);
    w.write_bits(index as u64, 32);
    w.write_bits(shards as u64, 32);
    w.write_bits(generation as u64, 32);
    Message::from_writer(w)
}

/// Inverse of [`encode_register`], validating the exact layout.
fn decode_register(msg: &Message) -> Result<(ShardHostMode, usize, usize, u32), DecodeError> {
    let mut r = msg.reader();
    let mode = match r.read_bits(8)? {
        0 => ShardHostMode::OneRound,
        1 => ShardHostMode::MultiRound,
        m => return Err(DecodeError::Invalid(format!("unknown shard-host mode {m}"))),
    };
    let index = r.read_bits(32)? as usize;
    let shards = r.read_bits(32)? as usize;
    let generation = r.read_bits(32)? as u32;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after registration".into()));
    }
    if shards == 0 || index >= shards || generation == 0 {
        return Err(DecodeError::OutOfRange(format!(
            "registration of shard {index}/{shards} generation {generation}"
        )));
    }
    Ok((mode, index, shards, generation))
}

/// Encode the [`Register`](FrameKind::Register) handshake frame a
/// coordinator opens a shard-host link with, MAC'd under the
/// [`registration_key`]. After sending it, switch the link to
/// [`link_key`]`(base, index, generation)`. Exposed for tests and
/// alternative coordinator implementations.
pub fn register_frame(
    base: &AuthKey,
    mode: ShardHostMode,
    index: usize,
    shards: usize,
    generation: u32,
) -> Vec<u8> {
    encode_wire_frame(
        &registration_key(base),
        FrameKind::Register,
        &Envelope {
            session: SessionId(0),
            round: generation,
            from: index as u32,
            to: 0,
            payload: encode_register(mode, index, shards, generation),
        },
    )
}

/// Whether a partial payload fits the wire codec's frame cap.
fn fits_frame(payload: &Message) -> bool {
    HEADER_BYTES + payload.len_bits().div_ceil(8) + TAG_BYTES <= MAX_BODY_BYTES
}

// ---------------------------------------------------------------------------
// RemotePlacement
// ---------------------------------------------------------------------------

/// A [`PlacementPolicy`] bound to live shard-host addresses.
///
/// Cloning shares the address book: keep a clone on the orchestration
/// side and [`update_host`](RemotePlacement::update_host) when a host
/// comes back on a different port — every proxy re-resolves the address
/// on its next redial.
#[derive(Debug, Clone)]
pub struct RemotePlacement {
    policy: PlacementPolicy,
    hosts: Arc<Mutex<BTreeMap<HostId, SocketAddr>>>,
}

impl RemotePlacement {
    /// Bind `policy` to addresses. Every host the policy uses must have
    /// one; extra addresses are allowed (spares for
    /// [`update_host`](RemotePlacement::update_host)-style migration).
    pub fn new(
        policy: PlacementPolicy,
        hosts: impl IntoIterator<Item = (HostId, SocketAddr)>,
    ) -> io::Result<RemotePlacement> {
        let book: BTreeMap<HostId, SocketAddr> = hosts.into_iter().collect();
        for h in policy.hosts() {
            if !book.contains_key(&h) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("placement uses host {h} but no address was provided for it"),
                ));
            }
        }
        Ok(RemotePlacement { policy, hosts: Arc::new(Mutex::new(book)) })
    }

    /// The shard → host assignment.
    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Total shards placed.
    pub fn shards(&self) -> usize {
        self.policy.shards()
    }

    /// The current address of `host`. Panics if the host is unknown
    /// (construction validates every policy host, and `update_host`
    /// cannot remove one).
    pub fn addr_of_host(&self, host: HostId) -> SocketAddr {
        *self.hosts.lock().unwrap_or_else(|p| p.into_inner()).get(&host).expect("known host")
    }

    /// The current address serving shard `index`.
    pub fn addr_of_shard(&self, index: usize) -> SocketAddr {
        self.addr_of_host(self.policy.host_of_shard(index))
    }

    /// Re-point `host` at `addr` (a restarted or migrated shard host).
    /// Proxies pick the new address up on their next redial. Returns
    /// `false` if the host was never in the book.
    pub fn update_host(&self, host: HostId, addr: SocketAddr) -> bool {
        let mut book = self.hosts.lock().unwrap_or_else(|p| p.into_inner());
        match book.get_mut(&host) {
            Some(slot) => {
                *slot = addr;
                true
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// ShardHost: the remote worker role
// ---------------------------------------------------------------------------

/// A shard-host process/thread: serves shard state for any number of
/// coordinator links, each registered by a MAC'd handshake.
///
/// Spawn one per machine (or per core), hand its address to a
/// [`RemotePlacement`], and point a
/// [`FleetServerBuilder::placement`](crate::fleet::FleetServerBuilder::placement)
/// at it. The host is stateless across restarts on purpose: everything
/// it holds is rebuilt by the coordinator's journal replay.
#[derive(Debug)]
pub struct ShardHost {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<WireMetrics>,
    thread: Option<JoinHandle<()>>,
}

impl ShardHost {
    /// Bind `addr` (e.g. `127.0.0.1:0` for tests, `0.0.0.0:port` for a
    /// real deployment) and serve until [`stop`](ShardHost::stop).
    pub fn spawn_at(addr: SocketAddr, key: AuthKey) -> io::Result<ShardHost> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(WireMetrics::default());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            thread::Builder::new()
                .name("wirenet-shard-host".into())
                .spawn(move || run_shard_host(listener, key, &shutdown, &metrics))?
        };
        Ok(ShardHost { addr, shutdown, metrics, thread: Some(thread) })
    }

    /// Spawn on loopback with an ephemeral port (tests, single-machine
    /// fleets).
    pub fn spawn(key: AuthKey) -> io::Result<ShardHost> {
        ShardHost::spawn_at("127.0.0.1:0".parse().expect("constant address parses"), key)
    }

    /// Spawn on the address named by [`SHARD_HOST_BIND_ENV`] (falling
    /// back to loopback-ephemeral) — the entry point for a dedicated
    /// shard-host role process.
    pub fn spawn_env(key: AuthKey) -> io::Result<ShardHost> {
        let addr = match std::env::var(SHARD_HOST_BIND_ENV) {
            Ok(s) => s.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{SHARD_HOST_BIND_ENV}={s} is not an ip:port address: {e}"),
                )
            })?,
            Err(_) => "127.0.0.1:0".parse().expect("constant address parses"),
        };
        ShardHost::spawn_at(addr, key)
    }

    /// The address coordinators register at.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live host-side wire metrics.
    pub fn metrics(&self) -> WireSnapshot {
        self.metrics.snapshot()
    }

    /// Shut down, join, and return final metrics.
    pub fn stop(mut self) -> WireSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.metrics.snapshot()
    }
}

impl Drop for ShardHost {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One registered coordinator link on a shard host.
struct HostLink {
    conn: Conn,
    role: Option<(ShardHostMode, usize, usize)>,
    /// Shard state keyed by (coordinator client-connection id, session).
    sessions: HashMap<(u32, u64), HostSession>,
    /// Flight-recorder watermark: events below this sequence were
    /// already shipped to the coordinator on a previous
    /// `Finish`/`Retire`, so each [`FrameKind::Trace`] segment is an
    /// increment, never a resend.
    shipped_seq: u64,
}

/// Per-session shard state on a host. `opened` is when the current
/// range wait began (the announce, or the previous multi-round emit) —
/// the zero point for the host's uplinks-complete stage histogram.
enum HostSession {
    /// One-round: `None` once the range partial shipped (later arrivals
    /// are by definition duplicates or strays — reported as poison
    /// notices so the session fails fast, exactly like the in-process
    /// worker).
    One { n: usize, epoch: u32, shard: Option<RefereeShard>, opened: Instant },
    /// Multi-round: the round currently collecting, advanced on emit.
    Multi { n: usize, epoch: u32, shard: RoundShard, cap: usize, opened: Instant },
}

/// The shard-host accept/pump loop.
fn run_shard_host(
    listener: TcpListener,
    key: AuthKey,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
) {
    let reg_key = registration_key(&key);
    let poller =
        crate::poll::Poller::new(crate::poll::default_backend(), crate::fleet::IDLE_SLEEP);
    poller.register(crate::poll::fd_of(&listener));
    let mut links: Vec<HostLink> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    while !shutdown.load(Ordering::Relaxed) {
        let mut progress = false;
        while let Ok((stream, _)) = listener.accept() {
            if let Ok(mut conn) = Conn::new(stream, reg_key) {
                metrics.connections(1);
                conn.meter_with(metrics.syscall_meter());
                poller.register(conn.fd());
                links.push(HostLink {
                    conn,
                    role: None,
                    sessions: HashMap::new(),
                    shipped_seq: 0,
                });
                progress = true;
            }
        }
        for link in &mut links {
            progress |= link.conn.flush() > 0;
            if link.conn.pending_write() > WRITE_BACKPRESSURE_BYTES {
                if !link.conn.stalled {
                    link.conn.stalled = true;
                    metrics.backpressure_stalls(1);
                }
                continue;
            }
            link.conn.stalled = false;
            let got = link.conn.fill(&mut scratch);
            metrics.bytes_received(got as u64);
            progress |= got > 0;
            loop {
                match link.conn.next_frame() {
                    Ok(None) => break,
                    Ok(Some((kind, env))) => {
                        metrics.frames_received(1);
                        if host_frame(link, kind, env, &key, metrics).is_err() {
                            metrics.decode_rejects(1);
                            link.conn.close();
                            break;
                        }
                        progress = true;
                    }
                    Err(WireError::BadMac) => {
                        // Wrong base key, a sibling shard's key, or a
                        // stale-generation frame: fail the link closed.
                        metrics.mac_rejects(1);
                        if let Some((_, index, _)) = link.role {
                            let ep = trace_endpoint::shard_host(index as u32);
                            metrics.trace(0, ep, TraceKind::MacReject, 0);
                        }
                        link.conn.close();
                        break;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        link.conn.close();
                        break;
                    }
                }
            }
        }
        // A dead coordinator link takes its shard state with it — the
        // coordinator's journal is the durable copy.
        links.retain(|l| l.conn.is_open());
        if !progress {
            poller.wait();
        }
    }
}

/// Handle one authenticated frame on a shard-host link. `Err(())`
/// poisons the link (protocol violation).
fn host_frame(
    link: &mut HostLink,
    kind: FrameKind,
    env: Envelope,
    base: &AuthKey,
    metrics: &WireMetrics,
) -> Result<(), ()> {
    let Some((mode, index, shards)) = link.role else {
        // The registration handshake must come first — and only once.
        let (mode, index, shards, generation) = match kind {
            FrameKind::Register => decode_register(&env.payload).map_err(|_| ())?,
            _ => return Err(()),
        };
        link.role = Some((mode, index, shards));
        link.conn.set_key(link_key(base, index, generation));
        let ep = trace_endpoint::shard_host(index as u32);
        link.conn.trace_with(metrics.recorder_arc(), ep);
        metrics.trace(0, ep, TraceKind::Dial, u64::from(generation));
        return Ok(());
    };
    let endpoint = trace_endpoint::shard_host(index as u32);
    match kind {
        FrameKind::Announce => {
            let (n, resume, cap) = decode_resume(&env.payload).map_err(|_| ())?;
            let conn = env.from;
            let session = env.session.0;
            let epoch = env.round;
            metrics.trace(session, endpoint, TraceKind::Announce, n as u64);
            let hs = match mode {
                ShardHostMode::OneRound => HostSession::One {
                    n,
                    epoch,
                    shard: Some(RefereeShard::new(n, shards, index)),
                    opened: Instant::now(),
                },
                ShardHostMode::MultiRound => {
                    if shard_range(n, shards, index).is_empty() {
                        // Empty ranges never receive data and never
                        // emit — their per-round partials are implied.
                        return Ok(());
                    }
                    HostSession::Multi {
                        n,
                        epoch,
                        shard: RoundShard::new(n, shards, index, resume),
                        cap: cap as usize,
                        opened: Instant::now(),
                    }
                }
            };
            // A re-announce of a live key only happens when the
            // coordinator re-registered (its journal replay is about to
            // rebuild the state): start fresh.
            link.sessions.insert((conn, session), hs);
            emit_ready(link, (conn, session), index, shards, metrics);
            Ok(())
        }
        FrameKind::Data => {
            let key = (env.to, env.session.0);
            let Some(hs) = link.sessions.get_mut(&key) else {
                metrics.orphan_frames(1); // finished or retired in flight
                return Ok(());
            };
            metrics.trace(env.session.0, endpoint, TraceKind::Uplink, u64::from(env.from));
            match hs {
                HostSession::One { n, epoch, shard, .. } => match shard.as_mut() {
                    Some(s) => match s.ingest(env.from, env.payload) {
                        Ok(Arrival::Fresh) | Ok(Arrival::OutOfRange) => {}
                        Ok(Arrival::Duplicate { .. }) => s.note_duplicate(env.from),
                        Err(_) => {
                            // Coordinator/host range disagreement — a
                            // bug, not wire data.
                            metrics.decode_rejects(1);
                            return Ok(());
                        }
                    },
                    None => {
                        // The range partial already shipped: this is a
                        // duplicate or stray — report it so the session
                        // fails fast instead of wedging a sibling.
                        metrics.trace(
                            env.session.0,
                            endpoint,
                            TraceKind::Poison,
                            u64::from(env.from),
                        );
                        let poison = PartialState::poison_notice(*n, env.from);
                        let round = (*epoch << 1) | 1;
                        queue_partial(
                            &mut link.conn,
                            env.session,
                            round,
                            index,
                            env.to,
                            &poison.encode(),
                            metrics,
                        );
                    }
                },
                HostSession::Multi { n, shard, .. } => mr_ingest(*n, shard, &env, metrics),
            }
            emit_ready(link, key, index, shards, metrics);
            Ok(())
        }
        FrameKind::Finish => {
            link.sessions.remove(&(env.from, env.session.0));
            ship_trace(link, index, metrics);
            Ok(())
        }
        FrameKind::Retire => {
            link.sessions.retain(|(conn, _), _| *conn != env.from);
            ship_trace(link, index, metrics);
            Ok(())
        }
        _ => Err(()),
    }
}

/// Ship the host's flight-recorder increment (everything recorded since
/// the last ship) back to the coordinator as one
/// [`Trace`](FrameKind::Trace) frame — called on `Finish`/`Retire`, the
/// natural session-teardown points, so the coordinator can stitch a
/// cross-process timeline without any extra round trips. Best-effort: a
/// segment too large for a frame is skipped (the events stay in the
/// ring for a later, smaller increment… or are eventually dropped-oldest
/// and surface in `trace_drops`).
fn ship_trace(link: &mut HostLink, index: usize, metrics: &WireMetrics) {
    let recorder = metrics.recorder();
    if !recorder.is_enabled() {
        return;
    }
    let mark = recorder.last_seq();
    let segment = recorder.snapshot_since(link.shipped_seq);
    if segment.is_empty() {
        return;
    }
    let payload = segment.encode();
    if !fits_frame(&payload) {
        return;
    }
    link.shipped_seq = mark;
    let env = Envelope { session: SessionId(0), round: 0, from: index as u32, to: 0, payload };
    metrics.frames_sent(1);
    // No eager flush: the host loop's per-link flush ships this
    // alongside whatever else the sweep queued, in one write.
    link.conn.queue_frame(FrameKind::Trace, &env);
}

/// Multi-round ingest, mirroring the in-process worker's round rules.
fn mr_ingest(n: usize, shard: &mut RoundShard, env: &Envelope, metrics: &WireMetrics) {
    if env.from == 0 || env.from as usize > n {
        // Out-of-range stray: poisons whatever round is collecting.
        let _ = shard.ingest(env.from, env.payload.clone());
    } else if env.round == shard.round() {
        match shard.ingest(env.from, env.payload.clone()) {
            Ok(Arrival::Fresh) | Ok(Arrival::OutOfRange) => {}
            Ok(Arrival::Duplicate { .. }) => shard.note_duplicate(env.from),
            Err(_) => metrics.decode_rejects(1),
        }
    } else if env.round < shard.round() {
        // Committed history — the referee consumed that round.
        metrics.orphan_frames(1);
    } else {
        // An uplink for a round whose downlinks were never issued:
        // poison the current round so the session fails fast.
        shard.note_duplicate(env.from);
    }
}

/// Emit whatever this session's shard state has ready: the one-round
/// range partial once complete/poisoned, or every consecutive complete
/// multi-round partial (advancing the round each time).
fn emit_ready(
    link: &mut HostLink,
    key: (u32, u64),
    index: usize,
    shards: usize,
    metrics: &WireMetrics,
) {
    let Some(hs) = link.sessions.get_mut(&key) else { return };
    let (conn, session) = key;
    match hs {
        HostSession::One { epoch, shard, opened, .. } => {
            let ready = shard.as_ref().is_some_and(|s| s.is_complete() || s.is_poisoned());
            if !ready {
                return;
            }
            metrics.record_stage(Stage::UplinksComplete, opened.elapsed());
            let partial = shard.take().expect("checked above").into_partial();
            let round = *epoch << 1;
            queue_partial(
                &mut link.conn,
                SessionId(session),
                round,
                index,
                conn,
                &partial.encode(),
                metrics,
            );
        }
        HostSession::Multi { n, epoch, shard, cap, opened } => loop {
            if shard.range().is_empty() || !(shard.is_complete() || shard.is_poisoned()) {
                return;
            }
            if shard.round() as usize > *cap {
                return; // past the cap: the referee judges server-side
            }
            metrics.record_stage(Stage::UplinksComplete, opened.elapsed());
            *opened = Instant::now();
            let next = RoundShard::new(*n, shards, index, shard.round() + 1);
            let partial = std::mem::replace(shard, next).into_partial();
            queue_partial(
                &mut link.conn,
                SessionId(session),
                *epoch,
                index,
                conn,
                &partial.encode(),
                metrics,
            );
        },
    }
}

/// Queue one `Partial` frame on a shard-host link (dropping payloads
/// beyond the frame cap — the session then starves and the client's
/// deadline rejects it, never a host panic).
fn queue_partial(
    conn: &mut Conn,
    session: SessionId,
    round: u32,
    index: usize,
    cconn: u32,
    payload: &Message,
    metrics: &WireMetrics,
) {
    if !fits_frame(payload) {
        metrics.decode_rejects(1);
        return;
    }
    let env =
        Envelope { session, round, from: index as u32, to: cconn, payload: payload.clone() };
    metrics.frames_sent(1);
    metrics.partial_frames(1);
    metrics.trace(
        session.0,
        trace_endpoint::shard_host(index as u32),
        TraceKind::PartialEmit,
        u64::from(round),
    );
    // No eager flush: the host loop's per-link flush batches partials
    // (a session's whole burst leaves in one write).
    conn.queue_frame(FrameKind::Partial, &env);
}

// ---------------------------------------------------------------------------
// Coordinator-side proxy
// ---------------------------------------------------------------------------

/// Router traffic as the proxy consumes it (adapters in
/// [`crate::shard`]/[`crate::multiround`] convert their channel enums).
pub(crate) enum ProxyEvent {
    /// A session opened on the coordinator.
    Announce {
        /// Coordinator client-connection id.
        conn: u32,
        /// Session id on that connection.
        session: u64,
        /// Network size.
        n: usize,
        /// The session's announce epoch (fences stale partials at the
        /// accumulator).
        epoch: u32,
    },
    /// A routed uplink for this shard's range.
    Data {
        /// Coordinator client-connection id.
        conn: u32,
        /// The authenticated envelope as received from the client.
        env: Envelope,
    },
    /// The session was judged — drop and tell the host.
    Finish {
        /// Coordinator client-connection id.
        conn: u32,
        /// Session id on that connection.
        session: u64,
    },
    /// A client connection died — drop all of its sessions.
    Retire {
        /// Coordinator client-connection id.
        conn: u32,
    },
}

/// Everything a proxy needs to serve one shard remotely.
pub(crate) struct ProxyConfig<'a> {
    pub mode: ShardHostMode,
    pub index: usize,
    pub shards: usize,
    pub base: &'a AuthKey,
    pub exchange_key: &'a AuthKey,
    pub placement: &'a RemotePlacement,
    pub metrics: &'a WireMetrics,
    /// How long to wait before redialling a dead shard-host link.
    pub backoff: Duration,
}

impl ProxyConfig<'_> {
    /// This proxy's trace endpoint id.
    fn endpoint(&self) -> u32 {
        trace_endpoint::proxy(self.index as u32)
    }
}

/// Coordinator-side journal entry for one session on this shard.
struct ProxySession {
    journal: ShardJournal,
    epoch: u32,
    cap: u32,
}

/// One shard's coordinator proxy: forwards router traffic to the shard
/// host, journals for replay, redials on disconnect, and pipes the
/// host's partials (re-MAC'd under the exchange key) to the
/// accumulator. Runs until its event channel disconnects.
pub(crate) fn run_proxy<M: Send>(
    cfg: ProxyConfig<'_>,
    rx: Receiver<M>,
    to_event: impl Fn(M) -> Option<ProxyEvent>,
    send_partial: impl Fn(Vec<u8>),
    round_cap: impl Fn(usize) -> usize,
) {
    let host = cfg.placement.policy().host_of_shard(cfg.index);
    let mut link: Option<Conn> = None;
    let mut generation: u32 = 0;
    let mut last_dial: Option<Instant> = None;
    let mut sessions: HashMap<(u32, u64), ProxySession> = HashMap::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    loop {
        // Drain the router's traffic (briefly blocking so an idle proxy
        // doesn't spin).
        match rx.recv_timeout(Duration::from_micros(200)) {
            Ok(m) => {
                let mut next = Some(m);
                loop {
                    if let Some(ev) = next.take().and_then(&to_event) {
                        proxy_event(
                            &cfg,
                            ev,
                            &mut sessions,
                            &mut link,
                            &round_cap,
                            &send_partial,
                        );
                    }
                    match rx.try_recv() {
                        Ok(m) => next = Some(m),
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        // Keep the link alive: dial, register, replay.
        if !link.as_ref().is_some_and(Conn::is_open) {
            let backoff_over = last_dial.is_none_or(|t| t.elapsed() >= cfg.backoff);
            if backoff_over {
                last_dial = Some(Instant::now());
                link = dial(&cfg, host, &mut generation, &sessions);
            }
        }
        // Pump the socket: flush queued frames, absorb partials.
        if let Some(conn) = link.as_mut() {
            pump_partials(&cfg, conn, &mut scratch, &mut sessions, &send_partial);
        }
    }
}

/// Dial the shard host, register generation `generation + 1`, and
/// replay every uncommitted session from the journal (round caps were
/// fixed at announce time; replay reuses the stored ones).
fn dial(
    cfg: &ProxyConfig<'_>,
    host: HostId,
    generation: &mut u32,
    sessions: &HashMap<(u32, u64), ProxySession>,
) -> Option<Conn> {
    let addr = cfg.placement.addr_of_host(host);
    let dialed = Instant::now();
    let stream = TcpStream::connect_timeout(&addr, DIAL_TIMEOUT).ok()?;
    let mut conn = Conn::new(stream, registration_key(cfg.base)).ok()?;
    conn.trace_with(cfg.metrics.recorder_arc(), cfg.endpoint());
    cfg.metrics.record_stage(Stage::ConnectHello, dialed.elapsed());
    *generation = generation.wrapping_add(1).max(1);
    let kind = if *generation == 1 { TraceKind::Dial } else { TraceKind::Redial };
    cfg.metrics.trace(0, cfg.endpoint(), kind, u64::from(*generation));
    conn.queue_frame(
        FrameKind::Register,
        &Envelope {
            session: SessionId(0),
            round: *generation,
            from: cfg.index as u32,
            to: 0,
            payload: encode_register(cfg.mode, cfg.index, cfg.shards, *generation),
        },
    );
    conn.set_key(link_key(cfg.base, cfg.index, *generation));
    cfg.metrics.shard_reconnects(1);
    for ((cconn, session), ps) in sessions {
        if matches!(cfg.mode, ShardHostMode::OneRound) && ps.journal.committed() {
            continue; // the range partial already merged; nothing to rebuild
        }
        conn.queue_frame(
            FrameKind::Announce,
            &Envelope {
                session: SessionId(*session),
                round: ps.epoch,
                from: *cconn,
                to: 0,
                payload: encode_resume(ps.journal.n(), ps.journal.resume_round(), ps.cap),
            },
        );
        for (round, sender, payload) in ps.journal.replay() {
            cfg.metrics.replayed_frames(1);
            cfg.metrics.trace(*session, cfg.endpoint(), TraceKind::Replay, u64::from(sender));
            conn.queue_frame(
                FrameKind::Data,
                &Envelope {
                    session: SessionId(*session),
                    round,
                    from: sender,
                    to: *cconn,
                    payload: payload.clone(),
                },
            );
        }
    }
    conn.flush();
    Some(conn)
}

/// Apply one router event: journal, forward, or synthesize.
fn proxy_event(
    cfg: &ProxyConfig<'_>,
    ev: ProxyEvent,
    sessions: &mut HashMap<(u32, u64), ProxySession>,
    link: &mut Option<Conn>,
    round_cap: &impl Fn(usize) -> usize,
    send_partial: &impl Fn(Vec<u8>),
) {
    match ev {
        ProxyEvent::Announce { conn, session, n, epoch } => {
            let cap = round_cap(n) as u32;
            cfg.metrics.trace(session, cfg.endpoint(), TraceKind::Announce, n as u64);
            sessions.insert(
                (conn, session),
                ProxySession { journal: ShardJournal::new(n), epoch, cap },
            );
            if let Some(c) = link.as_mut().filter(|c| c.is_open()) {
                c.queue_frame(
                    FrameKind::Announce,
                    &Envelope {
                        session: SessionId(session),
                        round: epoch,
                        from: conn,
                        to: 0,
                        payload: encode_resume(n, 1, cap),
                    },
                );
                c.flush();
            }
        }
        ProxyEvent::Data { conn, env } => {
            let Some(ps) = sessions.get_mut(&(conn, env.session.0)) else {
                cfg.metrics.orphan_frames(1); // judged or retired in flight
                return;
            };
            match cfg.mode {
                ShardHostMode::OneRound if ps.journal.committed() => {
                    // The range partial already merged, so this arrival
                    // is a duplicate or stray by definition. Synthesize
                    // the poison notice *here* — the shard host may not
                    // even hold the session any more (e.g. it restarted
                    // and committed sessions are not replayed), and the
                    // fail-fast verdict must not depend on host
                    // liveness.
                    let poison = PartialState::poison_notice(ps.journal.n(), env.from);
                    cfg.metrics.trace(
                        env.session.0,
                        cfg.endpoint(),
                        TraceKind::Poison,
                        u64::from(env.from),
                    );
                    let notice = Envelope {
                        session: env.session,
                        round: (ps.epoch << 1) | 1,
                        from: cfg.index as u32,
                        to: conn,
                        payload: poison.encode(),
                    };
                    send_partial(encode_wire_frame(
                        cfg.exchange_key,
                        FrameKind::Partial,
                        &notice,
                    ));
                }
                _ => match ps.journal.record(env.round, env.from, env.payload.clone()) {
                    Recorded::Stale => cfg.metrics.orphan_frames(1),
                    Recorded::Forward => {
                        if let Some(c) = link.as_mut().filter(|c| c.is_open()) {
                            c.queue_frame(FrameKind::Data, &Envelope { to: conn, ..env });
                            c.flush();
                        }
                        // Not yet on the wire? The journal has it — the
                        // next (re)dial replays it.
                    }
                },
            }
        }
        ProxyEvent::Finish { conn, session } => {
            sessions.remove(&(conn, session));
            if let Some(c) = link.as_mut().filter(|c| c.is_open()) {
                c.queue_frame(
                    FrameKind::Finish,
                    &Envelope {
                        session: SessionId(session),
                        round: 0,
                        from: conn,
                        to: 0,
                        payload: Message::empty(),
                    },
                );
                c.flush();
            }
        }
        ProxyEvent::Retire { conn } => {
            sessions.retain(|(owner, _), _| *owner != conn);
            if let Some(c) = link.as_mut().filter(|c| c.is_open()) {
                c.queue_frame(
                    FrameKind::Retire,
                    &Envelope {
                        session: SessionId(0),
                        round: 0,
                        from: conn,
                        to: 0,
                        payload: Message::empty(),
                    },
                );
                c.flush();
            }
        }
    }
}

/// Read the shard host's partials off the link, commit their rounds in
/// the journal, and forward them (re-MAC'd under the exchange key) to
/// the accumulator.
fn pump_partials(
    cfg: &ProxyConfig<'_>,
    conn: &mut Conn,
    scratch: &mut [u8],
    sessions: &mut HashMap<(u32, u64), ProxySession>,
    send_partial: &impl Fn(Vec<u8>),
) {
    conn.flush();
    let got = conn.fill(scratch);
    cfg.metrics.bytes_received(got as u64);
    loop {
        match conn.next_frame() {
            Ok(None) => return,
            Ok(Some((FrameKind::Partial, env))) => {
                if env.from as usize != cfg.index {
                    // A host answering for a shard it was not
                    // registered as — fail the link closed.
                    cfg.metrics.decode_rejects(1);
                    conn.close();
                    return;
                }
                let key = (env.to, env.session.0);
                let Some(ps) = sessions.get_mut(&key) else {
                    cfg.metrics.orphan_frames(1); // judged while in flight
                    continue;
                };
                match cfg.mode {
                    ShardHostMode::OneRound => {
                        if env.round >> 1 != ps.epoch {
                            cfg.metrics.orphan_frames(1); // stale announce run
                            continue;
                        }
                        if env.round & 1 == 0 {
                            ps.journal.commit(1);
                            cfg.metrics.partial_frames(1);
                        }
                    }
                    ShardHostMode::MultiRound => {
                        if env.round != ps.epoch {
                            cfg.metrics.orphan_frames(1);
                            continue;
                        }
                        // Commit the emitted round; a malformed payload
                        // is still forwarded — the accumulator's decode
                        // fails the session closed.
                        if let Ok(p) = RoundPartialState::decode(ps.journal.n(), &env.payload) {
                            ps.journal.commit(p.round());
                        }
                        cfg.metrics.partial_frames(1);
                    }
                }
                send_partial(encode_wire_frame(cfg.exchange_key, FrameKind::Partial, &env));
            }
            Ok(Some((FrameKind::Trace, env))) => {
                // A trace segment the host shipped on Finish/Retire:
                // stitch it into the coordinator's timeline. A host
                // answering for a shard it was not registered as, or a
                // malformed segment, fails the link closed like any
                // other protocol violation.
                if env.from as usize != cfg.index {
                    cfg.metrics.decode_rejects(1);
                    conn.close();
                    return;
                }
                match TraceSnapshot::decode(&env.payload) {
                    Ok(segment) => cfg.metrics.absorb_trace(&segment),
                    Err(_) => {
                        cfg.metrics.decode_rejects(1);
                        conn.close();
                        return;
                    }
                }
            }
            Ok(Some(_)) => {
                cfg.metrics.decode_rejects(1);
                conn.close();
                return;
            }
            Err(WireError::BadMac) => {
                // A stale-generation (pre-epoch) or cross-shard-keyed
                // frame: reject and drop the link — never merge it.
                cfg.metrics.mac_rejects(1);
                cfg.metrics.trace(0, cfg.endpoint(), TraceKind::MacReject, 0);
                conn.close();
                return;
            }
            Err(_) => {
                cfg.metrics.decode_rejects(1);
                conn.close();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redial_backoff_resolution_precedence() {
        // Env values (milliseconds) override; the historical 20 ms stays
        // the default. Env values are parameters here so no test ever
        // mutates the process environment.
        assert_eq!(resolve_redial_backoff(None), DEFAULT_REDIAL_BACKOFF);
        assert_eq!(resolve_redial_backoff(Some("5")), Duration::from_millis(5));
        assert_eq!(resolve_redial_backoff(Some(" 250 ")), Duration::from_millis(250));
        // Garbage or zero falls back to the default instead of spinning
        // the proxy dial loop hot on a typo'd environment.
        assert_eq!(resolve_redial_backoff(Some("0")), DEFAULT_REDIAL_BACKOFF);
        assert_eq!(resolve_redial_backoff(Some("fast")), DEFAULT_REDIAL_BACKOFF);
    }
}
