//! The **service catalog over the wire**: one `FleetServer` serving
//! several named multi-round services concurrently, clients selecting
//! per session via the MAC'd `Announce`. Verdicts must be bit-for-bit
//! equal to a direct in-process `run_multiround` of the same protocol —
//! including under deterministic wire tampering (zero undetected) — and
//! an unknown service name must fail closed with a typed error verdict,
//! never a hang or a silent drop.

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{generators, LabelledGraph};
use referee_protocol::combinators::{Chain, OneRoundAsMultiRound};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::{run_multiround, BoruvkaConnectivity};
use referee_protocol::{BitWriter, DecodeError, Message};
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{
    encode_bool_output, AuthKey, FleetClient, FleetServer, ServiceCatalog, TamperConfig,
    MAX_SERVICE_NAME_BYTES,
};

const CAP: usize = 64;

type CountThenConn = Chain<OneRoundAsMultiRound<EdgeCountProtocol>, BoruvkaConnectivity>;

fn count_then_conn() -> CountThenConn {
    Chain::new(OneRoundAsMultiRound(EdgeCountProtocol), BoruvkaConnectivity)
}

fn encode_count(out: &Result<usize, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    match out {
        Ok(v) => {
            w.push_bit(true);
            w.write_bits(*v as u64, 32);
        }
        Err(_) => w.push_bit(false),
    }
    Message::from_writer(w)
}

fn encode_pair(out: &(Result<usize, DecodeError>, Result<bool, DecodeError>)) -> Message {
    let mut w = BitWriter::new();
    encode_count(&out.0).append_to(&mut w);
    encode_bool_output(&out.1).append_to(&mut w);
    Message::from_writer(w)
}

fn test_catalog() -> ServiceCatalog {
    ServiceCatalog::new()
        .register("boruvka", BoruvkaConnectivity, encode_bool_output)
        .register("edge-count", OneRoundAsMultiRound(EdgeCountProtocol), encode_count)
        .register("count-then-connectivity", count_then_conn(), encode_pair)
}

fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(5 + i % 14, 0.25, &mut rng)).collect()
}

/// Direct in-process ground truth, encoded with the same codec the
/// catalog entry registered.
fn direct_verdict(service: &str, g: &LabelledGraph) -> Message {
    match service {
        "boruvka" => encode_bool_output(
            &run_multiround(&BoruvkaConnectivity, g, CAP).0.expect("verdict"),
        ),
        "edge-count" => encode_count(
            &run_multiround(&OneRoundAsMultiRound(EdgeCountProtocol), g, CAP)
                .0
                .expect("verdict"),
        ),
        "count-then-connectivity" => {
            encode_pair(&run_multiround(&count_then_conn(), g, CAP).0.expect("verdict"))
        }
        other => panic!("unknown service {other}"),
    }
}

const SERVICES: [&str; 3] = ["boruvka", "edge-count", "count-then-connectivity"];

/// One server, three services, sessions interleaved across services and
/// connections: every wire verdict equals the direct run bit for bit,
/// and the un-named client path selects entry 0.
#[test]
fn catalog_sessions_route_by_service_name() {
    let key = AuthKey::from_seed(91);
    let fleet = graphs(45, 911);
    let server =
        FleetServer::builder(key).shards(2).catalog(test_catalog()).spawn().expect("bind");
    let client = FleetClient::connect(server.addr(), 4, key).expect("connect");

    // Sessions interleave across services *and* connections: the
    // scheduler drives all three node halves concurrently, each session
    // announcing its service by name.
    let scheduler = Scheduler::new(4, 4);
    let verdicts: Vec<Message> = scheduler.run_indexed(fleet.len(), |i| {
        let session = SessionId(i as u64);
        let g = &fleet[i];
        match SERVICES[i % SERVICES.len()] {
            "boruvka" => client.run_multiround_session_as(
                session,
                "boruvka",
                &BoruvkaConnectivity,
                g,
                CAP,
            ),
            "edge-count" => client.run_multiround_session_as(
                session,
                "edge-count",
                &OneRoundAsMultiRound(EdgeCountProtocol),
                g,
                CAP,
            ),
            _ => client.run_multiround_session_as(
                session,
                "count-then-connectivity",
                &count_then_conn(),
                g,
                CAP,
            ),
        }
        .unwrap_or_else(|e| panic!("session {i}: {e:?}"))
    });
    for (i, g) in fleet.iter().enumerate() {
        let service = SERVICES[i % SERVICES.len()];
        let want = direct_verdict(service, g);
        assert_eq!(
            (verdicts[i].len_bits(), verdicts[i].as_bytes()),
            (want.len_bits(), want.as_bytes()),
            "session {i} ({service}): wire verdict diverged from direct run"
        );
    }

    // The legacy un-named path serves catalog entry 0.
    let g = &fleet[0];
    let wire = client
        .run_multiround_session(SessionId(5000), &BoruvkaConnectivity, g, CAP)
        .expect("honest session");
    let want = direct_verdict("boruvka", g);
    assert_eq!(wire.as_bytes(), want.as_bytes());

    let stats = server.stop();
    assert_eq!(stats.mac_rejects, 0);
    assert_eq!(stats.decode_rejects, 0);
}

/// Announcing a name the catalog does not know fails closed with a
/// typed error verdict — and the connection stays usable for
/// well-formed sessions afterwards.
#[test]
fn unknown_service_fails_closed_with_typed_error() {
    let key = AuthKey::from_seed(92);
    let g = generators::grid(3, 3);
    let server =
        FleetServer::builder(key).shards(1).catalog(test_catalog()).spawn().expect("bind");
    let client = FleetClient::connect(server.addr(), 1, key).expect("connect");

    // Only the 2-bit rejection class crosses the wire, so the client
    // sees a typed `Invalid` (the class of the router's unknown-service
    // verdict), not the server-side message text.
    let err = client
        .run_multiround_session_as(
            SessionId(1),
            "no-such-service",
            &BoruvkaConnectivity,
            &g,
            CAP,
        )
        .expect_err("unknown service must be rejected");
    assert!(matches!(err, DecodeError::Invalid(_)), "expected a typed Invalid, got {err:?}");

    // Same connection, valid service: still serves.
    let wire = client
        .run_multiround_session_as(SessionId(2), "boruvka", &BoruvkaConnectivity, &g, CAP)
        .expect("catalog still serves after a rejected announce");
    assert_eq!(wire.as_bytes(), direct_verdict("boruvka", &g).as_bytes());

    let stats = server.stop();
    assert!(stats.decode_rejects > 0, "the rejection must be counted");
    assert_eq!(stats.mac_rejects, 0);
}

/// Client-side name validation: empty and oversize names never reach
/// the wire.
#[test]
fn invalid_service_names_are_rejected_client_side() {
    let key = AuthKey::from_seed(93);
    let g = generators::grid(2, 2);
    let server = FleetServer::builder(key).catalog(test_catalog()).spawn().expect("bind");
    let client = FleetClient::connect(server.addr(), 1, key).expect("connect");
    let too_long = "x".repeat(MAX_SERVICE_NAME_BYTES + 1);
    for bad in ["", too_long.as_str()] {
        let err = client
            .run_multiround_session_as(SessionId(7), bad, &BoruvkaConnectivity, &g, CAP)
            .expect_err("invalid name must be rejected before announcing");
        assert!(matches!(err, DecodeError::Invalid(_)), "got {err:?}");
    }
    let stats = server.stop();
    assert_eq!(stats.decode_rejects, 0, "invalid names must not reach the server");
}

/// Deterministic wire corruption against every catalog service: each
/// session either fails closed or yields the exact honest verdict —
/// zero undetected corruptions.
#[test]
fn tampered_catalog_sessions_fail_closed() {
    let key = AuthKey::from_seed(94);
    let fleet = graphs(24, 944);
    let server =
        FleetServer::builder(key).shards(2).catalog(test_catalog()).spawn().expect("bind");
    let client = FleetClient::connect(server.addr(), 3, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });

    let mut undetected = 0usize;
    for (i, g) in fleet.iter().enumerate() {
        let service = SERVICES[i % SERVICES.len()];
        let result = match service {
            "boruvka" => client.run_multiround_session_as(
                SessionId(i as u64),
                service,
                &BoruvkaConnectivity,
                g,
                CAP,
            ),
            "edge-count" => client.run_multiround_session_as(
                SessionId(i as u64),
                service,
                &OneRoundAsMultiRound(EdgeCountProtocol),
                g,
                CAP,
            ),
            _ => client.run_multiround_session_as(
                SessionId(i as u64),
                service,
                &count_then_conn(),
                g,
                CAP,
            ),
        };
        if let Ok(wire) = result {
            // Only reachable when no tampered frame hit this session;
            // the verdict must then be exactly the honest one.
            if wire.as_bytes() != direct_verdict(service, g).as_bytes() {
                undetected += 1;
            }
        }
    }
    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "corruption never reached MAC verification");
    assert_eq!(undetected, 0, "a corrupted catalog session was accepted");
}
