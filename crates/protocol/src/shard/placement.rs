//! Shard placement: which host owns which shard of the referee's wait.
//!
//! Cross-host sharding needs one more level of the §IV partition
//! arithmetic: the balanced contiguous split assigns node IDs to
//! *shards* ([`shard_of`]/[`shard_range`]); a [`PlacementPolicy`]
//! assigns shards to *hosts*. The default is the same balanced
//! contiguous rule one level up — host `j` of `m` owns a contiguous
//! block of shard indices, computed by reusing [`shard_range`] over the
//! shard-index space — and a static map is available when a deployment
//! knows better (heterogeneous hosts, pinned ranges).
//!
//! The invariants callers rely on (pinned by property tests):
//!
//! 1. every node ID in `1..=n` maps to **exactly one** host
//!    (`shard_of` is total on `1..=n`, and every shard has a host);
//! 2. the shard ranges cover `1..=n` with no overlap (inherited from
//!    the partition arithmetic);
//! 3. [`remap`](PlacementPolicy::remap) after losing any set of hosts
//!    yields a policy whose surviving hosts still cover every shard —
//!    or `None` when nothing survived.

use super::{shard_of, shard_range};
use referee_graph::VertexId;
use std::collections::BTreeSet;

/// Identifies one shard host in a placement (what it maps to — an
/// address, a process, a rack — is the caller's business).
pub type HostId = u32;

/// An assignment of every shard index to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPolicy {
    /// `map[i]` is the host owning shard `i`; `map.len()` is the shard
    /// count.
    map: Vec<HostId>,
}

impl PlacementPolicy {
    /// The balanced-contiguous default: host `j` of `hosts.len()` owns
    /// the contiguous block of shard indices [`shard_range`] assigns it
    /// (the same arithmetic that splits node IDs into shards, one level
    /// up). With more hosts than shards the trailing hosts own nothing.
    ///
    /// Panics if `shards == 0` or `hosts` is empty.
    pub fn balanced(shards: usize, hosts: &[HostId]) -> PlacementPolicy {
        assert!(shards >= 1, "a placement needs at least one shard");
        assert!(!hosts.is_empty(), "a placement needs at least one host");
        let map = (0..shards)
            .map(|i| hosts[shard_of(shards, hosts.len().min(shards), (i + 1) as VertexId)])
            .collect();
        PlacementPolicy { map }
    }

    /// A static map: `map[i]` names the host owning shard `i`.
    ///
    /// Panics if `map` is empty (a placement needs at least one shard).
    pub fn from_map(map: Vec<HostId>) -> PlacementPolicy {
        assert!(!map.is_empty(), "a placement needs at least one shard");
        PlacementPolicy { map }
    }

    /// Total shards placed.
    pub fn shards(&self) -> usize {
        self.map.len()
    }

    /// The host owning shard `index`.
    ///
    /// Panics if `index` is out of `0..shards`.
    pub fn host_of_shard(&self, index: usize) -> HostId {
        self.map[index]
    }

    /// The host owning node `v` of a size-`n` network: the owner of
    /// [`shard_of(n, shards, v)`](shard_of). Panics like `shard_of` if
    /// `v` is not in `1..=n`.
    pub fn host_of(&self, n: usize, v: VertexId) -> HostId {
        self.host_of_shard(shard_of(n, self.shards(), v))
    }

    /// The distinct hosts this placement uses, in shard order.
    pub fn hosts(&self) -> Vec<HostId> {
        let mut seen = BTreeSet::new();
        self.map.iter().copied().filter(|h| seen.insert(*h)).collect()
    }

    /// The `(shard index, node range)` assignment of every host-owned
    /// shard for a size-`n` network, in shard order.
    pub fn assignments(&self, n: usize) -> Vec<(usize, super::ShardRange, HostId)> {
        (0..self.shards()).map(|i| (i, shard_range(n, self.shards(), i), self.map[i])).collect()
    }

    /// The placement after losing every host in `lost`: shards owned by
    /// a lost host are redistributed round-robin over the survivors (in
    /// first-appearance order), so coverage is preserved — every shard
    /// still has exactly one (surviving) owner. Returns `None` when no
    /// host survives.
    pub fn remap(&self, lost: &BTreeSet<HostId>) -> Option<PlacementPolicy> {
        let survivors: Vec<HostId> =
            self.hosts().into_iter().filter(|h| !lost.contains(h)).collect();
        if survivors.is_empty() {
            return None;
        }
        let map = self
            .map
            .iter()
            .enumerate()
            .map(|(i, h)| if lost.contains(h) { survivors[i % survivors.len()] } else { *h })
            .collect();
        Some(PlacementPolicy { map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_blocks_are_contiguous_and_cover() {
        let p = PlacementPolicy::balanced(8, &[10, 20, 30]);
        assert_eq!(p.shards(), 8);
        // Contiguous blocks in host order, every shard owned.
        let owners: Vec<HostId> = (0..8).map(|i| p.host_of_shard(i)).collect();
        let mut blocks = owners.clone();
        blocks.dedup();
        assert_eq!(blocks, vec![10, 20, 30], "one contiguous block per host: {owners:?}");
    }

    #[test]
    fn more_hosts_than_shards_uses_a_prefix() {
        let p = PlacementPolicy::balanced(2, &[1, 2, 3, 4, 5]);
        assert_eq!(p.hosts().len(), 2);
    }

    #[test]
    fn every_node_maps_to_its_shard_owner() {
        let p = PlacementPolicy::balanced(4, &[7, 9]);
        for n in [1usize, 5, 16, 97] {
            for v in 1..=n as VertexId {
                assert_eq!(p.host_of(n, v), p.host_of_shard(shard_of(n, 4, v)));
            }
        }
    }

    #[test]
    fn remap_redistributes_lost_shards() {
        let p = PlacementPolicy::from_map(vec![1, 1, 2, 2, 3, 3]);
        let lost = BTreeSet::from([2]);
        let q = p.remap(&lost).expect("survivors exist");
        assert_eq!(q.shards(), p.shards());
        for i in 0..q.shards() {
            assert!(!lost.contains(&q.host_of_shard(i)), "shard {i} still on a lost host");
        }
        // Untouched shards keep their owner.
        assert_eq!(q.host_of_shard(0), 1);
        assert_eq!(q.host_of_shard(4), 3);
    }

    #[test]
    fn remap_with_no_survivors_is_none() {
        let p = PlacementPolicy::from_map(vec![1, 2]);
        assert!(p.remap(&BTreeSet::from([1, 2])).is_none());
        assert_eq!(p.remap(&BTreeSet::new()).unwrap(), p);
    }
}
