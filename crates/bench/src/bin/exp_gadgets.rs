//! E1–E3: regenerate the gadget validations of Figures 1–2 and Theorem 1.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_gadgets`

use referee_bench::experiments::gadget_validation as gv;
use referee_bench::{render_table, section};

fn main() {
    println!("# E1–E3: gadget iff-properties (Theorems 1–3, Figures 1–2)");
    println!("# expectation: violations = 0 everywhere (proved equivalences)");

    section("E1 — diameter gadget (Figure 1): diam(G'_{{s,t}}) ≤ 3 ⟺ {{s,t}} ∈ E");
    let mut rows = gv::validate_diameter(5, 60, 10);
    section("E2 — triangle gadget (Figure 2): K3 in G'_{{s,t}} ⟺ {{s,t}} ∈ E");
    rows.extend(gv::validate_triangle(6, 60, 10));
    section("E3 — square gadget (Thm 1): C4 in G'_{{s,t}} ⟺ {{s,t}} ∈ E");
    rows.extend(gv::validate_square(5, 40, 10));

    println!("{}", render_table(&gv::to_table(&rows)));
    let bad: u64 = rows.iter().map(|r| r.violations).sum();
    println!(
        "total violations: {bad} {}",
        if bad == 0 { "✓" } else { "✗ REPRODUCTION BROKEN" }
    );
    std::process::exit(if bad == 0 { 0 } else { 1 });
}
