//! E4 (runtime side): the Δ-from-Γ reductions end-to-end. Each probe of
//! Δ's global function invokes Γ on a gadget-sized message vector, so the
//! wall time is Θ(n² · cost(Γ)) — quartic with the adjacency oracle.
//! Sizes are therefore small; the point is the scaling shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::generators;
use referee_protocol::run_protocol;
use referee_reductions::oracle::{DiameterOracle, SquareOracle, TriangleOracle};
use referee_reductions::{DiameterReduction, SquareReduction, TriangleReduction};

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/end_to_end");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let mut rng = StdRng::seed_from_u64(30);
        let sq_free = generators::random_square_free(n, &mut rng);
        let arbitrary = generators::gnp(n, 0.5, &mut rng);
        let bip = generators::random_balanced_bipartite(n, 0.4, &mut rng);

        group.bench_with_input(BenchmarkId::new("square", n), &sq_free, |b, g| {
            let delta = SquareReduction::new(SquareOracle);
            b.iter(|| run_protocol(&delta, g).output)
        });
        group.bench_with_input(BenchmarkId::new("diameter", n), &arbitrary, |b, g| {
            let delta = DiameterReduction::new(DiameterOracle);
            b.iter(|| run_protocol(&delta, g).output.unwrap())
        });
        group.bench_with_input(BenchmarkId::new("triangle", n), &bip, |b, g| {
            let delta = TriangleReduction::new(TriangleOracle);
            b.iter(|| run_protocol(&delta, g).output.unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
