//! Per-session and aggregate measurements.
//!
//! [`SessionMetrics`] embeds the legacy [`RunStats`] (so everything built
//! on the synchronous simulator keeps working) and adds what a *runtime*
//! can see and a *simulator* cannot: transport-level delivery counters and
//! per-round latencies. [`AggregateMetrics`] folds thousands of sessions
//! into one report for the scheduler.

use referee_protocol::{HistSnapshot, RunStats};

/// Delivery accounting for one transport (or a merged fleet of them).
///
/// `sent` counts caller-submitted envelopes only; fault-injected copies
/// count under `duplicated` (and are never themselves lost), so the
/// bookkeeping identity once a transport drains is
/// `delivered == sent - dropped + duplicated` — under duplication,
/// `delivered` legitimately exceeds `sent`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Envelopes handed to `send` by the caller (excludes injected
    /// duplicate copies).
    pub sent: u64,
    /// Envelopes handed back out of `recv` (includes injected duplicate
    /// copies).
    pub delivered: u64,
    /// Envelopes destroyed by fault injection.
    pub dropped: u64,
    /// Extra copies created by fault injection.
    pub duplicated: u64,
    /// Envelopes whose payload had at least one bit flipped.
    pub corrupted: u64,
    /// Envelopes released out of FIFO order.
    pub reordered: u64,
    /// Envelopes a session discarded as duplicates of already-processed
    /// traffic (at-least-once delivery made idempotent).
    pub stale: u64,
}

impl TransportCounters {
    /// Fold `other` into `self` (fleet aggregation).
    pub fn merge(&mut self, other: &TransportCounters) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
        self.reordered += other.reordered;
        self.stale += other.stale;
    }
}

/// Everything measured about one session.
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    /// Legacy-compatible stats: `n`, max/total message bits (as *sent* by
    /// nodes — what the frugality definition bounds, independent of what
    /// the transport later did to them), and phase wall times.
    pub stats: RunStats,
    /// Rounds executed (1 for one-round protocols).
    pub rounds: usize,
    /// Wall time of each round, seconds.
    pub round_seconds: Vec<f64>,
    /// Transport counters observed by this session's transport.
    pub transport: TransportCounters,
}

impl SessionMetrics {
    pub(crate) fn new(n: usize) -> Self {
        SessionMetrics {
            stats: RunStats {
                n,
                max_message_bits: 0,
                total_message_bits: 0,
                local_seconds: 0.0,
                global_seconds: 0.0,
            },
            rounds: 0,
            round_seconds: Vec::new(),
            transport: TransportCounters::default(),
        }
    }
}

/// A fleet-level rollup of many [`SessionMetrics`].
#[derive(Debug, Clone, Default)]
pub struct AggregateMetrics {
    /// Sessions observed.
    pub sessions: usize,
    /// Sessions whose outcome was usable. By default this is the
    /// *session-level* verdict (delivery completed); decoder-level
    /// rejections carried inside a protocol's own `Result` output are
    /// invisible to the generic runtime — fold them in with
    /// `SweepReport::reclassify_ok` when the concrete type is known.
    pub ok: usize,
    /// Sessions that ended in a detected failure (by default
    /// session-level: loss, conflicting duplicates, misaddressing — the
    /// runtime's misbehaviour evidence).
    pub rejected: usize,
    /// Σ total_message_bits over sessions.
    pub total_message_bits: u128,
    /// max over sessions of max_message_bits.
    pub max_message_bits: usize,
    /// Worst empirical frugality ratio seen.
    pub max_frugality_ratio: f64,
    /// Σ rounds.
    pub total_rounds: u64,
    /// Merged transport counters.
    pub transport: TransportCounters,
    /// Wall time of the whole sweep (set by the scheduler).
    pub wall_seconds: f64,
    /// Per-session wall-time latency (Σ `round_seconds`, recorded in
    /// microseconds). Clock-stamped by the session runtime, so under a
    /// [`ManualClock`](crate::ManualClock) the percentiles are exact
    /// and deterministic.
    pub latency: HistSnapshot,
}

impl AggregateMetrics {
    /// Fold one finished session in. `ok` is whether its outcome was
    /// usable (no decode error).
    pub fn absorb(&mut self, m: &SessionMetrics, ok: bool) {
        self.sessions += 1;
        if ok {
            self.ok += 1;
        } else {
            self.rejected += 1;
        }
        self.total_message_bits += m.stats.total_message_bits as u128;
        self.max_message_bits = self.max_message_bits.max(m.stats.max_message_bits);
        let ratio = m.stats.frugality_ratio();
        if ratio.is_finite() && ratio > self.max_frugality_ratio {
            self.max_frugality_ratio = ratio;
        }
        self.total_rounds += m.rounds as u64;
        self.transport.merge(&m.transport);
        let seconds: f64 = m.round_seconds.iter().sum();
        self.latency.record_us((seconds * 1e6).max(0.0) as u64);
    }

    /// Merge another aggregate (e.g. per-worker partials).
    pub fn merge(&mut self, other: &AggregateMetrics) {
        self.sessions += other.sessions;
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.total_message_bits += other.total_message_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.max_frugality_ratio = self.max_frugality_ratio.max(other.max_frugality_ratio);
        self.total_rounds += other.total_rounds;
        self.transport.merge(&other.transport);
        self.latency.merge(&other.latency);
    }

    /// Mean rounds per session.
    pub fn mean_rounds(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.total_rounds as f64 / self.sessions as f64
        }
    }

    /// Sessions per second over the sweep wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sessions as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_merge() {
        let mut m = SessionMetrics::new(16);
        m.stats.max_message_bits = 40;
        m.stats.total_message_bits = 600;
        m.rounds = 3;
        m.transport.sent = 10;
        m.transport.dropped = 2;

        let mut a = AggregateMetrics::default();
        a.absorb(&m, true);
        a.absorb(&m, false);
        assert_eq!(a.sessions, 2);
        assert_eq!(a.ok, 1);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.total_message_bits, 1200);
        assert_eq!(a.max_message_bits, 40);
        assert_eq!(a.total_rounds, 6);
        assert_eq!(a.transport.dropped, 4);
        assert!((a.max_frugality_ratio - 10.0).abs() < 1e-9); // 40 / log2(16)

        let mut b = AggregateMetrics::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.sessions, 4);
        assert_eq!(b.mean_rounds(), 3.0);
    }

    #[test]
    fn absorb_records_session_latency() {
        // 1023 µs + 1 µs of round time → one sample in the 1023-bound
        // bucket; merge folds distributions bucket-wise.
        let mut m = SessionMetrics::new(4);
        m.round_seconds = vec![0.001023, 0.000001];
        let mut a = AggregateMetrics::default();
        a.absorb(&m, true);
        assert_eq!(a.latency.count(), 1);
        assert_eq!(a.latency.p50(), 2047);

        let mut b = AggregateMetrics::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.latency.count(), 2);
        assert_eq!(b.latency.p99(), 2047);
    }
}
