//! E27 (systems side): wirenet loopback throughput — the same session
//! fleet driven in-memory and over real TCP with 1/2/4/8 multiplexed
//! connections, plus the cost accounting of the wire (frames, bytes,
//! MAC rejects, backpressure stalls).
//!
//! Run: `cargo run --release -p referee-bench --bin exp_wirenet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{render_table, section, write_bench_json_axis, BenchRecord, Percentiles};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_simnet::{AggregateMetrics, OneRoundSession, Scheduler, SessionId};
use referee_wirenet::{AuthKey, FleetClient, FleetServer, TamperConfig};
use std::time::Instant;

fn fleet(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(12 + i % 20, 0.2, &mut rng)).collect()
}

fn main() {
    println!("# E27: wirenet — simnet fleets over real loopback sockets");
    println!("# expectation: outcomes identical to in-memory runs; throughput within an");
    println!("# order of magnitude of in-memory despite every envelope crossing TCP twice.");

    let sessions = 1000usize;
    let graphs = fleet(sessions, 2027);
    let truth: Vec<usize> = graphs.iter().map(|g| g.m()).collect();
    let scheduler = Scheduler::new(8, 8);
    let key = AuthKey::from_seed(9);
    let mut records: Vec<BenchRecord> = Vec::new();

    section(&format!("{sessions} EdgeCount sessions, scheduler 8×8"));
    let mut rows =
        vec![["backend", "conns", "sess/s", "frames", "wire KiB", "mac-rej", "stalls"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()];

    // In-memory baseline.
    let t0 = Instant::now();
    let sweep = scheduler.sweep_one_round(&EdgeCountProtocol, &graphs, None);
    let wall = t0.elapsed().as_secs_f64();
    for (report, &m) in sweep.reports.iter().zip(&truth) {
        assert_eq!(*report.outcome.as_ref().unwrap().as_ref().unwrap(), m);
    }
    records.push(
        BenchRecord::new("in-memory", 0, sessions as f64 / wall)
            .with_percentiles(Percentiles::from_hist(&sweep.aggregate.latency)),
    );
    rows.push(vec![
        "in-memory".into(),
        "-".into(),
        format!("{:.0}", sessions as f64 / wall),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // Wirenet with growing connection pools.
    for conns in [1usize, 2, 4, 8] {
        let server = FleetServer::spawn(key).expect("bind");
        let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
        let t0 = Instant::now();
        let reports: Vec<_> = scheduler.run_indexed(sessions, |i| {
            let id = SessionId(i as u64);
            let mut transport = client.transport(id);
            OneRoundSession::new(&EdgeCountProtocol, &graphs[i])
                .with_session(id)
                .run(&mut transport)
        });
        let wall = t0.elapsed().as_secs_f64();
        let mut agg = AggregateMetrics::default();
        for (report, &m) in reports.iter().zip(&truth) {
            assert_eq!(*report.outcome.as_ref().unwrap().as_ref().unwrap(), m);
            agg.absorb(&report.metrics, report.outcome.is_ok());
        }
        let c = client.metrics();
        let s = server.stop();
        assert_eq!(s.mac_rejects, 0);
        assert_eq!(c.frames_received, c.frames_sent, "every frame echoed");
        records.push(
            BenchRecord::new("wirenet", conns, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(&agg.latency)),
        );
        rows.push(vec![
            "wirenet".into(),
            conns.to_string(),
            format!("{:.0}", sessions as f64 / wall),
            c.frames_sent.to_string(),
            format!("{:.0}", (c.bytes_sent + c.bytes_received) as f64 / 1024.0),
            s.mac_rejects.to_string(),
            c.backpressure_stalls.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));

    section("corruption sweep: every 2nd frame tampered, 32 sessions / 32 conns");
    let server = FleetServer::spawn(key).expect("bind");
    let client = FleetClient::connect(server.addr(), 32, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 2 });
    let mut rejected = 0usize;
    for (i, g) in graphs.iter().take(32).enumerate() {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        let report =
            OneRoundSession::new(&EdgeCountProtocol, g).with_session(id).run(&mut transport);
        match report.outcome {
            Err(_) => rejected += 1,
            Ok(out) => assert_eq!(*out.as_ref().unwrap(), g.m(), "computed on garbage"),
        }
    }
    let c = client.metrics();
    let s = server.stop();
    println!(
        "tampered {} | server mac-rejects {} | sessions failed closed {rejected}/32 | \
         accepted frames all authentic ✓",
        c.tampered, s.mac_rejects
    );
    assert!(s.mac_rejects > 0);
    assert_eq!(s.frames_received, s.frames_sent);

    // The sweep axis here is the connection-pool size, not a shard
    // count — the JSON names it accordingly ("in-memory" carries 0).
    let json =
        write_bench_json_axis("exp_wirenet", "conns", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("wirenet experiments completed ✓");
}
