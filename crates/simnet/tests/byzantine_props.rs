//! The accountability harness: seeds × byzantine masks × k=1..=8
//! shards, asserting the three evidence properties.
//!
//! * **Completeness** — every byzantine-caused session failure that
//!   involved a provable injection yields at least one bundle that
//!   `verify_bundle` accepts and that attributes a byzantine node.
//!   (Pure withholding is the documented exception: absence leaves no
//!   record, so those failures yield no bundle — and accuse nobody.)
//! * **No-framing soundness** — across every seed, mask and shard
//!   count, no bundle ever attributes an honest node: every emitted
//!   bundle verifies, and every `Some` culprit is in the byzantine
//!   mask.
//! * **Forgery rejection** — bit-flipped, tag-tampered, re-accused,
//!   re-labelled and spliced variants of valid bundles always fail
//!   `verify_bundle`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use referee_graph::generators;
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::evidence::{verify_bundle, EvidenceBundle, ProvableError};
use referee_simnet::{ByzantineConfig, Scheduler};

fn graphs(seed: u64, lanes: usize) -> Vec<referee_graph::LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..lanes)
        .map(|_| {
            let n = rng.gen_range(4..=16);
            generators::gnp(n, 0.3, &mut rng)
        })
        .collect()
}

/// Exhaustive forgery sweep over one valid bundle: every mutation must
/// fail verification.
fn assert_forgeries_fail(
    base: &referee_protocol::MacKey,
    params: &referee_protocol::evidence::SessionParams,
    bundle: &EvidenceBundle,
    honest: &[u32],
) {
    // Flip every bit of every record body.
    for (ri, rec) in bundle.records.iter().enumerate() {
        for byte in 0..rec.body.len() {
            let mut forged = bundle.clone();
            forged.records[ri].body[byte] ^= 1;
            assert!(
                verify_bundle(base, params, &forged).is_err(),
                "byte-flipped record {ri} byte {byte} verified"
            );
        }
        // Tamper the tag.
        let mut forged = bundle.clone();
        forged.records[ri].tag ^= 0x8000_0001;
        assert!(verify_bundle(base, params, &forged).is_err());
        // Graft the record onto a different principal's path.
        let mut forged = bundle.clone();
        if let Some(last) = forged.records[ri].path.last_mut() {
            *last ^= 1;
        }
        assert!(verify_bundle(base, params, &forged).is_err());
    }
    // Re-point the accusation at every honest node.
    for &h in honest {
        let mut forged = bundle.clone();
        forged.accused = Some(h);
        assert!(
            verify_bundle(base, params, &forged).is_err(),
            "re-accusing honest node {h} verified"
        );
    }
    // Re-label the claimed error (keeping the accusation shape legal).
    for e in ProvableError::ALL {
        if e == bundle.error {
            continue;
        }
        let mut forged = bundle.clone();
        forged.error = e;
        if !e.attributable() {
            forged.accused = None;
        } else if forged.accused.is_none() {
            forged.accused = bundle.records[0].path.last().map(|&p| p as u32);
        }
        assert!(
            verify_bundle(base, params, &forged).is_err(),
            "re-labelling {:?} as {:?} verified",
            bundle.error,
            e
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline sweep: per (seed, shard count) run a fleet of lanes
    /// with seeded byzantine masks and check completeness + no-framing
    /// + codec round-trip on every lane, plus a forgery sweep on a
    /// sample of valid bundles.
    #[test]
    fn byzantine_sweep_is_complete_and_never_frames(
        seed in any::<u64>(),
        k in 1usize..=8,
        byz10 in 0u32..=6,
    ) {
        let gs = graphs(seed, 24);
        let cfg = ByzantineConfig {
            byzantine: byz10 as f64 / 10.0,
            seed,
            ..ByzantineConfig::full(seed)
        };
        let sweep = Scheduler::new(2, 8).sweep_byzantine(&EdgeCountProtocol, &gs, k, cfg);
        prop_assert_eq!(sweep.reports.len(), gs.len());

        for (lane, report) in sweep.reports.iter().enumerate() {
            let mask = &report.mask;

            // No byzantine nodes and no injections: the run must
            // succeed and the prosecutor must stay silent.
            if report.injections.total() == 0 {
                prop_assert!(
                    report.outcome.is_ok(),
                    "lane {lane}: clean run failed: {:?}",
                    report.outcome
                );
                prop_assert!(
                    report.bundles.is_empty(),
                    "lane {lane}: bundles without injections: {:?}",
                    report.bundles
                );
            }

            let mut attributed_byzantine = false;
            for bundle in &report.bundles {
                // No-framing, part 1: every emitted bundle verifies.
                let att = verify_bundle(&report.base, &report.params, bundle)
                    .expect("emitted bundle must verify");
                // No-framing, part 2: a culprit is always byzantine.
                if let Some(c) = att.culprit {
                    prop_assert!(
                        mask.contains(&c),
                        "lane {lane}: bundle attributes honest node {c} (mask {mask:?})"
                    );
                    attributed_byzantine = true;
                }
                // Self-containment: the bundle survives its canonical
                // byte form and re-verifies after decode.
                let rt = EvidenceBundle::from_bytes(&bundle.to_bytes()).unwrap();
                prop_assert_eq!(&rt, bundle);
                verify_bundle(&report.base, &report.params, &rt).unwrap();
            }

            // Completeness: a failed session with at least one provable
            // injection must attribute a byzantine node.
            if report.outcome.is_err() && report.injections.provable() > 0 {
                prop_assert!(
                    attributed_byzantine,
                    "lane {lane}: failure with {} provable injections produced no \
                     attributable bundle ({} bundles)",
                    report.injections.provable(),
                    report.bundles.len()
                );
            }
        }

        // Forgery sweep on the first few valid bundles of the fleet.
        let mut forged = 0;
        for report in &sweep.reports {
            for bundle in &report.bundles {
                if forged >= 3 {
                    break;
                }
                let honest: Vec<u32> = (1..=report.params.n)
                    .filter(|v| !report.mask.contains(v))
                    .collect();
                assert_forgeries_fail(&report.base, &report.params, bundle, &honest);
                forged += 1;
            }
        }
    }

    /// Provable-only configuration (the one CI gates on): every
    /// byzantine-caused failure must be attributed — no exceptions.
    #[test]
    fn provable_only_failures_are_always_attributed(
        seed in any::<u64>(),
        k in 1usize..=8,
    ) {
        let gs = graphs(seed ^ 0x70726f76, 16);
        let cfg = ByzantineConfig {
            byzantine: 0.35,
            seed,
            ..ByzantineConfig::provable(seed)
        };
        let sweep = Scheduler::new(2, 8).sweep_byzantine(&EdgeCountProtocol, &gs, k, cfg);
        // The harness must not be vacuous: at a 35% byzantine rate over
        // 16 lanes some injections (and thus bundles) must exist.
        let total: u64 = sweep.reports.iter().map(|r| r.injections.total()).sum();
        prop_assert!(total > 0, "no injections across the whole sweep");
        prop_assert!(
            sweep.reports.iter().any(|r| !r.bundles.is_empty()),
            "no evidence across the whole sweep"
        );
        for (lane, report) in sweep.reports.iter().enumerate() {
            prop_assert_eq!(
                report.injections.total(),
                report.injections.provable(),
                "provable config must not withhold or duplicate"
            );
            if report.outcome.is_err() {
                // Under a perfect inner transport the only failure
                // cause is byzantine behavior, and with provable-only
                // actions there is always an attributable bundle.
                let attributed = report.bundles.iter().any(|b| {
                    verify_bundle(&report.base, &report.params, b)
                        .ok()
                        .and_then(|a| a.culprit)
                        .is_some_and(|c| report.mask.contains(&c))
                });
                prop_assert!(
                    attributed,
                    "lane {lane}: unattributed byzantine failure \
                     (injections {:?}, mask {:?})",
                    report.injections,
                    report.mask
                );
            }
        }
    }
}
