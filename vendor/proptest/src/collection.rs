//! Collection strategies: shim for `proptest::collection`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::RngCore;
use std::ops::{Range, RangeInclusive};

/// Length distribution for [`vec()`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
