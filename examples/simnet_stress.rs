//! A 1000-session concurrent sweep on the simnet runtime.
//!
//! One process plays an entire fleet: a thousand independent referee
//! protocol runs, each with its own transport, scheduled over all cores
//! with claim-based batching. Run twice — once on a perfect network,
//! once on a hostile one — and compare the fleet rollups.
//!
//! Run: `cargo run --release --example simnet_stress`

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;
use referee_one_round::simnet;

fn main() {
    let sessions = 1000usize;
    let mut rng = StdRng::seed_from_u64(2011);
    let graphs: Vec<LabelledGraph> = (0..sessions)
        .map(|i| generators::random_k_degenerate(24 + i % 40, 2, 1.0, &mut rng))
        .collect();
    let protocol = DegeneracyProtocol::new(2);
    let scheduler = Scheduler::default();
    println!(
        "driving {sessions} DegeneracyProtocol sessions on {} workers (batch {})",
        scheduler.workers, scheduler.batch
    );

    // Perfect network: every session must reconstruct its graph exactly.
    let sweep = scheduler.sweep_one_round(&protocol, &graphs, None);
    let exact = sweep
        .reports
        .iter()
        .zip(&graphs)
        .filter(|(r, g)| matches!(&r.outcome, Ok(Ok(Reconstruction::Graph(h))) if h == *g))
        .count();
    let a = &sweep.aggregate;
    println!("\nperfect network:");
    println!(
        "  sessions {}  ok {}  rejected {}  exact reconstructions {exact}",
        a.sessions, a.ok, a.rejected
    );
    println!(
        "  total bits shipped {}  worst message {} bits  worst frugality ratio {:.2}",
        a.total_message_bits, a.max_message_bits, a.max_frugality_ratio
    );
    println!("  wall {:.3}s  ≈ {:.0} sessions/s", a.wall_seconds, a.throughput());
    assert_eq!(exact, sessions);

    // Hostile network: loss, duplication, reordering and corruption.
    // Sessions must reject cleanly (DecodeError) or still be exact.
    let mut sweep =
        scheduler.sweep_one_round(&protocol, &graphs, Some(simnet::FaultConfig::noisy(7)));
    for (r, g) in sweep.reports.iter().zip(&graphs) {
        if let Ok(Ok(Reconstruction::Graph(h))) = &r.outcome {
            assert_eq!(h, g, "a corrupted session fabricated a graph");
        }
    }
    // Fold decoder-level DecodeErrors (inside the typed output) into the
    // rejection count — the generic runtime only sees delivery failures.
    sweep.reclassify_ok(|r| matches!(&r.outcome, Ok(Ok(_))));
    let a = &sweep.aggregate;
    let c = &a.transport;
    println!("\nhostile network (2% loss, 5% dup, 15% reorder, 2% corruption):");
    println!("  sessions {}  ok {}  rejected-with-evidence {}", a.sessions, a.ok, a.rejected);
    println!("  transport: sent {}  delivered {}  dropped {}  duplicated {}  corrupted {}  reordered {}  deduped {}", c.sent, c.delivered, c.dropped, c.duplicated, c.corrupted, c.reordered, c.stale);
    println!("  wall {:.3}s  ≈ {:.0} sessions/s", a.wall_seconds, a.throughput());
    println!("\nno session hung, none fabricated a result ✓");
}
