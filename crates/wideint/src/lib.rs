#![warn(missing_docs)]
//! Exact arbitrary-precision integer arithmetic.
//!
//! This crate is the numeric substrate of the `referee-one-round` workspace,
//! the Rust reproduction of Becker et al., *Adding a referee to an
//! interconnection network* (IPDPS 2011).
//!
//! Why a bespoke bignum? The positive result of the paper (Theorem 5) has
//! every vertex `v` send the power sums `b_p(v) = Σ_{w ∈ N(v)} ID(w)^p` for
//! `p = 1..k` (Algorithm 3). With `n` vertices these sums reach `n^{k+1}`,
//! which overflows `u128` as soon as `(k+1)·log2(n) > 128` (e.g. `k = 8`,
//! `n = 10^5`). Decoding via Newton's identities additionally needs exact
//! *signed* arithmetic on elementary symmetric polynomials. Both are small,
//! well-specified needs, so we implement them directly instead of pulling a
//! general bignum dependency.
//!
//! Two types are exported:
//!
//! * [`UBig`] — unsigned, little-endian `u64` limbs, always normalized
//!   (no trailing zero limbs; zero is the empty limb vector).
//! * [`IBig`] — sign–magnitude wrapper over [`UBig`].
//!
//! All operations are exact; there is no silent wrap-around anywhere.
//!
//! # Example
//!
//! ```
//! use referee_wideint::UBig;
//!
//! // 10^40 does not fit in u128 but is exact here.
//! let big = UBig::from(10u64).pow(40);
//! assert_eq!(big.to_string(), "1".to_string() + &"0".repeat(40));
//! assert_eq!(big.bit_len(), 133);
//! ```

mod add;
mod div;
mod fmt;
mod ibig;
mod limb;
mod mul;
mod pow;
mod ubig;

pub use ibig::{IBig, Sign};
pub use ubig::UBig;

/// Errors produced when parsing or converting wide integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WideError {
    /// The input string was empty or contained an invalid digit.
    InvalidDigit,
    /// Conversion to a narrower type would lose information.
    Overflow,
    /// Division by zero.
    DivideByZero,
    /// A negative result where an unsigned value was required.
    NegativeToUnsigned,
}

impl std::fmt::Display for WideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WideError::InvalidDigit => write!(f, "invalid digit in input"),
            WideError::Overflow => write!(f, "value does not fit in target type"),
            WideError::DivideByZero => write!(f, "division by zero"),
            WideError::NegativeToUnsigned => {
                write!(f, "negative value cannot convert to unsigned")
            }
        }
    }
}

impl std::error::Error for WideError {}
