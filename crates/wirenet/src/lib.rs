#![warn(missing_docs)]
//! `referee-wirenet` — a real-socket reactor that drives `simnet`
//! sessions over multiplexed, MAC-authenticated wire frames.
//!
//! PR 1 built the session runtime sans-I/O on purpose: protocol
//! executions are pollable state machines behind a pluggable
//! [`Transport`](referee_simnet::Transport). This crate is the payoff —
//! the backend that puts *real OS sockets* under those unchanged state
//! machines, turning the referee model into a system that ships bytes:
//!
//! * [`frame`] — the wire codec: length-prefixed, versioned, **typed**
//!   binary framing of [`Envelope`](referee_simnet::Envelope)s, carrying
//!   the [`SessionId`](referee_simnet::SessionId) that lets one
//!   connection multiplex a whole fleet. [`FrameKind`] types each frame:
//!   session data, the key handshake, and the sharded referee's
//!   partial-state and verdict traffic.
//! * [`auth`] — the authentication layer: a keyed 64-bit SipHash-2-4
//!   tag on every frame; verification failures surface through the
//!   existing `DecodeError` rejection paths. Every connection runs on a
//!   key derived from the fleet's base key (tweak = connection id,
//!   assigned at accept time by a `Hello` frame), so a leaked
//!   per-connection key cannot forge frames on sibling connections.
//! * [`reactor`] — nonblocking `std::net` connections with explicit
//!   read/write buffers, advanced by kernel-readiness pump sweeps: an
//!   [`poll`]-provided `epoll` wait (edge-triggered sockets + a wakeup
//!   fd; the historical sleep-and-sweep loop as the non-Linux and
//!   [`POLLER_ENV`]-selectable fallback), outbound frames coalesced
//!   into one reused buffer per connection (MAC computed in place,
//!   zero per-frame allocation, one `write(2)` per flush) and inbound
//!   bytes drained once then batch-decoded. The epoll wait hands the
//!   hot loops the *set* of fds that edged, so they pump exactly the
//!   flagged connections (any degraded answer falls back to probing
//!   the whole pool); the echo server authenticates and requeues Data
//!   frames in place without ever materializing an envelope. The
//!   `write_syscalls`/`read_syscalls` counters and
//!   [`WireSnapshot::frames_per_write`] make the batching measurable.
//! * [`fleet`] — the referee-side acceptor ([`FleetServer`]: echo
//!   mailbox or sharded referee service) and node-side pool
//!   ([`FleetClient`]) whose [`SocketTransport`] runs 1000+ sessions
//!   over a handful of TCP connections with wire-level metrics
//!   ([`WireSnapshot`]).
//! * [`shard`] — the sharded referee service: authenticated frames are
//!   routed to shard workers by session + node range
//!   (`referee_protocol::shard`), shards exchange
//!   [`PartialState`](referee_protocol::shard::PartialState) frames over
//!   the same MAC'd codec, and clients get verdicts with a keyed
//!   [`vector_digest`] of the assembled vector
//!   ([`FleetClient::verify_session`]).
//! * [`multiround`] — the **multi-round** referee service: the server
//!   runs a protocol's `referee_step` itself, once per round, over the
//!   same sharded wait — per-round
//!   [`RoundPartialState`](referee_protocol::shard::multiround::RoundPartialState)
//!   `Partial` frames (epoch-fenced, round carried inside the
//!   authenticated payload), MAC'd downlink frames streamed back each
//!   round, and the encoded final output as the verdict.
//!   [`FleetClient::run_multiround_session`] drives the node half
//!   client-side, so Borůvka-style protocols run against a live wire
//!   referee. Client-side deadlines (Hello handshake, verdict/round
//!   waits) are configurable via [`WireTimeouts`] and the
//!   `REFEREE_WIRENET_{HELLO,VERDICT}_TIMEOUT_MS` environment
//!   variables.
//! * [`placement`] — **cross-host shard placement**: shard workers as
//!   network peers. A [`ShardHost`] role serves shard state behind a
//!   MAC'd registration handshake with per-shard, generation-scoped
//!   keys; a [`PlacementPolicy`] + [`RemotePlacement`] decide which
//!   host owns which ID range; coordinator-side proxies journal and
//!   replay so shard-host kill/restart leaves verdicts bit-for-bit
//!   unchanged.
//!
//! # Frame layout
//!
//! ```text
//!  4 bytes  1    1      8       4      4     4      4      ⌈bits/8⌉     8
//! ┌────────┬────┬─────┬────────┬──────┬─────┬─────┬────────┬──────────┬─────────┐
//! │ length │ver │kind │session │round │from │ to  │len_bits│ payload  │ MAC tag │
//! └────────┴────┴─────┴────────┴──────┴─────┴─────┴────────┴──────────┴─────────┘
//!          └──────────────── MAC-covered (SipHash-2-4, 64-bit) ────────────────┘
//! ```
//!
//! # Threat model (summary — details in [`auth`])
//!
//! Any modification of the MAC-covered region is detected except with
//! probability `2⁻⁶⁴` per frame; length-prefix lies are caught
//! structurally or fail the tag over the wrong span. Replays are
//! absorbed by the session runtime's idempotent duplicate handling.
//! Confidentiality and key distribution are out of scope. A connection
//! that carries one bad frame is poisoned immediately; its sessions
//! starve and reject through the ordinary delivery-failure paths, and a
//! sharded server retires their referee state on every shard worker.
//!
//! # Cross-host fleets
//!
//! The codec and acceptor speak plain TCP; nothing below binds to
//! loopback except the default address. To run the referee on one host
//! and the fleet on others:
//!
//! 1. **Server host** — bind a routable address, either in code:
//!    ```no_run
//!    # use referee_wirenet::{AuthKey, FleetServer};
//!    let server = FleetServer::builder(AuthKey::new(*b"0123456789abcdef"))
//!        .shards(4)
//!        .bind("0.0.0.0:7431".parse().unwrap())
//!        .spawn()
//!        .unwrap();
//!    ```
//!    or via the environment, with no code change:
//!    `REFEREE_WIRENET_BIND=0.0.0.0:7431` (see [`fleet::BIND_ENV`]).
//! 2. **Key distribution** — provision the same 128-bit base key on
//!    both hosts out of band ([`AuthKey::new`]; `from_seed` is for
//!    demos). Per-connection keys are derived automatically by the
//!    Hello handshake — the base key itself authenticates only that
//!    handshake.
//! 3. **Client hosts** — `FleetClient::connect("server:7431".parse()?,
//!    conns, key)`; everything else (multiplexing, backpressure,
//!    verify_session) is host-agnostic.
//! 4. **Firewalling** — one inbound TCP port on the server; clients
//!    need only outbound connectivity.
//!
//! ## Placing shards on their own hosts
//!
//! The referee's shard workers can themselves be network peers (see
//! [`placement`] for the full design). The recipe, one role at a time:
//!
//! 1. **Shard hosts** — on each shard machine run the shard-host role:
//!    bind via the `REFEREE_SHARDHOST_BIND` environment variable (or an
//!    explicit address) and keep the process alive:
//!    ```no_run
//!    # use referee_wirenet::{AuthKey, ShardHost};
//!    // REFEREE_SHARDHOST_BIND=0.0.0.0:7432
//!    let host = ShardHost::spawn_env(AuthKey::new(*b"0123456789abcdef")).unwrap();
//!    println!("serving shards at {}", host.addr());
//!    ```
//!    Shard hosts are deliberately stateless across restarts: the
//!    coordinator journals everything a live shard may need and replays
//!    it on reconnect.
//! 2. **Key registration** — shard hosts hold the same base key as the
//!    coordinator. Each coordinator link opens with a MAC'd `Register`
//!    handshake; from then on the link runs under
//!    `base.derive("place_ky").derive(shard id).derive(generation)` — a
//!    leaked shard key cannot forge sibling shards, and a reconnect
//!    bumps the generation so pre-epoch partials fail the MAC.
//! 3. **Coordinator** — assign shards to hosts with a
//!    [`PlacementPolicy`] (balanced-contiguous by default, static maps
//!    for pinned layouts), bind it to addresses with a
//!    [`RemotePlacement`], and hand it to the builder:
//!    ```no_run
//!    # use referee_wirenet::*;
//!    # let key = AuthKey::from_seed(0);
//!    let policy = PlacementPolicy::balanced(4, &[0, 1]);
//!    let placement = RemotePlacement::new(
//!        policy,
//!        [(0, "10.0.0.2:7432".parse().unwrap()), (1, "10.0.0.3:7432".parse().unwrap())],
//!    ).unwrap();
//!    let server = FleetServer::builder(key)
//!        .placement(placement.clone())
//!        .multiround(boruvka_connectivity_service()) // omit for the one-round verifier
//!        .spawn()
//!        .unwrap();
//!    ```
//!    Clients connect exactly as before — remote placement is invisible
//!    to them.
//! 4. **Reconnect semantics** — if a shard host dies, its proxy redials
//!    (20 ms backoff by default — tune with
//!    [`FleetServerBuilder::redial_backoff`] or the
//!    `REFEREE_WIRENET_REDIAL_BACKOFF_MS` environment variable),
//!    re-registers under a fresh generation, and
//!    replays the journal: uncommitted sessions are re-announced at
//!    their resume round and their buffered uplinks resent, so the
//!    rebuilt shard re-emits bit-identical partials and verdicts are
//!    unchanged (pinned by the chaos tests and
//!    `examples/cross_host_shards.rs`, which SIGKILLs real child
//!    processes mid-fleet). A host that comes back on a *different*
//!    address is re-pointed with
//!    [`RemotePlacement::update_host`] — no server restart.
//!
//! # Observability
//!
//! Every endpoint — client pool, server, shard host, coordinator —
//! owns a [`WireMetrics`] and exposes it as a [`WireSnapshot`] via its
//! `metrics()` / `stop()` methods. A snapshot carries two kinds of
//! signal:
//!
//! * **Counters** — frames/bytes sent and received, MAC rejects,
//!   tampered frames, backpressure stalls, shard traffic
//!   (partial/downlink/verdict frames), reconnects and replays.
//! * **Per-stage latency histograms** — each session is stamped at the
//!   named lifecycle [`Stage`]s (`connect_hello`, `announce`,
//!   `uplinks_complete`, `partial_merge`, `referee_step`, `verdict`)
//!   into fixed-bucket log₂ histograms
//!   ([`LatencyHistogram`](referee_protocol::LatencyHistogram)), so
//!   [`WireSnapshot::stage`] answers p50/p99/p999 per stage with no
//!   allocation on the hot path. Client-side stages measure what a
//!   caller feels (announce→verdict); server/host-side stages isolate
//!   where the time went (merge wait vs referee step).
//!
//! The recipe for a soak loop: snapshot before, snapshot after, and
//! [`WireSnapshot::delta`] isolates the phase between them; histograms
//! from remote processes travel through
//! [`HistSnapshot::encode`](referee_protocol::HistSnapshot::encode) and
//! merge into a coordinator's metrics with
//! [`WireMetrics::absorb_stage`] — the same mergeable-partial-state
//! discipline the referee itself uses. Tail-latency SLOs over these
//! percentiles are enforced in CI by `referee_bench::SloCheck` (see
//! `examples/cross_host_shards.rs`).
//!
//! ## Post-mortem debugging
//!
//! Every [`WireMetrics`] also owns a
//! [`FlightRecorder`](referee_protocol::trace::FlightRecorder) — a
//! lock-free, fixed-capacity, drop-oldest ring of causal
//! [`TraceEvent`](referee_protocol::trace::TraceEvent)s. All four
//! service layers record into it: dials and redials (with the
//! registration generation), session announcements, uplink arrivals,
//! shard partial emits/merges, referee steps, MAC rejects, poison
//! notices, journal replays, verdicts — and every connection records a
//! `Kill` the moment it observes its peer close. Recording is a few
//! atomic stores; a zero-capacity recorder
//! (`REFEREE_TRACE_CAPACITY=0`) turns it all off for
//! overhead-sensitive runs, surfacing any displaced events as the
//! [`WireSnapshot::trace_drops`] counter.
//!
//! Traces stitch across processes: shard hosts ship incremental
//! [`TraceSnapshot`](referee_protocol::trace::TraceSnapshot) segments
//! to their coordinator piggy-backed on session teardown
//! ([`FrameKind::Trace`]), and snapshot merge is a set union under a
//! canonical `(session, endpoint, seq)` order — commutative,
//! associative, idempotent — so segments arriving in any order
//! assemble one causally ordered timeline per session.
//!
//! Post-mortems are failure-triggered and off by default: set
//! `REFEREE_TRACE_DUMP=1` and call
//! [`dump_if_armed`](referee_protocol::trace::dump_if_armed) when an
//! SLO check fails, a verdict mismatches, or a chaos kill fires, and
//! the stitched timeline lands in `TRACE_<label>.json` — Chrome
//! `trace_event` format, one `pid` row per endpoint and one `tid`
//! track per session, readable in `chrome://tracing` or Perfetto
//! (`examples/cross_host_shards.rs` wires all three triggers).
//!
//! # Accountability
//!
//! Every provable wire-level violation produces more than a dead
//! session: the shard and multiround services package the offending
//! MAC'd frames into self-contained
//! [`EvidenceBundle`](referee_protocol::evidence::EvidenceBundle)s
//! (see `referee_protocol::evidence` for the format and the no-framing
//! argument). The load-bearing identity: an evidence record's body
//! **is** the frame's MAC-covered region byte-for-byte, and its tag is
//! the tag the client's own frame carried under the per-connection
//! derived key (path `[conn]`) — so a bundle is the client's own
//! signed bytes, not the referee's paraphrase.
//!
//! Bundles travel as [`FrameKind::Evidence`] frames (shipped
//! coordinator-ward ahead of the verdict, `from` = the accused
//! connection or 0), are counted by the
//! [`WireSnapshot::evidence_bundles`] metric, stamped as
//! `TraceKind::Evidence` on the flight recorder, and retained at both
//! ends — [`FleetServer::evidence`] / [`FleetClient::evidence`] — up
//! to the `REFEREE_EVIDENCE_CAP` retention cap ([`EVIDENCE_CAP_ENV`],
//! default 1024; `0` disables retention, never emission). The
//! `byzantine_fleet` example additionally dumps each retained bundle
//! to `EVIDENCE_<k>_<i>.bin` when `REFEREE_EVIDENCE_DIR` names a
//! directory, and CI re-uploads those as artifacts.
//!
//! Verification needs only the base key and the public session
//! parameters — no live state, no trust in the referee:
//!
//! ```
//! use referee_wirenet::{AuthKey, FleetClient, FleetServer};
//! use referee_protocol::evidence::{verify_bundle, ProvableError, SessionParams};
//! use referee_protocol::referee::local_phase;
//! use referee_protocol::easy::EdgeCountProtocol;
//! use referee_graph::generators;
//! use referee_simnet::SessionId;
//!
//! let key = AuthKey::from_seed(44);
//! let server = FleetServer::spawn_sharded(key, 2).unwrap();
//! let client = FleetClient::connect(server.addr(), 1, key).unwrap();
//! let g = generators::grid(2, 3);
//! let messages = local_phase(&EdgeCountProtocol, &g);
//!
//! // An out-of-range stray takes node 1's slot: the session rejects…
//! let mut arrivals: Vec<_> =
//!     messages.iter().cloned().enumerate().map(|(i, m)| (i as u32 + 1, m)).collect();
//! arrivals[0].0 = g.n() as u32 + 7;
//! assert!(client.verify_session(SessionId(3), g.n(), arrivals).is_err());
//!
//! // …and leaves a third-party-checkable proof behind.
//! let bundle = &server.evidence()[0];
//! assert_eq!(bundle.error, ProvableError::OutOfRangeSender);
//! let params = SessionParams { session: 3, n: g.n() as u32, round_cap: 1 };
//! let att = verify_bundle(key.mac_key(), &params, bundle).unwrap();
//! assert_eq!(att.culprit, bundle.accused);
//! server.stop();
//! ```
//!
//! # Example: a fleet over loopback TCP
//!
//! ```
//! use referee_wirenet::{AuthKey, FleetClient, FleetServer};
//! use referee_simnet::{OneRoundSession, SessionId};
//! use referee_graph::generators;
//! use referee_protocol::easy::EdgeCountProtocol;
//!
//! let key = AuthKey::from_seed(7);
//! let server = FleetServer::spawn(key).unwrap();
//! let client = FleetClient::connect(server.addr(), 2, key).unwrap();
//!
//! let g = generators::grid(3, 4);
//! let id = SessionId(1);
//! let mut transport = client.transport(id);
//! let report =
//!     OneRoundSession::new(&EdgeCountProtocol, &g).with_session(id).run(&mut transport);
//! assert_eq!(report.outcome.unwrap().unwrap(), g.m());
//!
//! let stats = server.stop();
//! assert_eq!(stats.mac_rejects, 0);
//! assert_eq!(stats.frames_received as usize, g.n());
//! ```
//!
//! # Example: the sharded referee verifying a session
//!
//! ```
//! use referee_wirenet::{shard::vector_digest, AuthKey, FleetClient, FleetServer};
//! use referee_simnet::SessionId;
//! use referee_graph::generators;
//! use referee_protocol::easy::EdgeCountProtocol;
//! use referee_protocol::referee::local_phase;
//!
//! let key = AuthKey::from_seed(31);
//! let server = FleetServer::spawn_sharded(key, 2).unwrap();
//! let client = FleetClient::connect(server.addr(), 1, key).unwrap();
//!
//! let g = generators::grid(3, 3);
//! let messages = local_phase(&EdgeCountProtocol, &g);
//! let arrivals = messages.iter().cloned().enumerate().map(|(i, m)| (i as u32 + 1, m));
//! let digest = client.verify_session(SessionId(9), g.n(), arrivals).unwrap();
//! assert_eq!(digest, vector_digest(&key, &messages));
//! server.stop();
//! ```

pub mod auth;
pub mod fleet;
pub mod frame;
pub mod metrics;
pub mod multiround;
pub mod placement;
pub mod poll;
pub mod reactor;
pub mod shard;

pub use auth::AuthKey;
pub use fleet::{
    FleetClient, FleetServer, FleetServerBuilder, SocketTransport, TamperConfig, WireTimeouts,
    BIND_ENV, HELLO_TIMEOUT_ENV, VERDICT_TIMEOUT_ENV,
};
pub use frame::{
    decode_frame, decode_frames, encode_frame, encode_frame_into, encode_wire_frame,
    DecodedFrame, FrameKind, WireError, HEADER_BYTES, TAG_BYTES, WIRE_VERSION,
};
pub use metrics::{
    trace_endpoint, Stage, WireMetrics, WireSnapshot, EVIDENCE_CAP_ENV, TRACE_CAPACITY_ENV,
};
pub use multiround::{
    boruvka_connectivity_service, decode_bool_output, decode_graph_output, encode_bool_output,
    encode_graph_output, ProtocolReferee, RefereeStepper, ServiceCatalog, WireReferee,
    MAX_SERVICE_NAME_BYTES,
};
pub use placement::{
    link_key, link_key_path, shard_key, HostId, PlacementPolicy, RemotePlacement, ShardHost,
    ShardHostMode, DEFAULT_REDIAL_BACKOFF, REDIAL_BACKOFF_ENV, SHARD_HOST_BIND_ENV,
};
pub use poll::{PollerBackend, POLLER_ENV};
pub use shard::vector_digest;
