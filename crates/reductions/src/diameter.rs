//! Theorem 2 / Algorithm 2: from any "diameter ≤ 3" protocol `Γ`, a
//! protocol `Δ` reconstructing **arbitrary** graphs.
//!
//! Unlike the square gadget, the neighbourhood of an original vertex in
//! `G'_{s,t}` (Figure 1) *does* depend on `(s, t)` — but takes only three
//! forms: untouched (`N ∪ {n+3}`), the `s` role (`N ∪ {n+1, n+3}`), or
//! the `t` role (`N ∪ {n+2, n+3}`). So `Δ^l` sends the triple
//! `(m⁰ᵢ, mˢᵢ, mᵗᵢ)` — "Δ is frugal, since its messages are three times
//! as big as those of Γ" — and `Δ^g` assembles, for every ordered pair,
//! the exact message vector `Γ^l` would have produced on `G'_{s,t}`.

use crate::util::{bundle, unbundle};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// The reconstruction protocol `Δ` built from a diameter-≤3 decider `Γ`.
/// Correct for **all** graphs (the family of Lemma 1's strongest count,
/// `Ω(2^{n²/2})`).
#[derive(Debug, Clone, Copy)]
pub struct DiameterReduction<P> {
    inner: P,
}

impl<P> DiameterReduction<P> {
    /// Wrap a diameter-≤3 decision protocol.
    pub fn new(inner: P) -> Self {
        DiameterReduction { inner }
    }
}

impl<P> OneRoundProtocol for DiameterReduction<P>
where
    P: OneRoundProtocol<Output = bool> + Sync,
{
    type Output = Result<LabelledGraph, DecodeError>;

    fn name(&self) -> String {
        format!("Δ: full reconstruction via [{}] (Alg. 2)", self.inner.name())
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n = view.n;
        let n3 = n + 3;
        let (a, b, u) = ((n + 1) as VertexId, (n + 2) as VertexId, (n + 3) as VertexId);
        // N ∪ {n+3}: the universal vertex is adjacent to everyone.
        let mut base = Vec::with_capacity(view.degree() + 2);
        base.extend_from_slice(view.neighbours);
        base.push(u);
        let m0 = self.inner.local(NodeView::new(n3, view.id, &base));
        // s role: N ∪ {n+1, n+3}
        let mut with_a = Vec::with_capacity(view.degree() + 2);
        with_a.extend_from_slice(view.neighbours);
        with_a.push(a);
        with_a.push(u);
        let ms = self.inner.local(NodeView::new(n3, view.id, &with_a));
        // t role: N ∪ {n+2, n+3}
        let mut with_b = Vec::with_capacity(view.degree() + 2);
        with_b.extend_from_slice(view.neighbours);
        with_b.push(b);
        with_b.push(u);
        let mt = self.inner.local(NodeView::new(n3, view.id, &with_b));
        bundle(&[m0, ms, mt])
    }

    fn global(&self, n: usize, messages: &[Message]) -> Result<LabelledGraph, DecodeError> {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let mut g = LabelledGraph::new(n);
        if n < 2 {
            return Ok(g);
        }
        let n3 = n + 3;
        let (a, b, u) = ((n + 1) as VertexId, (n + 2) as VertexId, (n + 3) as VertexId);
        // Unpack every node's triple once.
        let mut m0 = Vec::with_capacity(n);
        let mut ms = Vec::with_capacity(n);
        let mut mt = Vec::with_capacity(n);
        for msg in messages {
            let parts = unbundle(msg, 3)?;
            let mut it = parts.into_iter();
            m0.push(it.next().expect("3 parts"));
            ms.push(it.next().expect("3 parts"));
            mt.push(it.next().expect("3 parts"));
        }
        // The universal vertex's message is independent of (s, t).
        let all: Vec<VertexId> = (1..=n as VertexId).collect();
        let m_univ = self.inner.local(NodeView::new(n3, u, &all));

        for s in 1..=n as VertexId {
            for t in (s + 1)..=n as VertexId {
                // Assemble Γ^l(G'_{s,t}) exactly as Algorithm 2 does.
                let mut vec: Vec<Message> = Vec::with_capacity(n3);
                for i in 1..=n as VertexId {
                    let idx = (i - 1) as usize;
                    vec.push(if i == s {
                        ms[idx].clone()
                    } else if i == t {
                        mt[idx].clone()
                    } else {
                        m0[idx].clone()
                    });
                }
                vec.push(self.inner.local(NodeView::new(n3, a, &[s])));
                vec.push(self.inner.local(NodeView::new(n3, b, &[t])));
                vec.push(m_univ.clone());
                if self.inner.global(n3, &vec) {
                    g.add_edge(s, t).expect("each pair probed once");
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DiameterOracle;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{enumerate, generators};
    use referee_protocol::run_protocol;

    #[test]
    fn reconstructs_arbitrary_graphs_exhaustively() {
        let delta = DiameterReduction::new(DiameterOracle);
        for n in 2..=4usize {
            for g in enumerate::all_graphs(n) {
                let out = run_protocol(&delta, &g);
                assert_eq!(out.output.unwrap(), g, "n={n}");
            }
        }
    }

    #[test]
    fn reconstructs_random_dense_graphs() {
        // Theorem 2's punchline: the family is ALL graphs, including dense
        // ones no degeneracy bound covers.
        let mut rng = StdRng::seed_from_u64(50);
        for p in [0.1, 0.5, 0.9] {
            let g = generators::gnp(14, p, &mut rng);
            let delta = DiameterReduction::new(DiameterOracle);
            assert_eq!(run_protocol(&delta, &g).output.unwrap(), g, "p={p}");
        }
    }

    #[test]
    fn message_is_three_gamma_bundled_parts() {
        // "Δ is frugal, since its messages are three times as big as
        // those of Γ" — with exact bundling overhead accounted.
        let g = generators::path(9);
        let delta = DiameterReduction::new(DiameterOracle);
        let msgs = referee_protocol::referee::local_phase(&delta, &g);
        for (i, m) in msgs.iter().enumerate() {
            let parts = unbundle(m, 3).unwrap();
            let payload: usize = parts.iter().map(|p| p.len_bits()).sum();
            assert!(m.len_bits() > payload, "bundle adds length prefixes");
            assert!(m.len_bits() < payload + 3 * 32, "overhead is logarithmic");
            let _ = i;
        }
    }

    #[test]
    fn disconnected_graphs_also_reconstruct() {
        // G'_{s,t} is always connected thanks to the universal vertex, so
        // the reduction handles disconnected G too.
        let g = generators::path(4).disjoint_union(&generators::complete(3));
        let delta = DiameterReduction::new(DiameterOracle);
        assert_eq!(run_protocol(&delta, &g).output.unwrap(), g);
    }

    #[test]
    fn corrupted_bundle_rejected() {
        let g = generators::path(5);
        let delta = DiameterReduction::new(DiameterOracle);
        let mut msgs = referee_protocol::referee::local_phase(&delta, &g);
        // truncate one bundle mid-stream by rebuilding a shorter message
        let bad = {
            let mut w = referee_protocol::BitWriter::new();
            w.write_bits(0, 3);
            Message::from_writer(w)
        };
        msgs[2] = bad;
        assert!(delta.global(5, &msgs).is_err());
    }
}
