//! Workspace-wide failure injection: flip bits in protocol messages and
//! assert that no referee ever panics or silently mis-reconstructs.
//!
//! Per-crate tests already cover each decoder in isolation; these runs
//! exercise the *combinations* the per-crate tests cannot (reduction
//! protocols wrapping oracles, the sketch protocol's sampler stack) and
//! pin the global invariant: a corrupted transmission may produce an
//! error, a rejection, or — only where the encoding is redundant — the
//! original graph; never a different graph, and never a crash.

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;
use referee_one_round::protocol::referee::local_phase;
use referee_one_round::reductions::oracle::TriangleOracle;

/// Flip every bit of one message and run the global function each time.
fn flip_sweep<P, F>(protocol: &P, g: &LabelledGraph, victim: usize, mut check: F)
where
    P: OneRoundProtocol + Sync,
    F: FnMut(P::Output),
{
    let mut msgs = local_phase(protocol, g);
    let original = msgs[victim].clone();
    for bit in 0..original.len_bits() {
        msgs[victim] = original.with_bit_flipped(bit);
        check(protocol.global(g.n(), &msgs));
    }
}

#[test]
fn degeneracy_protocol_full_sweep() {
    let mut rng = StdRng::seed_from_u64(31);
    let g = generators::random_k_degenerate(12, 2, 1.0, &mut rng);
    let p = DegeneracyProtocol::new(2);
    flip_sweep(&p, &g, 5, |out| match out {
        Err(_) | Ok(Reconstruction::NotInClass) => {}
        Ok(Reconstruction::Graph(h)) => assert_eq!(h, g, "silent mis-reconstruction"),
    });
}

#[test]
fn triangle_reduction_sweep_never_panics() {
    // The reduction bundles Γ messages; corrupt bundles must surface as
    // Err (bad framing) or a graph — whose edges may legitimately differ
    // since the oracle's decision bits changed, but the call must not
    // panic and honest re-runs must still work.
    let mut rng = StdRng::seed_from_u64(32);
    let g = generators::random_balanced_bipartite(8, 0.4, &mut rng);
    let delta = TriangleReduction::new(TriangleOracle);
    let mut outcomes = (0usize, 0usize); // (errors, graphs)
    flip_sweep(&delta, &g, 3, |out| match out {
        Err(_) => outcomes.0 += 1,
        Ok(_) => outcomes.1 += 1,
    });
    assert!(outcomes.0 + outcomes.1 > 0);
    // and the honest vector still round-trips afterwards
    let honest = referee_one_round::protocol::run_protocol(&delta, &g);
    assert_eq!(honest.output.unwrap(), g);
}

#[test]
fn sketch_protocol_sweep_never_panics() {
    let g = generators::grid(4, 4);
    let p = SketchConnectivityProtocol::new(9);
    let mut msgs = local_phase(&p, &g);
    let original = msgs[7].clone();
    // sketches are long; sample a spread of bit positions
    for bit in (0..original.len_bits()).step_by(97) {
        msgs[7] = original.with_bit_flipped(bit);
        // Monte-Carlo protocol: any bool is acceptable, crashes are not.
        let _ = p.global(16, &msgs);
    }
    // truncated message must be a decode error, not a panic
    msgs[7] = Message::empty();
    assert!(p.global(16, &msgs).is_err());
}

#[test]
fn forest_protocol_full_sweep() {
    let mut rng = StdRng::seed_from_u64(33);
    let g = generators::random_tree(14, &mut rng);
    flip_sweep(&ForestProtocol, &g, 6, |out| match out {
        Err(_) | Ok(Reconstruction::NotInClass) => {}
        Ok(Reconstruction::Graph(h)) => assert_eq!(h, g, "silent mis-reconstruction"),
    });
}

#[test]
fn generalized_protocol_full_sweep() {
    let mut rng = StdRng::seed_from_u64(34);
    let dense = generators::random_k_degenerate(9, 2, 1.0, &mut rng).complement();
    let p = GeneralizedDegeneracyProtocol::new(2);
    flip_sweep(&p, &dense, 4, |out| match out {
        Err(_) | Ok(Reconstruction::NotInClass) => {}
        Ok(Reconstruction::Graph(h)) => assert_eq!(h, dense, "silent mis-reconstruction"),
    });
}

#[test]
fn truncated_and_empty_vectors_rejected_everywhere() {
    let n = 6;
    let empties = vec![Message::empty(); n];
    assert!(DegeneracyProtocol::new(2).global(n, &empties).is_err());
    assert!(ForestProtocol.global(n, &empties).is_err());
    assert!(GeneralizedDegeneracyProtocol::new(2).global(n, &empties).is_err());
    assert!(SketchConnectivityProtocol::new(1).global(n, &empties).is_err());
    // wrong vector length
    let short = vec![Message::empty(); n - 1];
    assert!(DegeneracyProtocol::new(2).global(n, &short).is_err());
}

#[test]
fn easy_protocols_sweep_error_or_plausible() {
    use referee_one_round::protocol::easy::*;
    let mut rng = StdRng::seed_from_u64(35);
    let g = generators::gnp(10, 0.3, &mut rng);
    // Degree-based protocols: a flipped degree either breaks the
    // handshake (error) or yields a *different but in-range* count — it
    // can never panic, and honest runs stay exact.
    flip_sweep(&EdgeCountProtocol, &g, 2, |out| {
        if let Ok(m) = out {
            assert!(m <= 10 * 9 / 2);
        }
    });
    flip_sweep(&EulerianDegreeProtocol, &g, 2, |out| {
        let _ = out; // 1-bit messages: both verdicts plausible, no panic
    });
    assert_eq!(
        referee_one_round::protocol::run_protocol(&EdgeCountProtocol, &g).output.unwrap(),
        g.m()
    );
}

#[test]
fn bipartiteness_sketch_sweep_never_panics() {
    let g = generators::complete_bipartite(3, 4);
    let p = SketchBipartitenessProtocol::new(11);
    let mut msgs = local_phase(&p, &g);
    let original = msgs[0].clone();
    for bit in (0..original.len_bits()).step_by(131) {
        msgs[0] = original.with_bit_flipped(bit);
        let _ = p.global(7, &msgs); // no panic; Monte-Carlo verdict free
    }
    msgs[0] = Message::empty();
    assert!(p.global(7, &msgs).is_err());
}

#[test]
fn kconn_sketch_sweep_never_panics() {
    let g = generators::cycle(8).unwrap();
    let p = SketchKConnectivityProtocol::new(12, 2);
    let mut msgs = local_phase(&p, &g);
    let original = msgs[3].clone();
    for bit in (0..original.len_bits()).step_by(173) {
        msgs[3] = original.with_bit_flipped(bit);
        if let Ok(lambda) = p.global(8, &msgs) {
            // sampled edges are verified, so the peeled union is a
            // subgraph of SOME graph with ≤ k(n−1) edges; the capped
            // answer stays in range.
            assert!(lambda <= 2);
        }
    }
    assert!(p.global(8, &vec![Message::empty(); 8]).is_err());
}

/// A transport that flips a chosen set of bits of one chosen uplink —
/// the multi-round, in-flight analogue of [`flip_sweep`]. Bits beyond
/// the frame length are ignored (the shorter "no proposal" frames).
struct FlipUplinkBits {
    inner: referee_simnet::PerfectTransport,
    round: u32,
    from: u32,
    bits: Vec<usize>,
    /// Bits that actually landed inside the victim frame.
    applied: usize,
}

impl referee_simnet::Transport for FlipUplinkBits {
    fn send(&mut self, mut env: referee_simnet::Envelope) {
        if env.round == self.round && env.from == self.from && env.to == referee_simnet::REFEREE
        {
            for &bit in &self.bits {
                if bit < env.payload.len_bits() {
                    env.payload = env.payload.with_bit_flipped(bit);
                    self.applied += 1;
                }
            }
        }
        self.inner.send(env);
    }

    fn recv(&mut self) -> Option<referee_simnet::Envelope> {
        self.inner.recv()
    }

    fn counters(&self) -> referee_simnet::TransportCounters {
        self.inner.counters()
    }
}

/// How one corrupted Borůvka run ended (stalls and panics are ruled out
/// by the helper itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CorruptOutcome {
    /// The referee rejected the run with a `DecodeError`.
    Detected,
    /// The run finished with this connectivity verdict (either the flips
    /// were no-ops past the frame end, or a tag collision let a
    /// corrupted proposal through).
    Verdict(bool),
}

/// Corrupt one uplink of a Borůvka run on `g` and classify the outcome.
/// Returns `(applied, outcome)`: how many requested flips landed inside
/// the frame, and how the run ended. Panics on the outcomes an
/// authenticated uplink must rule out unconditionally: a stall or a
/// crash.
fn corrupt_boruvka_uplink(
    g: &LabelledGraph,
    round: u32,
    victim: u32,
    bits: &[usize],
) -> (usize, CorruptOutcome) {
    use referee_one_round::protocol::multiround::BoruvkaConnectivity;
    let mut transport = FlipUplinkBits {
        inner: referee_simnet::PerfectTransport::new(),
        round,
        from: victim,
        bits: bits.to_vec(),
        applied: 0,
    };
    let report =
        referee_simnet::MultiRoundSession::new(&BoruvkaConnectivity, g, 64).run(&mut transport);
    let outcome = match report.outcome.expect("perfect delivery") {
        Some(Err(_)) => CorruptOutcome::Detected,
        Some(Ok(verdict)) => CorruptOutcome::Verdict(verdict),
        None => panic!("corrupted run stalled to the round cap"),
    };
    (transport.applied, outcome)
}

/// Connected-graph specialization: a spurious merge can only ever *join*
/// components, so the verdict must stay `true`; anything else is a bug.
/// Returns whether the corruption was detected.
fn corrupt_connected_boruvka(
    g: &LabelledGraph,
    round: u32,
    victim: u32,
    bits: &[usize],
) -> (usize, bool) {
    let (applied, outcome) = corrupt_boruvka_uplink(g, round, victim, bits);
    match outcome {
        CorruptOutcome::Detected => (applied, true),
        CorruptOutcome::Verdict(v) => {
            assert!(
                v,
                "corrupted run produced a wrong verdict (round {round}, node {victim}, bits {bits:?})"
            );
            (applied, false)
        }
    }
}

#[test]
fn boruvka_uplink_single_bit_sweep() {
    // BoruvkaConnectivity ships MAC-tagged proposal uplinks (keyed
    // SipHash-2-4 truncated to 4 bits). Detection guarantees by frame
    // region:
    //   * flag bit — certain (the frame length stops matching);
    //   * tag bits — certain (the id is unchanged, so its tag is fixed
    //     and any tag flip mismatches it);
    //   * id bits — all but a 2⁻⁴ collision slice, and an undetected
    //     flip can at worst inject a spurious merge, which on a
    //     connected graph cannot change the verdict.
    // Round 1 uplinks are 1-bit "no proposal" frames; round 2 carries
    // real proposals. Sweep every bit of every node's uplink in both.
    use referee_one_round::protocol::multiround::BoruvkaConnectivity;

    let g = generators::path(6);
    let n = g.n();
    let width = bits_for(n) as usize;
    let max_frame_bits = 1 + width + 4; // flag + id + tag
    let (mut id_cases, mut id_detected) = (0usize, 0usize);
    for round in [1u32, 2] {
        for victim in 1..=n as u32 {
            for bit in 0..max_frame_bits {
                let (applied, detected) = corrupt_connected_boruvka(&g, round, victim, &[bit]);
                if applied == 0 {
                    continue; // flip fell past a short no-proposal frame
                }
                if bit == 0 || bit > width {
                    // Flag and tag flips: detection is unconditional.
                    assert!(
                        detected,
                        "undetected flag/tag flip (round {round}, node {victim}, bit {bit})"
                    );
                } else {
                    id_cases += 1;
                    id_detected += detected as usize;
                }
            }
        }
    }
    // Id flips: expected miss rate 2⁻⁴; demand detection well above the
    // fold's multi-bit blind spots without flaking on the odd collision.
    assert!(id_cases > 0, "sweep never hit an id bit");
    assert!(
        id_detected * 4 >= id_cases * 3,
        "id-bit detection too weak: {id_detected}/{id_cases}"
    );
    // Sanity: the honest run accepts.
    let mut honest = referee_simnet::PerfectTransport::new();
    let report =
        referee_simnet::MultiRoundSession::new(&BoruvkaConnectivity, &g, 64).run(&mut honest);
    assert!(report.outcome.unwrap().unwrap().unwrap());
}

#[test]
fn boruvka_uplink_multibit_sweep_covers_fold_blind_patterns() {
    // The old 4-bit XOR-fold checksum was *linear*: a corruption pattern
    // passed verification iff the fold of the id-delta equalled the
    // tag-delta. Two whole families of multi-bit corruptions were thus
    // structurally invisible to it:
    //   1. flip id value-bit v together with tag value-bit (v mod 4)
    //      (the fold of a single id bit IS that tag bit);
    //   2. flip two id bits four apart (their folds cancel; needs
    //      width ≥ 5, hence n = 20 here).
    // The keyed MAC has no linear structure: each such pattern now
    // slips through only on a 2⁻⁴ tag collision. Sweep every
    // fold-blind pattern for every node's round-2 proposal and demand a
    // detection rate far above zero — plus the usual hard guarantees
    // (no panic, no wrong verdict, no stall), which
    // `corrupt_connected_boruvka` asserts on every single run.
    let g = generators::path(20);
    let n = g.n();
    let width = bits_for(n) as usize; // 5
    assert!(width >= 5, "need width ≥ 5 for the id-pair blind spot");

    // Frame bit positions (MSB-first): bit 0 = flag, bits 1..=width = id
    // (MSB first), bits width+1..width+4 = tag (MSB first).
    let id_bit = |v: usize| 1 + (width - 1 - v); // id value-bit v
    let tag_bit = |t: usize| 1 + width + (3 - t); // tag value-bit t

    let mut patterns: Vec<Vec<usize>> = Vec::new();
    // Family 1: id value-bit v + tag value-bit (v mod 4).
    for v in 0..width {
        patterns.push(vec![id_bit(v), tag_bit(v % 4)]);
    }
    // Family 2: id value-bits v and v + 4.
    for v in 0..width.saturating_sub(4) {
        patterns.push(vec![id_bit(v), id_bit(v + 4)]);
    }

    let (mut cases, mut detected_cases) = (0usize, 0usize);
    for victim in 1..=n as u32 {
        for bits in &patterns {
            let (applied, detected) = corrupt_connected_boruvka(&g, 2, victim, bits);
            if applied < bits.len() {
                continue; // that node sent no proposal in round 2
            }
            cases += 1;
            detected_cases += detected as usize;
        }
    }
    assert!(cases >= 40, "too few fold-blind patterns exercised ({cases})");
    // Expected misses: cases/16. Demand ≥ 3/4 detected — impossible for
    // the old fold (0 detected by construction), robust for the MAC.
    assert!(
        detected_cases * 4 >= cases * 3,
        "fold-blind detection too weak: {detected_cases}/{cases}"
    );
}

#[test]
fn boruvka_disconnected_graph_corruption_window_is_bounded() {
    // The truncated 4-bit MAC leaves an honest, *quantified* window: a
    // corrupted proposal id slips through on a 2⁻⁴ tag collision, and on
    // a DISCONNECTED graph an undetected in-range proposal can union two
    // true components and flip the verdict to "connected". (The old XOR
    // fold detected every single-bit flip with certainty but passed
    // whole multi-bit classes with the same wrong-verdict consequence —
    // neither 4-bit scheme eliminates the window; the MAC bounds every
    // pattern uniformly.) Sweep all 1- and 2-bit corruptions of every
    // round-2 uplink on a disconnected graph and pin that window: every
    // run terminates without panicking, the accounting is exhaustive,
    // detection dominates, and wrong verdicts stay a small fraction.
    let g = generators::path(10).disjoint_union(&generators::path(9));
    let n = g.n();
    let honest_verdict = false;
    let frame_bits = 1 + bits_for(n) as usize + 4;

    let mut patterns: Vec<Vec<usize>> = (0..frame_bits).map(|b| vec![b]).collect();
    for a in 0..frame_bits {
        for b in a + 1..frame_bits {
            patterns.push(vec![a, b]);
        }
    }

    let (mut cases, mut detected, mut honest, mut wrong) = (0usize, 0usize, 0usize, 0usize);
    for victim in 1..=n as u32 {
        for bits in &patterns {
            let (applied, outcome) = corrupt_boruvka_uplink(&g, 2, victim, bits);
            if applied < bits.len() {
                continue;
            }
            cases += 1;
            match outcome {
                CorruptOutcome::Detected => detected += 1,
                CorruptOutcome::Verdict(v) if v == honest_verdict => honest += 1,
                CorruptOutcome::Verdict(_) => wrong += 1,
            }
        }
    }
    assert_eq!(detected + honest + wrong, cases, "every run classified");
    assert!(cases > 500, "sweep too small ({cases})");
    assert!(detected * 2 >= cases, "detection must dominate: {detected}/{cases}");
    // The window: strictly bounded, far below the fold's blind classes.
    // Expected ≈ (in-range, cross-component collisions)/16 of cases.
    assert!(
        wrong * 8 <= cases,
        "wrong-verdict window too large: {wrong}/{cases} (detected {detected}, honest {honest})"
    );
}

#[test]
fn multiround_adaptive_corrupting_transport_never_fabricates() {
    // Transport-level corruption on the adaptive multi-round protocol:
    // flipped sketch bits must surface as DecodeError (or an honest
    // reconstruction when the flip was benign) — never a different graph.
    use referee_simnet::{FaultConfig, FaultyTransport, MultiRoundSession, PerfectTransport};

    let mut rng = StdRng::seed_from_u64(41);
    let mut corrupted_runs = 0usize;
    for trial in 0..40u64 {
        let g = generators::random_tree(12, &mut rng);
        let mut transport =
            FaultyTransport::new(PerfectTransport::new(), FaultConfig::corrupting(trial, 0.4));
        let report =
            MultiRoundSession::new(&AdaptiveDegeneracyProtocol, &g, 64).run(&mut transport);
        if report.metrics.transport.corrupted > 0 {
            corrupted_runs += 1;
        }
        match report.outcome {
            Err(_) => {}           // session-level rejection
            Ok(None) => {}         // stalled to the cap: acceptable, not a lie
            Ok(Some(Err(_))) => {} // decoder-level rejection
            Ok(Some(Ok(h))) => assert_eq!(h, g, "fabricated graph under corruption"),
        }
    }
    assert!(corrupted_runs > 30, "corruption config never fired");
}

#[test]
fn adaptive_protocol_rejects_corrupt_first_round() {
    use referee_one_round::protocol::multiround::{MultiRoundProtocol, RefereeStep};
    let mut rng = StdRng::seed_from_u64(36);
    let g = generators::random_tree(10, &mut rng);
    let p = AdaptiveDegeneracyProtocol;
    // Build honest round-1 uplinks by hand, then corrupt one.
    let views: Vec<Vec<u32>> = g.vertices().map(|v| g.neighbourhood(v).to_vec()).collect();
    let mut uplinks: Vec<Message> = g
        .vertices()
        .map(|v| p.node_send(&(), NodeView::new(10, v, &views[(v - 1) as usize]), 1).1)
        .collect();
    // Honest run of round 1 on a tree terminates with the graph.
    let mut state = p.referee_init(10);
    match p.referee_step(&mut state, 10, 1, &uplinks) {
        RefereeStep::Done(Ok(h)) => assert_eq!(h, g),
        other => {
            panic!("expected Done(Ok), got {:?}", matches!(other, RefereeStep::Continue(_)))
        }
    }
    // Truncated message ⇒ decode error, never a wrong graph.
    uplinks[4] = Message::empty();
    let mut state = p.referee_init(10);
    match p.referee_step(&mut state, 10, 1, &uplinks) {
        RefereeStep::Done(Err(_)) => {}
        RefereeStep::Done(Ok(h)) => assert_eq!(h, g, "silent mis-reconstruction"),
        RefereeStep::Continue(_) => {} // stalling is acceptable, lying is not
    }
}
