//! Addition and subtraction for [`UBig`].
//!
//! Subtraction panics on underflow in the `Sub` operator (matching the
//! standard library's unsigned semantics) and offers `checked_sub` /
//! `abs_diff` for the decoders, which must *detect* inconsistent sketches
//! rather than crash on them (failure injection tests rely on this).

use crate::limb::{adc, sbb};
use crate::UBig;
use std::ops::{Add, AddAssign, Sub, SubAssign};

impl UBig {
    /// `self + other`, never overflows.
    pub fn add_ref(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s, c) = adc(a, b, carry);
            out.push(s);
            carry = c;
        }
        if carry != 0 {
            out.push(carry);
        }
        UBig::from_limbs(out)
    }

    /// `self - other` if non-negative, else `None`.
    pub fn checked_sub(&self, other: &UBig) -> Option<UBig> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, br) = sbb(self.limbs[i], b, borrow);
            out.push(d);
            borrow = br;
        }
        debug_assert_eq!(borrow, 0, "cmp guard should have caught underflow");
        Some(UBig::from_limbs(out))
    }

    /// `|self - other|`.
    pub fn abs_diff(&self, other: &UBig) -> UBig {
        if self >= other {
            self.checked_sub(other).expect("self >= other")
        } else {
            other.checked_sub(self).expect("other > self")
        }
    }

    /// In-place `self += other`.
    pub fn add_assign_ref(&mut self, other: &UBig) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s, c) = adc(self.limbs[i], b, carry);
            self.limbs[i] = s;
            carry = c;
            if carry == 0 && i >= other.limbs.len() {
                return; // no further change possible
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }
}

impl Add for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        self.add_ref(rhs)
    }
}

impl Add for UBig {
    type Output = UBig;
    fn add(self, rhs: UBig) -> UBig {
        self.add_ref(&rhs)
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for &UBig {
    type Output = UBig;
    /// Panics if the result would be negative; use [`UBig::checked_sub`]
    /// when the inputs are untrusted (e.g. decoding corrupted messages).
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub(rhs).expect("UBig subtraction underflow (use checked_sub)")
    }
}

impl Sub for UBig {
    type Output = UBig;
    fn sub(self, rhs: UBig) -> UBig {
        &self - &rhs
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = &*self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ub(v: u128) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn add_small() {
        assert_eq!(ub(2) + ub(3), ub(5));
        assert_eq!(ub(0) + ub(0), ub(0));
        assert_eq!(ub(u64::MAX as u128) + ub(1), ub(1u128 << 64));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = ub(u128::MAX);
        let b = ub(1);
        let sum = &a + &b;
        assert_eq!(sum.limbs(), &[0, 0, 1]);
        assert_eq!(sum.bit_len(), 129);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = ub(u128::MAX - 5);
        a += &ub(123);
        assert_eq!(a, ub(u128::MAX - 5) + ub(123));
        // no-growth fast path
        let mut b = ub(10);
        b += &ub(1);
        assert_eq!(b, ub(11));
    }

    #[test]
    fn sub_basic() {
        assert_eq!(ub(5) - ub(3), ub(2));
        assert_eq!(ub(5) - ub(5), ub(0));
        assert_eq!(ub(1u128 << 64) - ub(1), ub(u64::MAX as u128));
    }

    #[test]
    fn checked_sub_underflow() {
        assert_eq!(ub(3).checked_sub(&ub(5)), None);
        assert_eq!(ub(3).checked_sub(&ub(3)), Some(ub(0)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = ub(1) - ub(2);
    }

    #[test]
    fn abs_diff_symmetric() {
        assert_eq!(ub(10).abs_diff(&ub(3)), ub(7));
        assert_eq!(ub(3).abs_diff(&ub(10)), ub(7));
        assert_eq!(ub(7).abs_diff(&ub(7)), ub(0));
    }
}
