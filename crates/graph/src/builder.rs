//! [`GraphBuilder`]: forgiving bulk construction of [`LabelledGraph`]s.
//!
//! The strict `LabelledGraph::add_edge` API is right for algorithms, but
//! generators and parsers often produce candidate edge streams with repeats
//! (e.g. the G(n, m) sampler or the random-regular pairing model). The
//! builder deduplicates, drops self-loops on request, and reports what it
//! did.

use crate::{GraphError, LabelledGraph, VertexId};

/// Bulk graph construction with configurable leniency.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    allow_duplicates: bool,
    allow_self_loops: bool,
    duplicates_dropped: usize,
    self_loops_dropped: usize,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices. Strict by default: duplicate
    /// edges and self-loops are errors at [`GraphBuilder::build`].
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            allow_duplicates: false,
            allow_self_loops: false,
            duplicates_dropped: 0,
            self_loops_dropped: 0,
        }
    }

    /// Silently drop duplicate edges instead of erroring.
    pub fn dedup(mut self) -> Self {
        self.allow_duplicates = true;
        self
    }

    /// Silently drop self-loops instead of erroring.
    pub fn drop_self_loops(mut self) -> Self {
        self.allow_self_loops = true;
        self
    }

    /// Queue an edge.
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Queue many edges.
    pub fn edges(&mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Number of duplicate edges dropped so far (populated by `build`).
    pub fn duplicates_dropped(&self) -> usize {
        self.duplicates_dropped
    }

    /// Number of self-loops dropped so far (populated by `build`).
    pub fn self_loops_dropped(&self) -> usize {
        self.self_loops_dropped
    }

    /// Materialize the graph.
    pub fn build(&mut self) -> Result<LabelledGraph, GraphError> {
        let mut g = LabelledGraph::new(self.n);
        for &(u, v) in &self.edges {
            if u == v {
                if self.allow_self_loops {
                    self.self_loops_dropped += 1;
                    continue;
                }
                return Err(GraphError::SelfLoop(u));
            }
            match g.add_edge(u, v) {
                Ok(()) => {}
                Err(GraphError::DuplicateEdge(a, b)) => {
                    if self.allow_duplicates {
                        self.duplicates_dropped += 1;
                    } else {
                        return Err(GraphError::DuplicateEdge(a, b));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_build() {
        let mut b = GraphBuilder::new(3);
        b.edge(1, 2).edge(2, 3);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn strict_rejects_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.edge(1, 2).edge(2, 1);
        assert_eq!(b.build(), Err(GraphError::DuplicateEdge(1, 2)));
    }

    #[test]
    fn lenient_drops_and_counts() {
        let mut b = GraphBuilder::new(3).dedup().drop_self_loops();
        b.edges([(1, 2), (2, 1), (3, 3), (1, 3)]);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(b.duplicates_dropped(), 1);
        assert_eq!(b.self_loops_dropped(), 1);
    }

    #[test]
    fn out_of_range_always_errors() {
        let mut b = GraphBuilder::new(2).dedup().drop_self_loops();
        b.edge(1, 9);
        assert!(matches!(b.build(), Err(GraphError::VertexOutOfRange { .. })));
    }
}
