//! E5 + E6: Lemma 1 counting tables and pigeonhole collision witnesses.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_counting`

use referee_bench::experiments::counting;
use referee_bench::{render_table, section};

fn main() {
    println!("# E5: log₂ g(n) of the paper's families vs the frugal budget c·n·⌈log₂(n+1)⌉");

    section("exact counts by exhaustive enumeration (n ≤ 7)");
    let rows = counting::exact_table(7);
    println!("{}", render_table(&counting::to_table(&rows)));

    section("the asymptotic race (exponents; Kleitman–Winston for square-free)");
    println!(
        "{}",
        render_table(&counting::asymptotic_rows(&[16, 64, 256, 1024, 4096, 65536, 1 << 20], 8))
    );
    println!(
        "shape check: families 2^Θ(n^1.5)/2^Θ(n²) overtake every 2^O(n log n) budget ⇒\n\
         Lemma 1 forbids frugal reconstruction of square-free / bipartite / all graphs,\n\
         while forests (log₂ count ≈ n log n) stay reconstructible — exactly Theorem 5 vs Theorems 1–3."
    );

    section("boundary check — Cayley: trees sit exactly at the Lemma 1 budget");
    println!("n\tlog₂ n^(n-2)\tbudget c=1");
    for n in [8usize, 64, 512, 4096] {
        println!(
            "{n}\t{:.0}\t{}",
            referee_reductions::counting::cayley_trees(n).log2(),
            referee_reductions::counting::budget_log2(n, 1)
        );
    }
    println!("(trees ≈ the largest family a frugal one-round protocol can reconstruct — §III.A does)");

    section("E6: pigeonhole witnesses");
    for line in counting::collision_findings() {
        println!("- {line}");
    }
}
