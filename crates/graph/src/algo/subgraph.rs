//! Generic small-pattern subgraph isomorphism (backtracking with degree
//! and connectivity pruning).
//!
//! §II of the paper opens with the general question: *"given a small
//! non-trivial graph S, does G admit S as a (not necessarily induced)
//! subgraph?"* and observes it is "most often impossible to answer in
//! one round". The concrete theorems instantiate S = C₄ (Theorem 1) and
//! S = C₃ (Theorem 3); this module supplies the detector for *arbitrary*
//! fixed S so the hardness-gadget framework (and the tests validating
//! it) can quantify over patterns rather than hard-coding two of them.
//!
//! For fixed pattern size `p` the search is `O(n^p)` worst case, which
//! is fine for the pattern sizes the paper contemplates (≤ 6); the
//! square/triangle fast paths in [`squares`](crate::algo::squares) and
//! [`triangles`](crate::algo::triangles) remain the production
//! detectors, and the tests here cross-check them.

use crate::{LabelledGraph, VertexId};

/// Does `host` contain `pattern` as a **not necessarily induced**
/// subgraph? (Every pattern edge must map to a host edge; pattern
/// non-edges are unconstrained.) Pattern and host are both labelled, but
/// the embedding may send pattern vertex `i` to any host vertex.
///
/// ```
/// use referee_graph::{algo, generators};
/// let host = generators::petersen(); // girth 5
/// assert!(!algo::has_subgraph(&host, &generators::cycle(4).unwrap()));
/// assert!(algo::has_subgraph(&host, &generators::cycle(5).unwrap()));
/// ```
pub fn has_subgraph(host: &LabelledGraph, pattern: &LabelledGraph) -> bool {
    find_subgraph(host, pattern).is_some()
}

/// Does `host` contain `pattern` as an **induced** subgraph? (Pattern
/// edges map to edges *and* pattern non-edges map to non-edges.)
pub fn has_induced_subgraph(host: &LabelledGraph, pattern: &LabelledGraph) -> bool {
    find_embedding(host, pattern, true).is_some()
}

/// Find one subgraph embedding: `result[i]` = host vertex hosting
/// pattern vertex `i + 1`. `None` if no embedding exists.
pub fn find_subgraph(host: &LabelledGraph, pattern: &LabelledGraph) -> Option<Vec<VertexId>> {
    find_embedding(host, pattern, false)
}

/// Count all embeddings of `pattern` into `host` (labelled embeddings,
/// i.e. distinct injective maps — so a triangle is counted 6 times, once
/// per automorphism). Divide by `|Aut(pattern)|` for unlabelled counts.
pub fn count_embeddings(host: &LabelledGraph, pattern: &LabelledGraph) -> u64 {
    let mut count = 0;
    enumerate_embeddings(host, pattern, false, &mut |_| {
        count += 1;
        true
    });
    count
}

/// Size of the automorphism group of `g` (embeddings of `g` into
/// itself). Useful to convert labelled embedding counts to subgraph
/// counts: `count_embeddings(h, p) / automorphism_count(p)`.
pub fn automorphism_count(g: &LabelledGraph) -> u64 {
    // An automorphism is an embedding of g into itself with the same
    // number of edges used — for non-induced embeddings of g into g,
    // injectivity on n vertices forces a bijection, and edge
    // preservation both ways requires induced matching.
    let mut count = 0;
    enumerate_embeddings(g, g, true, &mut |_| {
        count += 1;
        true
    });
    count
}

fn find_embedding(
    host: &LabelledGraph,
    pattern: &LabelledGraph,
    induced: bool,
) -> Option<Vec<VertexId>> {
    let mut found = None;
    enumerate_embeddings(host, pattern, induced, &mut |emb| {
        found = Some(emb.to_vec());
        false // stop at the first
    });
    found
}

/// Core backtracking enumerator. Calls `visit` with each embedding
/// (`emb[i]` = host vertex for pattern vertex `i+1`); `visit` returns
/// `false` to stop the search.
///
/// Pattern vertices are matched in an order that keeps the frontier
/// connected where possible, so partial assignments are pruned by
/// adjacency early.
fn enumerate_embeddings(
    host: &LabelledGraph,
    pattern: &LabelledGraph,
    induced: bool,
    visit: &mut impl FnMut(&[VertexId]) -> bool,
) {
    let p = pattern.n();
    let n = host.n();
    if p == 0 {
        visit(&[]);
        return;
    }
    if p > n {
        return;
    }

    // Matching order: repeatedly take the unmatched pattern vertex with
    // the most already-matched neighbours (ties: larger degree), so each
    // new vertex is constrained by as many placed neighbours as
    // possible.
    let order = {
        let mut order = Vec::with_capacity(p);
        let mut placed = vec![false; p + 1];
        for _ in 0..p {
            let best = (1..=p as VertexId)
                .filter(|&v| !placed[v as usize])
                .max_by_key(|&v| {
                    let anchored = pattern
                        .neighbourhood(v)
                        .iter()
                        .filter(|&&w| placed[w as usize])
                        .count();
                    (anchored, pattern.degree(v))
                })
                .expect("unplaced vertex remains");
            placed[best as usize] = true;
            order.push(best);
        }
        order
    };

    // emb[pattern vertex] = host vertex (0 = unassigned). Recursion
    // depth equals the pattern size, which is small by assumption.
    let mut emb = vec![0 as VertexId; p + 1];
    let mut used = vec![false; n + 1];
    let mut out = vec![0 as VertexId; p];
    recurse(host, pattern, &order, induced, 0, &mut emb, &mut used, &mut out, visit);
}

/// Recursive step of [`enumerate_embeddings`]; returns `false` once
/// `visit` asks to stop.
#[allow(clippy::too_many_arguments)]
fn recurse(
    host: &LabelledGraph,
    pattern: &LabelledGraph,
    order: &[VertexId],
    induced: bool,
    depth: usize,
    emb: &mut Vec<VertexId>,
    used: &mut Vec<bool>,
    out: &mut Vec<VertexId>,
    visit: &mut impl FnMut(&[VertexId]) -> bool,
) -> bool {
    let p = pattern.n();
    let pv = order[depth];
    for hv in candidates_for(host, pattern, order, emb, depth, induced) {
        if used[hv as usize] {
            continue;
        }
        emb[pv as usize] = hv;
        used[hv as usize] = true;
        let keep_going = if depth + 1 == p {
            for &q in order {
                out[(q - 1) as usize] = emb[q as usize];
            }
            visit(out)
        } else {
            recurse(host, pattern, order, induced, depth + 1, emb, used, out, visit)
        };
        used[hv as usize] = false;
        emb[pv as usize] = 0;
        if !keep_going {
            return false;
        }
    }
    true
}

/// Host candidates for the pattern vertex at `order[depth]`, given the
/// partial embedding `emb`: degree-feasible host vertices adjacent to
/// every already-placed pattern neighbour (and, for induced search,
/// non-adjacent to every placed non-neighbour).
fn candidates_for(
    host: &LabelledGraph,
    pattern: &LabelledGraph,
    order: &[VertexId],
    emb: &[VertexId],
    depth: usize,
    induced: bool,
) -> Vec<VertexId> {
    let pv = order[depth];
    let pdeg = pattern.degree(pv);
    // Anchor on a placed neighbour if one exists: candidates are its
    // host-neighbours rather than all of V(host).
    let anchor = pattern.neighbourhood(pv).iter().copied().find(|&w| emb[w as usize] != 0);
    let pool: Vec<VertexId> = match anchor {
        Some(w) => host.neighbourhood(emb[w as usize]).to_vec(),
        None => host.vertices().collect(),
    };
    pool.into_iter()
        .filter(|&hv| {
            if host.degree(hv) < pdeg {
                return false;
            }
            // All placed pattern neighbours must map to host neighbours.
            for &w in pattern.neighbourhood(pv) {
                let hw = emb[w as usize];
                if hw != 0 && !host.has_edge(hv, hw) {
                    return false;
                }
            }
            if induced {
                // Placed non-neighbours must stay non-adjacent.
                for &q in order[..depth].iter() {
                    if q != pv && !pattern.has_edge(pv, q) {
                        let hq = emb[q as usize];
                        if hq != 0 && host.has_edge(hv, hq) {
                            return false;
                        }
                    }
                }
            }
            true
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{count_squares, count_triangles, girth, has_square, has_triangle};
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    fn c(n: usize) -> LabelledGraph {
        generators::cycle(n).unwrap()
    }

    #[test]
    fn cross_check_triangle_detector() {
        let tri = generators::complete(3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let g = generators::gnp(12, 0.2, &mut rng);
            assert_eq!(has_subgraph(&g, &tri), has_triangle(&g), "{g:?}");
        }
    }

    #[test]
    fn cross_check_square_detector() {
        let sq = c(4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let g = generators::gnp(11, 0.22, &mut rng);
            assert_eq!(has_subgraph(&g, &sq), has_square(&g), "{g:?}");
        }
    }

    #[test]
    fn counts_match_specialized_counters() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..15 {
            let g = generators::gnp(9, 0.3, &mut rng);
            // Aut(C3) = 6, Aut(C4) = 8.
            assert_eq!(count_embeddings(&g, &generators::complete(3)) / 6, count_triangles(&g));
            assert_eq!(count_embeddings(&g, &c(4)) / 8, count_squares(&g));
        }
    }

    #[test]
    fn automorphism_counts_of_named_graphs() {
        assert_eq!(automorphism_count(&generators::complete(4)), 24);
        assert_eq!(automorphism_count(&c(5)), 10); // dihedral D5
        assert_eq!(automorphism_count(&generators::path(4)), 2);
        assert_eq!(automorphism_count(&generators::petersen()), 120);
        assert_eq!(automorphism_count(&generators::star(4).unwrap()), 6); // S3 on leaves
    }

    #[test]
    fn longer_cycles_and_girth_agree() {
        // girth g ⟹ contains C_g but no shorter cycle... and C_k for
        // k < girth must be absent as a subgraph.
        let pet = generators::petersen(); // girth 5
        assert_eq!(girth(&pet), Some(5));
        assert!(!has_subgraph(&pet, &c(3)));
        assert!(!has_subgraph(&pet, &c(4)));
        assert!(has_subgraph(&pet, &c(5)));
        assert!(has_subgraph(&pet, &c(6))); // Petersen has 6-cycles too
    }

    #[test]
    fn induced_vs_non_induced() {
        let k4 = generators::complete(4);
        // K4 contains C4 as a subgraph but NOT as an induced subgraph.
        assert!(has_subgraph(&k4, &c(4)));
        assert!(!has_induced_subgraph(&k4, &c(4)));
        // P3 induced in a path but not in a triangle.
        let p3 = generators::path(3);
        assert!(has_induced_subgraph(&generators::path(5), &p3));
        assert!(has_subgraph(&generators::complete(3), &p3));
        assert!(!has_induced_subgraph(&generators::complete(3), &p3));
    }

    #[test]
    fn embedding_is_a_witness() {
        let mut rng = StdRng::seed_from_u64(4);
        let pattern = c(5);
        for _ in 0..20 {
            let g = generators::gnp(12, 0.35, &mut rng);
            if let Some(emb) = find_subgraph(&g, &pattern) {
                assert_eq!(emb.len(), 5);
                // Injective and edge-preserving.
                let mut sorted = emb.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 5, "not injective: {emb:?}");
                for e in pattern.edges() {
                    assert!(
                        g.has_edge(emb[(e.0 - 1) as usize], emb[(e.1 - 1) as usize]),
                        "edge {e:?} not preserved by {emb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn edge_cases() {
        let g = generators::path(4);
        let empty = LabelledGraph::new(0);
        assert!(has_subgraph(&g, &empty)); // empty pattern embeds
        assert!(!has_subgraph(&empty, &g)); // into empty host: no
                                            // Pattern bigger than host.
        assert!(!has_subgraph(&generators::path(3), &generators::path(4)));
        // Pattern with isolated vertices: P2 + isolated vertex needs n≥3.
        let mut p2_iso = LabelledGraph::new(3);
        p2_iso.add_edge(1, 2).unwrap();
        assert!(has_subgraph(&g, &p2_iso));
        assert!(!has_subgraph(&generators::path(2), &p2_iso));
        // Edgeless pattern embeds iff host has enough vertices.
        assert!(has_subgraph(&g, &LabelledGraph::new(4)));
        assert!(!has_subgraph(&g, &LabelledGraph::new(5)));
    }

    #[test]
    fn bipartite_hosts_have_no_odd_cycles() {
        let g = generators::complete_bipartite(4, 4);
        assert!(!has_subgraph(&g, &c(3)));
        assert!(!has_subgraph(&g, &c(5)));
        assert!(has_subgraph(&g, &c(4)));
        assert!(has_subgraph(&g, &c(6)));
        assert!(has_subgraph(&g, &c(8)));
    }

    #[test]
    fn grid_patterns() {
        let g = generators::grid(4, 4);
        assert!(has_subgraph(&g, &c(4)));
        assert!(!has_subgraph(&g, &c(3))); // grids are bipartite
        assert!(has_subgraph(&g, &generators::path(16))); // Hamiltonian path
                                                          // K_{1,3} (claw) embeds at interior vertices.
        assert!(has_subgraph(&g, &generators::star(4).unwrap()));
        // K_{1,5} does not (max degree 4).
        assert!(!has_subgraph(&g, &generators::star(6).unwrap()));
    }
}
