//! Adaptive multi-round degeneracy reconstruction with **unknown k**
//! (extension of Theorem 5, answering a gap the paper flags: "Each
//! vertex needs to know the value of k").
//!
//! Theorem 5's protocol is parameterized: nodes must agree on `k` in
//! advance, and the recognition variant merely *rejects* when the graph
//! has degeneracy > k. With more rounds (§IV: "can we decide more
//! properties by allowing more rounds?") the parameter disappears:
//!
//! * round `r` (0-based): every node uploads the power sums
//!   `b_p = Σ ID(w)^p` for the *new* powers `p ∈ (k_{r−1}, k_r]`, where
//!   `k_r = min(2^r, n−1)` — a doubling schedule both sides compute
//!   from `n` alone;
//! * the referee accumulates per-node sketches, runs Algorithm 4 with
//!   the current `k_r`, and either finishes (pruning reached the empty
//!   graph) or broadcasts a 1-bit "continue";
//! * at `k = n − 1` every graph reconstructs, so the loop terminates.
//!
//! For a graph of degeneracy `d` this takes exactly
//! `⌈log₂ max(d,1)⌉ + 1` rounds and ships, **in total across rounds**,
//! the same power sums the one-round protocol with `k = k_final < 2d`
//! would have sent — `O(d² log n)` bits per node — because rounds are
//! *incremental*: no power is ever re-sent. Nobody needed to know `d`.

use crate::encode::{sketch_field_widths, PowerSumSketch};
use crate::protocol::{DegeneracyProtocol, Reconstruction};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::multiround::{
    run_multiround, MultiRoundProtocol, MultiRoundStats, RefereeStep,
};
use referee_protocol::{bits_for, BitWriter, DecodeError, Message, NodeView};
use referee_wideint::UBig;

/// The doubling schedule: the sketch arity after round `r` on an
/// `n`-vertex graph.
pub fn k_at_round(n: usize, round: usize) -> usize {
    let cap = n.saturating_sub(1).max(1);
    (1usize << round.min(63)).min(cap)
}

/// Rounds the protocol needs on a graph of degeneracy `d` (prediction
/// used by tests and the experiment tables).
pub fn rounds_for_degeneracy(n: usize, d: usize) -> usize {
    let mut r = 0;
    while k_at_round(n, r) < d.max(1) {
        r += 1;
    }
    r + 1
}

/// Adaptive unknown-k reconstruction as a [`MultiRoundProtocol`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveDegeneracyProtocol;

/// Referee memory: the partial sketches accumulated so far.
#[derive(Debug, Default)]
pub struct AdaptiveRefereeState {
    sketches: Vec<PowerSumSketch>,
}

impl MultiRoundProtocol for AdaptiveDegeneracyProtocol {
    type Output = Result<LabelledGraph, DecodeError>;
    type NodeState = ();
    type RefereeState = AdaptiveRefereeState;

    fn name(&self) -> String {
        "adaptive degeneracy reconstruction (unknown k, doubling rounds)".into()
    }

    fn node_init(&self, _view: NodeView<'_>) {}

    fn referee_init(&self, _n: usize) -> AdaptiveRefereeState {
        AdaptiveRefereeState::default()
    }

    // NB: the runner numbers rounds from 1; the schedule indexes from 0.
    fn node_send(
        &self,
        _state: &(),
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message) {
        let n = view.n;
        let k_now = k_at_round(n, round - 1);
        let k_prev = if round == 1 { 0 } else { k_at_round(n, round - 2) };
        let mut w = BitWriter::new();
        if round == 1 {
            w.write_bits(view.id as u64, bits_for(n));
            w.write_bits(view.degree() as u64, bits_for(n.saturating_sub(1)));
        }
        if k_now > k_prev {
            // Compute the full sketch up to k_now and ship only the new
            // power fields, at the exact widths the decoder expects.
            let sk = PowerSumSketch::compute(n, view.id, view.neighbours, k_now);
            let widths = sketch_field_widths(n, k_now);
            for p in k_prev..k_now {
                write_ubig_field(&mut w, &sk.sums[p], widths.sums[p]);
            }
        }
        (Vec::new(), Message::from_writer(w))
    }

    fn referee_step(
        &self,
        state: &mut AdaptiveRefereeState,
        n: usize,
        round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<Self::Output> {
        let k_now = k_at_round(n, round - 1);
        let k_prev = if round == 1 { 0 } else { k_at_round(n, round - 2) };
        let widths = sketch_field_widths(n, k_now);
        // Ingest this round's fields.
        for (i, msg) in uplinks.iter().enumerate() {
            let mut r = msg.reader();
            if round == 1 {
                let id = match r.read_bits(bits_for(n)) {
                    Ok(v) => v as VertexId,
                    Err(e) => return RefereeStep::Done(Err(e)),
                };
                if id as usize != i + 1 {
                    return RefereeStep::Done(Err(DecodeError::Inconsistent(format!(
                        "first-round message {} carries id {id}",
                        i + 1
                    ))));
                }
                let degree = match r.read_bits(bits_for(n.saturating_sub(1))) {
                    Ok(v) => v as usize,
                    Err(e) => return RefereeStep::Done(Err(e)),
                };
                state.sketches.push(PowerSumSketch { id, degree, sums: Vec::new() });
            }
            let sk = &mut state.sketches[i];
            for p in k_prev..k_now {
                match read_ubig_field(&mut r, widths.sums[p]) {
                    Ok(v) => sk.sums.push(v),
                    Err(e) => return RefereeStep::Done(Err(e)),
                }
            }
            if !r.is_exhausted() {
                return RefereeStep::Done(Err(DecodeError::Invalid(format!(
                    "node {} sent {} trailing bits in round {round}",
                    i + 1,
                    r.remaining()
                ))));
            }
        }
        // Try Algorithm 4 at the current arity.
        let proto = DegeneracyProtocol::new(k_now);
        match proto.prune_and_rebuild(n, state.sketches.clone()) {
            Ok(Reconstruction::Graph(g)) => RefereeStep::Done(Ok(g)),
            Ok(Reconstruction::NotInClass) => {
                // degeneracy > k_now: ask for the next power batch.
                RefereeStep::Continue(vec![Message::empty(); n])
            }
            Err(e) => RefereeStep::Done(Err(e)),
        }
    }

    fn node_receive(
        &self,
        _state: &mut (),
        _view: NodeView<'_>,
        _round: usize,
        _from_neighbours: &[(VertexId, Message)],
        _from_referee: &Message,
    ) {
    }
}

fn write_ubig_field(w: &mut BitWriter, v: &UBig, width: u32) {
    assert!(v.bit_len() as u32 <= width, "value exceeds its field bound");
    let mut remaining = width;
    while remaining > 0 {
        let take = remaining.min(64);
        remaining -= take;
        let mut chunk = 0u64;
        for i in (0..take).rev() {
            chunk <<= 1;
            if v.bit((remaining + i) as usize) {
                chunk |= 1;
            }
        }
        w.write_bits(chunk, take);
    }
}

fn read_ubig_field(
    r: &mut referee_protocol::BitReader<'_>,
    width: u32,
) -> Result<UBig, DecodeError> {
    let mut acc = UBig::zero();
    let mut remaining = width;
    while remaining > 0 {
        let take = remaining.min(64);
        remaining -= take;
        let chunk = r.read_bits(take)?;
        acc = acc.shl(take as usize).add_ref(&UBig::from(chunk));
    }
    Ok(acc)
}

/// Run the adaptive protocol on `g`. Returns the reconstruction, the
/// execution stats, and the final sketch arity `k` the run reached.
///
/// ```
/// use referee_degeneracy::adaptive_reconstruct;
/// use referee_graph::generators;
/// let g = generators::grid(6, 6); // degeneracy 2 — but nobody knows that
/// let (out, stats, k_final) = adaptive_reconstruct(&g);
/// assert_eq!(out.unwrap(), g);
/// assert_eq!((stats.rounds, k_final), (2, 2)); // ⌈log₂ 2⌉ + 1 rounds
/// ```
pub fn adaptive_reconstruct(
    g: &LabelledGraph,
) -> (Result<LabelledGraph, DecodeError>, MultiRoundStats, usize) {
    let n = g.n();
    // log₂(n) + 2 rounds always suffice (k caps at n−1).
    let max_rounds = (usize::BITS - n.max(2).leading_zeros()) as usize + 2;
    let (out, stats) = run_multiround(&AdaptiveDegeneracyProtocol, g, max_rounds);
    let k_final = k_at_round(n, stats.rounds.saturating_sub(1));
    (out.expect("adaptive protocol always terminates"), stats, k_final)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{algo, generators};

    #[test]
    fn schedule_doubles_and_caps() {
        assert_eq!(k_at_round(100, 0), 1);
        assert_eq!(k_at_round(100, 1), 2);
        assert_eq!(k_at_round(100, 5), 32);
        assert_eq!(k_at_round(100, 7), 99); // capped at n−1
        assert_eq!(k_at_round(2, 3), 1);
        assert_eq!(rounds_for_degeneracy(100, 1), 1);
        assert_eq!(rounds_for_degeneracy(100, 2), 2);
        assert_eq!(rounds_for_degeneracy(100, 3), 3);
        assert_eq!(rounds_for_degeneracy(100, 5), 4);
    }

    #[test]
    fn reconstructs_forests_in_one_round() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_tree(40, &mut rng);
        let (out, stats, k_final) = adaptive_reconstruct(&g);
        assert_eq!(out.unwrap(), g);
        assert_eq!(stats.rounds, 1);
        assert_eq!(k_final, 1);
    }

    #[test]
    fn rounds_match_prediction_across_degeneracies() {
        let mut rng = StdRng::seed_from_u64(2);
        for d in 1..=6usize {
            let g = generators::random_k_degenerate(30, d, 0.9, &mut rng);
            let true_d = algo::degeneracy_ordering(&g).degeneracy;
            let (out, stats, k_final) = adaptive_reconstruct(&g);
            assert_eq!(out.unwrap(), g, "d={d}");
            assert_eq!(stats.rounds, rounds_for_degeneracy(30, true_d), "true_d={true_d}");
            assert!(k_final >= true_d, "k_final={k_final} < {true_d}");
            assert!(k_final < 2 * true_d.max(1), "k_final={k_final} overshoots 2d");
        }
    }

    #[test]
    fn dense_graph_caps_at_n_minus_1() {
        let g = generators::complete(9); // degeneracy 8 = n−1
        let (out, stats, k_final) = adaptive_reconstruct(&g);
        assert_eq!(out.unwrap(), g);
        assert_eq!(k_final, 8);
        assert_eq!(stats.rounds, rounds_for_degeneracy(9, 8));
    }

    #[test]
    fn trivial_graphs() {
        for n in [0usize, 1, 2] {
            let g = LabelledGraph::new(n);
            let (out, stats, _) = adaptive_reconstruct(&g);
            assert_eq!(out.unwrap(), g, "n={n}");
            assert_eq!(stats.rounds, 1);
        }
    }

    #[test]
    fn total_bits_equal_final_one_round_sketch() {
        // Incrementality: Σ_rounds uplink bits = one-round protocol at
        // k_final, plus the round-0 id/degree header.
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_k_degenerate(25, 5, 0.8, &mut rng);
        let n = g.n();
        let true_d = algo::degeneracy_ordering(&g).degeneracy;
        let (_, _stats, k_final) = adaptive_reconstruct(&g);
        assert!(k_final >= true_d);
        // Recompute per-node total across rounds by re-running node_send.
        let p = AdaptiveDegeneracyProtocol;
        let rounds = rounds_for_degeneracy(n, true_d);
        let v: VertexId = 1;
        let nbrs = g.neighbourhood(v);
        let total: usize = (1..=rounds)
            .map(|r| p.node_send(&(), NodeView::new(n, v, nbrs), r).1.len_bits())
            .sum();
        let widths = sketch_field_widths(n, k_at_round(n, rounds - 1));
        assert_eq!(total, widths.total(), "incremental total ≠ one-shot sketch");
    }

    #[test]
    fn structured_families_round_counts() {
        // grid: degeneracy 2 → 2 rounds; apollonian: 3 → 3 rounds.
        let (out, stats, _) = adaptive_reconstruct(&generators::grid(5, 6));
        assert_eq!(out.unwrap(), generators::grid(5, 6));
        assert_eq!(stats.rounds, 2);

        let mut rng = StdRng::seed_from_u64(4);
        let ap = generators::random_apollonian(20, &mut rng).unwrap();
        let (out, stats, _) = adaptive_reconstruct(&ap);
        assert_eq!(out.unwrap(), ap);
        assert_eq!(stats.rounds, 3);
    }

    #[test]
    fn downlinks_are_single_broadcast_bits() {
        let g = generators::grid(4, 4);
        let (_, stats, _) = adaptive_reconstruct(&g);
        assert_eq!(stats.max_downlink_bits, 0); // empty "continue" marker
        assert_eq!(stats.max_link_bits, 0); // no node↔node traffic
    }
}
