//! Slice helpers: shim for `rand::seq::SliceRandom`.

use crate::RngCore;

/// Random slice operations (shuffle, sampling).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly chosen element (`None` on an empty slice).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them if
    /// `amount >= len`). Returned as an iterator of references, matching
    /// the real API closely enough for `.copied()` / `.cloned()` chains.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| &self[i]).collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut s = picked.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10, "duplicates in sample");
        // amount > len returns everything
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 50);
    }

    #[test]
    fn choose_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: [u8; 0] = [];
        assert!(v.choose(&mut rng).is_none());
    }
}
