//! Sharding for the **multi-round** referee: per-round mergeable uplink
//! assembly, so Borůvka-style [`MultiRoundProtocol`]s scale out the same
//! way the one-round wait does.
//!
//! The one-round [`RefereeShard`] splits §I.B's
//! "wait for one message per vertex" across balanced ID ranges. A
//! multi-round referee runs that wait once per round: before every
//! [`referee_step`](MultiRoundProtocol::referee_step) it must hold the
//! complete round-`r` uplink vector. This module is the same split,
//! round-stamped:
//!
//! * [`RoundShard`] — shard `i` of `k` ingests its ID range's uplinks
//!   **for one round** (any order; duplicates and strays classified
//!   exactly like the one-round shard).
//! * [`RoundPartialState`] — a shard's serializable per-round summary.
//!   `merge` is commutative and associative and refuses to mix rounds
//!   (or network sizes), so any merge tree over one round's shards
//!   reproduces the exact uplink vector `referee_step` would have seen —
//!   bit for bit, pinned by property tests.
//! * [`run_multiround_sharded`] — the driver: each round's uplinks are
//!   routed into `k` shards, the partials merge, the merged state
//!   finishes into the uplink vector, and the protocol's `referee_step`
//!   runs on it. [`run_multiround`](crate::multiround::run_multiround)
//!   is literally the `k = 1` special case of this function.
//!
//! The wire layout of a [`RoundPartialState`] is its round (32 bits)
//! followed by the one-round [`PartialState`] layout, so cross-shard
//! exchanges (simnet envelopes, wirenet `Partial` frames) carry the
//! round *inside* the authenticated payload — a partial can never be
//! replayed into a different round undetected.

use super::{shard_of, Arrival, PartialState, RefereeShard, ShardRange};
use crate::multiround::{MultiRoundProtocol, MultiRoundStats, RefereeStep};
use crate::{DecodeError, Message, NodeView};
use referee_graph::{LabelledGraph, VertexId};

/// One shard of a single round's referee wait: a
/// [`RefereeShard`] plus the round it collects for.
#[derive(Debug, Clone)]
pub struct RoundShard {
    round: u32,
    inner: RefereeShard,
}

impl RoundShard {
    /// Shard `index` of `shards` for round `round` of a size-`n` network.
    pub fn new(n: usize, shards: usize, index: usize, round: u32) -> RoundShard {
        RoundShard { round, inner: RefereeShard::new(n, shards, index) }
    }

    /// The round this shard collects uplinks for.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The ID range this shard owns.
    pub fn range(&self) -> ShardRange {
        self.inner.range()
    }

    /// Whether every node in the range has a recorded uplink.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// Whether a fault was recorded (the round's verdict is already an
    /// error whatever else arrives).
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Absorb one round-`r` uplink (same classification contract as
    /// [`RefereeShard::ingest`](super::RefereeShard::ingest)).
    pub fn ingest(
        &mut self,
        sender: VertexId,
        payload: Message,
    ) -> Result<Arrival, DecodeError> {
        self.inner.ingest(sender, payload)
    }

    /// Record `sender` as duplicated for this round.
    pub fn note_duplicate(&mut self, sender: VertexId) {
        self.inner.note_duplicate(sender);
    }

    /// The uplink recorded for `sender` this round, if any (what an
    /// accountability layer signs as the original of an equivocation
    /// pair — see [`crate::evidence`]).
    pub fn message_for(&self, sender: VertexId) -> Option<&Message> {
        self.inner.message_for(sender)
    }

    /// The shard's per-round summary, ready to exchange and merge.
    pub fn into_partial(self) -> RoundPartialState {
        RoundPartialState { round: self.round, inner: self.inner.into_partial() }
    }
}

/// A mergeable, serializable summary of one round's uplinks, as absorbed
/// by one shard (or any merged set of one round's shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPartialState {
    round: u32,
    inner: PartialState,
}

impl RoundPartialState {
    /// An empty summary for round `round` of a size-`n` network.
    pub fn new(n: usize, round: u32) -> RoundPartialState {
        RoundPartialState { round, inner: PartialState::new(n) }
    }

    /// The network size this summary is for.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// The round this summary is for.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Distinct senders recorded so far.
    pub fn arrivals(&self) -> usize {
        self.inner.arrivals()
    }

    /// Whether a fault (out-of-range or duplicated sender) was recorded.
    pub fn poisoned(&self) -> bool {
        self.inner.poisoned()
    }

    /// Record an out-of-range sender directly (min-tracked).
    pub fn note_out_of_range(&mut self, sender: VertexId) {
        self.inner.note_out_of_range(sender);
    }

    /// Record a duplicated sender directly (min-tracked).
    pub fn note_duplicate(&mut self, sender: VertexId) {
        self.inner.note_duplicate(sender);
    }

    /// Fold `other` into `self` — commutative and associative up to the
    /// [`finish`](RoundPartialState::finish) verdict, like the one-round
    /// merge. Errors if the summaries describe different network sizes
    /// **or different rounds** (a cross-round merge would let a replayed
    /// partial rewrite history).
    pub fn merge(&mut self, other: RoundPartialState) -> Result<(), DecodeError> {
        if self.round != other.round {
            return Err(DecodeError::Inconsistent(format!(
                "cannot merge partial states for round {} and round {}",
                self.round, other.round
            )));
        }
        self.inner.merge(other.inner)
    }

    /// The canonical verdict for this round: out-of-range sender, then
    /// duplicate, then missing node — smallest offender first — else the
    /// complete ID-ordered uplink vector, exactly the input
    /// [`referee_step`](MultiRoundProtocol::referee_step) expects.
    pub fn finish(self) -> Result<Vec<Message>, DecodeError> {
        self.inner.finish()
    }

    /// Serialize: `round:32` followed by the one-round
    /// [`PartialState::encode`] layout.
    pub fn encode(&self) -> Message {
        let mut w = crate::BitWriter::new();
        w.write_bits(self.round as u64, 32);
        self.inner.encode().append_to(&mut w);
        Message::from_writer(w)
    }

    /// Deserialize a summary produced by
    /// [`encode`](RoundPartialState::encode), validating every field the
    /// one-round decoder validates; the round is returned in the summary
    /// for the caller to check against its own expectation.
    pub fn decode(expected_n: usize, msg: &Message) -> Result<RoundPartialState, DecodeError> {
        let mut r = msg.reader();
        let round = r.read_bits(32)? as u32;
        let mut w = crate::BitWriter::new();
        r.copy_bits_into(&mut w, r.remaining())?;
        let inner = PartialState::decode(expected_n, &Message::from_writer(w))?;
        Ok(RoundPartialState { round, inner })
    }
}

/// Execute a multi-round protocol on `g` with the referee's per-round
/// wait split across `shards` mergeable shards (clamped to at least 1),
/// up to `max_rounds`. Returns `None` as output if the referee never
/// finished — the same contract as
/// [`run_multiround`](crate::multiround::run_multiround), which is the
/// one-shard special case of this function.
///
/// Every round: node sends run first; each uplink is routed to the
/// shard owning its sender ([`shard_of`]); the `k` per-round partials
/// merge (a left fold here — merge-shape invariance is pinned by
/// property tests) and finish into the exact uplink vector the
/// monolithic referee would have assembled; `referee_step` runs on it.
pub fn run_multiround_sharded<P: MultiRoundProtocol>(
    protocol: &P,
    g: &LabelledGraph,
    shards: usize,
    max_rounds: usize,
) -> (Option<P::Output>, MultiRoundStats) {
    let n = g.n();
    let k = shards.max(1);
    let mut node_states: Vec<P::NodeState> = (1..=n as u32)
        .map(|v| protocol.node_init(NodeView::new(n, v, g.neighbourhood(v))))
        .collect();
    let mut referee_state = protocol.referee_init(n);
    let mut stats = MultiRoundStats {
        n,
        rounds: 0,
        max_uplink_bits: 0,
        max_downlink_bits: 0,
        max_link_bits: 0,
    };

    for round in 1..=max_rounds {
        stats.rounds = round;
        // Phase 1: sends. Uplinks route straight into their owning shard.
        let mut round_shards: Vec<RoundShard> =
            (0..k).map(|i| RoundShard::new(n, k, i, round as u32)).collect();
        let mut inbox: Vec<Vec<(VertexId, Message)>> = vec![Vec::new(); n];
        for v in 1..=n as u32 {
            let view = NodeView::new(n, v, g.neighbourhood(v));
            let (to_nbrs, up) = protocol.node_send(&node_states[(v - 1) as usize], view, round);
            stats.max_uplink_bits = stats.max_uplink_bits.max(up.len_bits());
            round_shards[shard_of(n, k, v)]
                .ingest(v, up)
                .expect("honest uplink routed to its owning shard");
            for (target, msg) in to_nbrs {
                assert!(
                    g.has_edge(v, target),
                    "node {v} tried to message non-neighbour {target}"
                );
                stats.max_link_bits = stats.max_link_bits.max(msg.len_bits());
                inbox[(target - 1) as usize].push((v, msg));
            }
        }
        // Phase 2: cross-shard merge, then the referee step on the
        // reassembled uplink vector.
        let mut acc = RoundPartialState::new(n, round as u32);
        for shard in round_shards {
            acc.merge(shard.into_partial()).expect("same network size and round");
        }
        let uplinks = acc.finish().expect("every node uplinked exactly once");
        let downlinks = match protocol.referee_step(&mut referee_state, n, round, &uplinks) {
            RefereeStep::Done(out) => return (Some(out), stats),
            RefereeStep::Continue(d) => {
                assert_eq!(d.len(), n, "referee must answer every node");
                d
            }
        };
        for d in &downlinks {
            stats.max_downlink_bits = stats.max_downlink_bits.max(d.len_bits());
        }
        // Phase 3: receives.
        for v in 1..=n as u32 {
            let i = (v - 1) as usize;
            inbox[i].sort_by_key(|&(from, _)| from);
            let view = NodeView::new(n, v, g.neighbourhood(v));
            protocol.node_receive(&mut node_states[i], view, round, &inbox[i], &downlinks[i]);
        }
    }
    (None, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiround::{boruvka_connectivity, BoruvkaConnectivity, BoruvkaSpanningForest};
    use crate::BitWriter;
    use referee_graph::{algo, generators, LabelledGraph};

    fn msg(value: u64, width: u32) -> Message {
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        Message::from_writer(w)
    }

    #[test]
    fn round_partials_round_trip_and_pin_their_round() {
        let mut s = RoundShard::new(6, 2, 1, 7);
        let r = s.range();
        for v in r.lo..=r.hi {
            s.ingest(v, msg(v as u64, 9)).unwrap();
        }
        assert!(s.is_complete());
        let p = s.into_partial();
        assert_eq!(p.round(), 7);
        let decoded = RoundPartialState::decode(6, &p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn cross_round_merge_is_rejected() {
        let mut a = RoundPartialState::new(4, 1);
        let b = RoundPartialState::new(4, 2);
        match a.merge(b) {
            Err(DecodeError::Inconsistent(m)) => assert!(m.contains("round"), "{m}"),
            other => panic!("cross-round merge must fail, got {other:?}"),
        }
    }

    #[test]
    fn truncations_never_decode() {
        let mut s = RoundShard::new(5, 1, 0, 3);
        for v in 1..=5u32 {
            s.ingest(v, msg(v as u64, 11)).unwrap();
        }
        let enc = s.into_partial().encode();
        for cut in 0..enc.len_bits() {
            let mut w = BitWriter::new();
            let mut rd = enc.reader();
            for _ in 0..cut {
                w.push_bit(rd.read_bit().unwrap());
            }
            assert!(RoundPartialState::decode(5, &Message::from_writer(w)).is_err());
        }
    }

    #[test]
    fn sharded_driver_matches_monolithic_boruvka() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..10 {
            let g = generators::gnp(30, 0.08, &mut rng);
            let (mono, mono_stats) = boruvka_connectivity(&g);
            for k in 1..=8usize {
                let (out, stats) =
                    run_multiround_sharded(&BoruvkaConnectivity, &g, k, 4 * 8 + 8);
                let verdict = out.expect("terminates").expect("honest run decodes");
                assert_eq!(verdict, mono, "k={k}");
                assert_eq!(verdict, algo::is_connected(&g), "k={k} vs centralized");
                assert_eq!(stats.rounds, mono_stats.rounds, "k={k}");
                assert_eq!(stats.max_uplink_bits, mono_stats.max_uplink_bits, "k={k}");
                assert_eq!(stats.max_downlink_bits, mono_stats.max_downlink_bits, "k={k}");
                assert_eq!(stats.max_link_bits, mono_stats.max_link_bits, "k={k}");
            }
        }
    }

    #[test]
    fn sharded_driver_matches_monolithic_forest() {
        use rand::{rngs::StdRng, SeedableRng};
        let g = generators::gnp(24, 0.1, &mut StdRng::seed_from_u64(17));
        let (mono, _) = crate::multiround::run_multiround(&BoruvkaSpanningForest, &g, 64);
        for k in [2usize, 5, 8] {
            let (out, _) = run_multiround_sharded(&BoruvkaSpanningForest, &g, k, 64);
            assert_eq!(out.unwrap().unwrap(), mono.clone().unwrap().unwrap(), "k={k}");
        }
    }

    #[test]
    fn trivial_sizes_run_under_any_shard_count() {
        for k in [1usize, 3, 8] {
            let (out, _) =
                run_multiround_sharded(&BoruvkaConnectivity, &LabelledGraph::new(0), k, 16);
            assert!(out.unwrap().unwrap());
            let (out, _) =
                run_multiround_sharded(&BoruvkaConnectivity, &LabelledGraph::new(1), k, 16);
            assert!(out.unwrap().unwrap());
            let (out, _) =
                run_multiround_sharded(&BoruvkaConnectivity, &LabelledGraph::new(2), k, 16);
            assert!(!out.unwrap().unwrap());
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let g = generators::path(9);
        let (out, _) = run_multiround_sharded(&BoruvkaConnectivity, &g, 0, 40);
        assert!(out.unwrap().unwrap());
    }
}
