//! A 1000-session fleet over real loopback TCP — the wirenet
//! acceptance demo.
//!
//! Phase 1: 1000 multiplexed sessions over 8 connections, outcomes
//! compared **bit-for-bit** against in-memory `PerfectTransport` runs of
//! the same sessions on the same graphs.
//!
//! Phase 2: deliberate wire corruption (one bit flipped in every third
//! frame, after MAC computation) — every tampered frame that reaches
//! the referee is rejected by MAC verification, zero undetected, and
//! every affected session fails closed instead of computing on garbage.
//!
//! Run: `cargo run --release --example wirenet_fleet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{Percentiles, SloCheck};
use referee_one_round::prelude::*;
use referee_one_round::protocol::easy::EdgeCountProtocol;
use referee_one_round::protocol::trace::dump_if_armed;
use referee_simnet::{AggregateMetrics, OneRoundSession, PerfectTransport, SessionId};
use referee_wirenet::{AuthKey, FleetClient, FleetServer, TamperConfig};

fn fleet_graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(10 + i % 24, 0.2, &mut rng)).collect()
}

fn main() {
    let sessions = 1000usize;
    let conns = 8usize;
    let key = AuthKey::from_seed(2011);
    let graphs = fleet_graphs(sessions, 2011);
    let protocol = EdgeCountProtocol;

    // ---- Phase 1: honest fleet, wire vs memory ------------------------
    let server = FleetServer::spawn(key).expect("bind loopback");
    let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
    println!(
        "phase 1: {sessions} sessions multiplexed over {conns} TCP connections to {}",
        server.addr()
    );

    let scheduler = Scheduler::new(8, 8);
    let t0 = std::time::Instant::now();
    let wire: Vec<_> = scheduler.run_indexed(sessions, |i| {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        OneRoundSession::new(&protocol, &graphs[i]).with_session(id).run(&mut transport)
    });
    let wall = t0.elapsed().as_secs_f64();

    let mut expected_frames = 0u64;
    for (i, (report, g)) in wire.iter().zip(&graphs).enumerate() {
        let mut perfect = PerfectTransport::new();
        let memory = OneRoundSession::new(&protocol, g).run(&mut perfect);
        let (wire_out, memory_out) = (
            report.outcome.as_ref().expect("wire delivery"),
            memory.outcome.as_ref().expect("memory delivery"),
        );
        assert_eq!(wire_out, memory_out, "session {i}: wire ≠ memory");
        assert_eq!(
            report.metrics.stats.total_message_bits, memory.metrics.stats.total_message_bits,
            "session {i}: bit accounting differs"
        );
        expected_frames += g.n() as u64;
    }

    let client_stats = client.metrics();
    // Keep the stitched flight-recorder timeline around: if the SLO
    // gate below trips, the failure dumps its own post-mortem.
    let stitched = {
        let mut t = server.stitched_trace();
        t.merge(&client.stitched_trace());
        t
    };
    let server_stats = server.stop();
    assert_eq!(server_stats.frames_received, expected_frames);
    assert_eq!(server_stats.mac_rejects, 0);
    assert_eq!(client_stats.mac_rejects, 0);
    assert!(
        client_stats.frames_per_write() > 1.0,
        "coalescing write path must batch frames per write(2) under load, got {:.2}",
        client_stats.frames_per_write()
    );
    println!("  all {sessions} outcomes bit-for-bit identical to in-memory runs ✓");
    println!("  client: {client_stats}");
    println!("  server: {server_stats}");
    println!("  wall {wall:.3}s ≈ {:.0} sessions/s over real sockets", sessions as f64 / wall);

    // Per-session wire latency, with an optional SLO gate: CI arms it
    // via REFEREE_SLO_P99_US / REFEREE_SLO_P999_US and a tail-latency
    // regression fails the run.
    let mut agg = AggregateMetrics::default();
    for report in &wire {
        agg.absorb(&report.metrics, report.outcome.is_ok());
    }
    let p = Percentiles::from_hist(&agg.latency).expect("sessions ran");
    println!("  latency: {}", agg.latency);
    let slo = SloCheck::from_env();
    if let Err(e) = slo.check("wirenet_fleet phase 1", &p) {
        dump_if_armed("wirenet_fleet_slo", &stitched);
        panic!("{e}");
    }
    slo.enforce("wirenet_fleet phase 1", &p);

    // ---- Phase 2: wire corruption, all MAC-rejected -------------------
    let corrupt_sessions = 64usize;
    let server = FleetServer::spawn(key).expect("bind loopback");
    let client = FleetClient::connect(server.addr(), corrupt_sessions, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });
    println!(
        "\nphase 2: {corrupt_sessions} sessions, one connection each, \
         every 3rd frame corrupted on the wire"
    );

    let mut failed_closed = 0usize;
    for (i, g) in graphs.iter().take(corrupt_sessions).enumerate() {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        let report = OneRoundSession::new(&protocol, g).with_session(id).run(&mut transport);
        match report.outcome {
            Err(_) => failed_closed += 1,
            Ok(out) => {
                // Only possible if no tampered frame hit this session's
                // connection — then the outcome must still be correct.
                assert_eq!(out.as_ref().unwrap(), &g.m(), "session {i} computed on garbage");
            }
        }
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert_eq!(
        server_stats.frames_received, server_stats.frames_sent,
        "the server must echo exactly what it authenticated"
    );
    assert!(server_stats.mac_rejects > 0, "no corruption ever reached MAC verification");
    println!(
        "  {} frames tampered; {} connections poisoned by MAC verification; \
         {failed_closed}/{corrupt_sessions} sessions failed closed ✓",
        client_stats.tampered, server_stats.mac_rejects
    );
    println!("  zero corrupted frames accepted (every echo was MAC-authenticated) ✓");
    println!("  server: {server_stats}");

    println!("\nwirenet fleet demo completed ✓");
}
