//! Interchangeable neighbourhood decoders (the E9 ablation).
//!
//! Both answer the same query the referee issues while pruning: *given a
//! vertex of remaining degree `d ≤ k` and its (updated) power sums, which
//! `d` vertex IDs produced them?* Corollary 1 of the paper guarantees the
//! answer is unique.

use crate::newton;
use referee_graph::VertexId;
use referee_protocol::DecodeError;
use referee_wideint::UBig;
use std::collections::HashMap;

/// A strategy for inverting power-sum sketches.
pub trait NeighbourhoodDecoder {
    /// Recover the sorted ID set of size `degree` whose power sums are
    /// `sums` (length ≥ `degree`), with IDs in `1..=n`.
    fn decode(
        &self,
        n: usize,
        degree: usize,
        sums: &[UBig],
    ) -> Result<Vec<VertexId>, DecodeError>;

    /// Name for reports/benches.
    fn name(&self) -> &'static str;
}

/// Which decoder a protocol should use (runtime-selectable for benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderKind {
    /// Algebraic decoder — polynomial time, the default.
    Newton,
    /// The paper's Lemma 3 lookup table — `O(n^k)` preprocessing.
    Table,
}

/// Algebraic decoder: Newton's identities + integer root extraction
/// (see [`crate::newton`]). No preprocessing, `O(k² + n·k)` per decode
/// in wide-integer operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewtonDecoder;

impl NeighbourhoodDecoder for NewtonDecoder {
    fn decode(
        &self,
        n: usize,
        degree: usize,
        sums: &[UBig],
    ) -> Result<Vec<VertexId>, DecodeError> {
        newton::decode_neighbours(n, degree, sums)
    }

    fn name(&self) -> &'static str {
        "newton"
    }
}

/// The paper's Lemma 3 decoder: "enumerate all k-subsets of {1..n} and
/// compute the values b = A(k,n)·x … and store them in a table N".
///
/// We key a hash map by the power-sum vector (the paper sorts and
/// binary-searches; a hash map gives the same `O(n^k)` space with O(1)
/// expected lookups — the distinction the paper cares about, table size,
/// is identical). Preprocessing enumerates all subsets of size ≤ k, so
/// this is only feasible for small `n^k`; [`TableDecoder::new`] guards
/// with a budget.
pub struct TableDecoder {
    n: usize,
    k: usize,
    /// power-sum vector (k entries, as limb blobs) → sorted ID subset
    table: HashMap<Vec<UBig>, Vec<VertexId>>,
}

impl TableDecoder {
    /// Safety budget: refuse to build tables above this many entries.
    pub const MAX_ENTRIES: usize = 8_000_000;

    /// Build the table for parameters `(n, k)`. Errors (rather than OOMs)
    /// if `Σ_{d≤k} C(n,d)` exceeds [`TableDecoder::MAX_ENTRIES`].
    pub fn new(n: usize, k: usize) -> Result<Self, DecodeError> {
        let mut entries: u128 = 0;
        let mut binom: u128 = 1;
        for d in 0..=k.min(n) {
            if d > 0 {
                binom = binom * (n - d + 1) as u128 / d as u128;
            }
            entries += binom;
            if entries > Self::MAX_ENTRIES as u128 {
                return Err(DecodeError::Invalid(format!(
                    "lookup table for n={n}, k={k} needs > {} entries",
                    Self::MAX_ENTRIES
                )));
            }
        }
        let mut table = HashMap::with_capacity(entries as usize);
        // DFS over subsets of size ≤ k in lexicographic order.
        let mut subset: Vec<VertexId> = Vec::with_capacity(k);
        let mut sums = vec![UBig::zero(); k];
        fn rec(
            n: usize,
            k: usize,
            start: VertexId,
            subset: &mut Vec<VertexId>,
            sums: &mut Vec<UBig>,
            table: &mut HashMap<Vec<UBig>, Vec<VertexId>>,
        ) {
            table.insert(sums.clone(), subset.clone());
            if subset.len() == k {
                return;
            }
            for v in start..=n as VertexId {
                subset.push(v);
                let mut saved = Vec::with_capacity(k);
                for (p, s) in sums.iter_mut().enumerate() {
                    saved.push(s.clone());
                    s.add_assign_ref(&UBig::pow_of(v as u64, (p + 1) as u32));
                }
                rec(n, k, v + 1, subset, sums, table);
                subset.pop();
                *sums = saved;
            }
        }
        rec(n, k, 1, &mut subset, &mut sums, &mut table);
        Ok(TableDecoder { n, k, table })
    }

    /// Number of table entries (for the ablation report).
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl NeighbourhoodDecoder for TableDecoder {
    fn decode(
        &self,
        n: usize,
        degree: usize,
        sums: &[UBig],
    ) -> Result<Vec<VertexId>, DecodeError> {
        if n != self.n {
            return Err(DecodeError::Invalid(format!(
                "table built for n={}, queried with n={n}",
                self.n
            )));
        }
        if degree > self.k {
            return Err(DecodeError::Invalid(format!(
                "degree {degree} exceeds table arity {}",
                self.k
            )));
        }
        let key = sums[..self.k.min(sums.len())].to_vec();
        match self.table.get(&key) {
            Some(ids) if ids.len() == degree => Ok(ids.clone()),
            Some(ids) => Err(DecodeError::Inconsistent(format!(
                "sums decode to {} ids but degree field says {degree}",
                ids.len()
            ))),
            None => Err(DecodeError::Inconsistent(
                "power sums match no ≤k-subset (corrupted sketch?)".into(),
            )),
        }
    }

    fn name(&self) -> &'static str {
        "table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums_of(ids: &[u32], k: usize) -> Vec<UBig> {
        (1..=k)
            .map(|p| {
                let mut acc = UBig::zero();
                for &i in ids {
                    acc.add_assign_ref(&UBig::pow_of(i as u64, p as u32));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn table_matches_newton_on_all_subsets() {
        let (n, k) = (9usize, 3usize);
        let table = TableDecoder::new(n, k).unwrap();
        // all subsets of {1..9} of size ≤ 3
        for mask in 0u32..(1 << n) {
            let ids: Vec<u32> = (1..=n as u32).filter(|&i| mask >> (i - 1) & 1 == 1).collect();
            if ids.len() > k {
                continue;
            }
            let sums = sums_of(&ids, k);
            let t = table.decode(n, ids.len(), &sums).unwrap();
            let nw = NewtonDecoder.decode(n, ids.len(), &sums).unwrap();
            assert_eq!(t, ids);
            assert_eq!(nw, ids);
        }
    }

    #[test]
    fn table_entry_count() {
        // Σ_{d=0..2} C(5,d) = 1 + 5 + 10 = 16
        let table = TableDecoder::new(5, 2).unwrap();
        assert_eq!(table.entries(), 16);
    }

    #[test]
    fn table_budget_guard() {
        assert!(TableDecoder::new(10_000, 4).is_err());
    }

    #[test]
    fn table_rejects_mismatched_queries() {
        let table = TableDecoder::new(6, 2).unwrap();
        let sums = sums_of(&[2, 5], 2);
        assert!(table.decode(7, 2, &sums).is_err()); // wrong n
        assert!(table.decode(6, 3, &sums).is_err()); // degree > k
        assert!(table.decode(6, 1, &sums).is_err()); // degree mismatch
        let garbage = vec![UBig::from(999u64), UBig::from(1u64)];
        assert!(table.decode(6, 2, &garbage).is_err());
    }

    #[test]
    fn decoder_names() {
        assert_eq!(NewtonDecoder.name(), "newton");
        assert_eq!(TableDecoder::new(4, 1).unwrap().name(), "table");
    }
}
