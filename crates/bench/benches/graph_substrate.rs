//! Substrate benches: the graph algorithms every experiment leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, generators};

fn bench_traversals(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/traversal");
    group.sample_size(10);
    for n in [1024usize, 8192] {
        let mut rng = StdRng::seed_from_u64(40);
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bfs", n), &g, |b, g| {
            b.iter(|| algo::bfs_distances(g, 1))
        });
        group.bench_with_input(BenchmarkId::new("components", n), &g, |b, g| {
            b.iter(|| algo::component_count(g))
        });
        group.bench_with_input(BenchmarkId::new("degeneracy_ordering", n), &g, |b, g| {
            b.iter(|| algo::degeneracy_ordering(g).degeneracy)
        });
    }
    group.finish();
}

fn bench_subgraph_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/detect");
    group.sample_size(10);
    for n in [512usize, 2048] {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::gnp(n, 6.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("count_triangles", n), &g, |b, g| {
            b.iter(|| algo::count_triangles(g))
        });
        group.bench_with_input(BenchmarkId::new("count_squares", n), &g, |b, g| {
            b.iter(|| algo::count_squares(g))
        });
        group.bench_with_input(BenchmarkId::new("girth", n), &g, |b, g| {
            b.iter(|| algo::girth(g))
        });
    }
    group.finish();
}

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/diameter");
    group.sample_size(10);
    for side in [16usize, 32] {
        let g = generators::grid(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &g, |b, g| {
            b.iter(|| algo::diameter(g).finite())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traversals, bench_subgraph_detection, bench_diameter);
criterion_main!(benches);
