//! Replay and resume for remotely-placed shards.
//!
//! A shard that lives on another host holds **volatile** state: the
//! rounds it is still collecting. If the host dies, that state dies
//! with it — but everything needed to rebuild it deterministically has
//! already passed through whoever routed the traffic. A
//! [`ShardJournal`] is that coordinator-side record: the uplinks routed
//! to one shard of one session, kept exactly until the shard's partial
//! for their round **commits** (is received and merged), then dropped.
//! On reconnect the coordinator replays the journal into a fresh shard,
//! which therefore re-emits bit-identical partials for every
//! uncommitted round — the property the cross-host chaos tests pin.
//!
//! The companion wire encoding, [`encode_resume`]/[`decode_resume`],
//! is the session announcement a coordinator sends a (re)registered
//! shard host: network size, the round to resume collecting at (1 for a
//! fresh session), and the session's round cap. One-round shards are
//! the `resume == 1`, single-round special case; a committed one-round
//! shard ([`ShardJournal::committed`]) is simply never re-announced.

use crate::{BitWriter, DecodeError, Message};
use referee_graph::VertexId;
use std::collections::BTreeMap;

/// How [`ShardJournal::record`] classified one routed uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recorded {
    /// The uplink belongs to an uncommitted round: journaled; forward
    /// it to the shard host.
    Forward,
    /// The uplink's round is already committed — its partial has
    /// merged, so the shard host no longer holds that round. The caller
    /// decides the policy: a one-round service reports the straggler as
    /// a poison notice (it is by definition a duplicate or stray), a
    /// multi-round service counts committed history as orphaned.
    Stale,
}

/// The coordinator-side replay record for one shard of one session.
#[derive(Debug, Clone)]
pub struct ShardJournal {
    n: usize,
    /// The earliest round whose partial has **not** committed — where a
    /// reconnecting shard host resumes collecting.
    resume_round: u32,
    /// Routed uplinks per uncommitted round, in routing order.
    buffered: BTreeMap<u32, Vec<(VertexId, Message)>>,
}

impl ShardJournal {
    /// A fresh journal for a size-`n` session (resume round 1).
    pub fn new(n: usize) -> ShardJournal {
        ShardJournal { n, resume_round: 1, buffered: BTreeMap::new() }
    }

    /// The network size this journal is for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The round a reconnecting shard host must resume collecting at.
    pub fn resume_round(&self) -> u32 {
        self.resume_round
    }

    /// Whether round 1 has committed — for a one-round shard, whether
    /// the shard's (only) range partial has merged.
    pub fn committed(&self) -> bool {
        self.resume_round > 1
    }

    /// Journaled uplinks not yet covered by a committed partial.
    pub fn buffered(&self) -> usize {
        self.buffered.values().map(Vec::len).sum()
    }

    /// Record one routed uplink. Out-of-range senders (0 or `> n`)
    /// poison whichever round the shard is currently collecting, so
    /// they are journaled under the resume round regardless of the
    /// round they claimed.
    pub fn record(&mut self, round: u32, sender: VertexId, payload: Message) -> Recorded {
        let round =
            if sender == 0 || sender as usize > self.n { self.resume_round } else { round };
        if round < self.resume_round {
            return Recorded::Stale;
        }
        self.buffered.entry(round).or_default().push((sender, payload));
        Recorded::Forward
    }

    /// The shard's partial for `round` merged: drop every journaled
    /// round up to and including it and advance the resume round. Late
    /// or repeated commits are idempotent.
    pub fn commit(&mut self, round: u32) {
        if round >= self.resume_round {
            self.resume_round = round + 1;
            self.buffered = self.buffered.split_off(&(round + 1));
        }
    }

    /// Every journaled uplink of every uncommitted round, rounds
    /// ascending, routing order within a round — exactly what to resend
    /// after [`encode_resume`]-announcing a reconnected shard host.
    pub fn replay(&self) -> impl Iterator<Item = (u32, VertexId, &Message)> {
        self.buffered
            .iter()
            .flat_map(|(round, ups)| ups.iter().map(move |(v, m)| (*round, *v, m)))
    }
}

/// Serialize a resume announcement: `n:32`, `resume_round:32`,
/// `round_cap:32` — what a coordinator sends a (re)registered shard
/// host to (re)open one session.
pub fn encode_resume(n: usize, resume_round: u32, round_cap: u32) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(n as u64, 32);
    w.write_bits(resume_round as u64, 32);
    w.write_bits(round_cap as u64, 32);
    Message::from_writer(w)
}

/// Inverse of [`encode_resume`], validating the exact layout and that
/// the resume round is at least 1.
pub fn decode_resume(msg: &Message) -> Result<(usize, u32, u32), DecodeError> {
    let mut r = msg.reader();
    let n = r.read_bits(32)? as usize;
    let resume = r.read_bits(32)? as u32;
    let cap = r.read_bits(32)? as u32;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after resume announcement".into()));
    }
    if resume == 0 {
        return Err(DecodeError::Invalid("resume round must be at least 1".into()));
    }
    Ok((n, resume, cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(v: u64, w: u32) -> Message {
        let mut wr = BitWriter::new();
        wr.write_bits(v, w);
        Message::from_writer(wr)
    }

    #[test]
    fn records_forward_until_commit_then_stale() {
        let mut j = ShardJournal::new(4);
        assert_eq!(j.record(1, 2, msg(2, 8)), Recorded::Forward);
        assert_eq!(j.record(1, 3, msg(3, 8)), Recorded::Forward);
        assert_eq!(j.buffered(), 2);
        assert!(!j.committed());
        j.commit(1);
        assert!(j.committed());
        assert_eq!(j.buffered(), 0);
        assert_eq!(j.record(1, 2, msg(2, 8)), Recorded::Stale);
    }

    #[test]
    fn out_of_range_senders_journal_under_the_resume_round() {
        let mut j = ShardJournal::new(4);
        j.commit(2);
        // An out-of-range stray claiming an ancient round still poisons
        // the round the shard is on — it must be journaled, not staled.
        assert_eq!(j.record(1, 99, Message::empty()), Recorded::Forward);
        assert_eq!(j.record(1, 0, Message::empty()), Recorded::Forward);
        let replayed: Vec<(u32, VertexId)> = j.replay().map(|(r, v, _)| (r, v)).collect();
        assert_eq!(replayed, vec![(3, 99), (3, 0)]);
    }

    #[test]
    fn replay_is_round_ordered_and_commit_prunes() {
        let mut j = ShardJournal::new(6);
        j.record(2, 5, msg(5, 4));
        j.record(1, 4, msg(4, 4));
        j.record(1, 6, msg(6, 4));
        let order: Vec<(u32, VertexId)> = j.replay().map(|(r, v, _)| (r, v)).collect();
        assert_eq!(order, vec![(1, 4), (1, 6), (2, 5)]);
        j.commit(1);
        assert_eq!(j.resume_round(), 2);
        let order: Vec<(u32, VertexId)> = j.replay().map(|(r, v, _)| (r, v)).collect();
        assert_eq!(order, vec![(2, 5)]);
        // Commits are idempotent and never regress.
        j.commit(1);
        assert_eq!(j.resume_round(), 2);
    }

    #[test]
    fn resume_codec_round_trips_and_validates() {
        let enc = encode_resume(17, 5, 40);
        assert_eq!(decode_resume(&enc).unwrap(), (17, 5, 40));
        assert!(decode_resume(&encode_resume(0, 0, 0)).is_err(), "resume 0 is invalid");
        // Truncations never decode.
        let bits = enc.len_bits();
        for cut in 0..bits {
            let mut w = BitWriter::new();
            let mut rd = enc.reader();
            for _ in 0..cut {
                w.push_bit(rd.read_bit().unwrap());
            }
            assert!(decode_resume(&Message::from_writer(w)).is_err(), "cut {cut}");
        }
    }
}
