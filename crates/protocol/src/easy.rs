//! The **positive boundary**: properties that *are* frugally decidable
//! in one round.
//!
//! The paper's title asks "what can(not) be computed in one round"; §II
//! and §III chart the negative and reconstruction sides. This module
//! charts the easy positive side the paper leaves implicit: any property
//! that is a function of *locally computable `O(log n)`-bit statistics*
//! is one-round decidable — each node ships the statistic, the referee
//! aggregates. Examples, each with exact bit accounting:
//!
//! | protocol | message | referee learns |
//! |----------|---------|----------------|
//! | [`EdgeCountProtocol`] | `deg(v)` | `m` (handshake lemma) |
//! | [`DegreeSequenceProtocol`] | `deg(v)` | the full degree multiset |
//! | [`DegreeExtremesProtocol`] | `deg(v)` | `δ(G)`, `Δ(G)`, regularity, isolated vertices |
//! | [`NeighbourhoodSumProtocol`] | `deg(v), Σ ID(w)` | §III.A's forest sketch prefix — enough to *verify* a claimed edge list |
//! | [`EulerianDegreeProtocol`] | `deg(v) mod 2` (1 bit!) | the degree-parity condition for Eulerian circuits |
//!
//! All of these sit strictly below the `O(log n)` budget, several at
//! `O(1)` bits. Contrast with §II: the *existence of a single edge
//! between two specific classes of nodes* (squares, triangles, short
//! diameter) is already out of reach — degree statistics survive
//! aggregation, adjacency structure does not.

use crate::model::{NodeView, OneRoundProtocol};
use crate::{bits_for, BitWriter, DecodeError, Message};

/// Shared local function: a bare degree field of `bits_for(n−1)` bits.
fn degree_message(view: NodeView<'_>) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(view.degree() as u64, bits_for(view.n.saturating_sub(1)));
    Message::from_writer(w)
}

/// Parse a degree vector sent by [`degree_message`] nodes.
fn parse_degrees(n: usize, messages: &[Message]) -> Result<Vec<usize>, DecodeError> {
    if messages.len() != n {
        return Err(DecodeError::Inconsistent(format!(
            "expected {n} messages, got {}",
            messages.len()
        )));
    }
    let width = bits_for(n.saturating_sub(1));
    let mut degrees = Vec::with_capacity(n);
    for (i, m) in messages.iter().enumerate() {
        let mut r = m.reader();
        let d = r.read_bits(width)? as usize;
        if d >= n.max(1) {
            return Err(DecodeError::OutOfRange(format!("degree {d} ≥ n at node {}", i + 1)));
        }
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid(format!("trailing bits at node {}", i + 1)));
        }
        degrees.push(d);
    }
    // Handshake lemma: a spoofed degree vector with odd sum is
    // detectably inconsistent.
    if degrees.iter().sum::<usize>() % 2 != 0 {
        return Err(DecodeError::Inconsistent("odd degree sum (handshake lemma)".into()));
    }
    Ok(degrees)
}

/// One-round frugal edge counting: `⌈log₂ n⌉` bits per node.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeCountProtocol;

impl OneRoundProtocol for EdgeCountProtocol {
    /// `Ok(m)`, the number of edges.
    type Output = Result<usize, DecodeError>;

    fn name(&self) -> String {
        "edge count (handshake)".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        degree_message(view)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        Ok(parse_degrees(n, messages)?.iter().sum::<usize>() / 2)
    }
}

/// One-round frugal degree sequence: the referee recovers the exact
/// degree of every node (and hence any degree-sequence property:
/// graphicality, regularity, degeneracy *lower bounds*, …).
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeSequenceProtocol;

impl OneRoundProtocol for DegreeSequenceProtocol {
    /// `Ok(degrees)`, indexed by node (position `i` = node `i + 1`).
    type Output = Result<Vec<usize>, DecodeError>;

    fn name(&self) -> String {
        "degree sequence".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        degree_message(view)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        parse_degrees(n, messages)
    }
}

/// Aggregate answers of [`DegreeExtremesProtocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeExtremes {
    /// Minimum degree δ(G).
    pub min_degree: usize,
    /// Maximum degree Δ(G).
    pub max_degree: usize,
    /// Is the graph d-regular (δ = Δ)?
    pub regular: bool,
    /// Nodes of degree 0.
    pub isolated: Vec<u32>,
}

/// One-round min/max-degree, regularity and isolated-vertex report.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeExtremesProtocol;

impl OneRoundProtocol for DegreeExtremesProtocol {
    /// Aggregate degree statistics.
    type Output = Result<DegreeExtremes, DecodeError>;

    fn name(&self) -> String {
        "degree extremes / regularity".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        degree_message(view)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        let degrees = parse_degrees(n, messages)?;
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        Ok(DegreeExtremes {
            min_degree,
            max_degree,
            regular: min_degree == max_degree,
            isolated: degrees
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d == 0)
                .map(|(i, _)| (i + 1) as u32)
                .collect(),
        })
    }
}

/// One-round degree-parity (Eulerian condition): **one bit** per node.
/// The referee learns whether every degree is even — together with
/// connectivity (which one round conjecturally cannot decide!) this is
/// the Eulerian circuit condition. A sharp example of the boundary: the
/// parity half is 1-bit easy, the connectivity half is the paper's open
/// question.
#[derive(Debug, Clone, Copy, Default)]
pub struct EulerianDegreeProtocol;

impl OneRoundProtocol for EulerianDegreeProtocol {
    /// `Ok(all degrees even?)`.
    type Output = Result<bool, DecodeError>;

    fn name(&self) -> String {
        "degree parity (Eulerian condition)".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let mut w = BitWriter::new();
        w.write_bits((view.degree() % 2) as u64, 1);
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let mut odd = 0usize;
        for m in messages {
            let mut r = m.reader();
            odd += r.read_bits(1)? as usize;
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing bits".into()));
            }
        }
        if !odd.is_multiple_of(2) {
            return Err(DecodeError::Inconsistent("odd number of odd degrees".into()));
        }
        Ok(odd == 0)
    }
}

/// One-round `(deg, Σ neighbour IDs)` verification sketch — the §III.A
/// forest message *without* the pruning decoder. The referee cannot in
/// general reconstruct from it (Lemma 1 forbids it beyond forests), but
/// it can **verify** any claimed graph `H`: if `H` matches every node's
/// `(deg, Σ)` it is consistent with the messages. Used by the
/// soundness-hardening layer and as the cheapest useful "fingerprint" of
/// a topology (≈ 3 log₂ n bits).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighbourhoodSumProtocol;

/// Output of [`NeighbourhoodSumProtocol`]: per-node `(degree, id-sum)`.
pub type NeighbourhoodSums = Vec<(usize, u64)>;

impl OneRoundProtocol for NeighbourhoodSumProtocol {
    /// `Ok(per-node (deg, Σ ID))`.
    type Output = Result<NeighbourhoodSums, DecodeError>;

    fn name(&self) -> String {
        "neighbourhood-sum fingerprint".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n = view.n;
        let mut w = BitWriter::new();
        w.write_bits(view.degree() as u64, bits_for(n.saturating_sub(1)));
        // Σ ID(w) ≤ (n−1)·n < n², so 2·bits_for(n) bits always fit.
        let sum: u64 = view.neighbours.iter().map(|&v| v as u64).sum();
        w.write_bits(sum, 2 * bits_for(n));
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let dwidth = bits_for(n.saturating_sub(1));
        let swidth = 2 * bits_for(n);
        let mut out = Vec::with_capacity(n);
        for m in messages {
            let mut r = m.reader();
            let d = r.read_bits(dwidth)? as usize;
            let s = r.read_bits(swidth)?;
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing bits".into()));
            }
            out.push((d, s));
        }
        Ok(out)
    }
}

/// Check a claimed topology `h` against the fingerprints collected by
/// [`NeighbourhoodSumProtocol`]: every node's degree and neighbour-ID
/// sum must match. Sound (a lying `h` on any single vertex's
/// neighbourhood *sum* is caught); not complete as identification
/// (different graphs can share all fingerprints — that is Lemma 1's
/// whole point, exhibited by `reductions::collision`).
pub fn verify_against_sums(h: &referee_graph::LabelledGraph, sums: &NeighbourhoodSums) -> bool {
    if h.n() != sums.len() {
        return false;
    }
    h.vertices().all(|v| {
        let (d, s) = sums[(v - 1) as usize];
        h.degree(v) == d && h.neighbourhood(v).iter().map(|&w| w as u64).sum::<u64>() == s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::referee::run_protocol;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{generators, LabelledGraph};

    #[test]
    fn edge_count_exact_across_families() {
        let mut rng = StdRng::seed_from_u64(1);
        for g in [
            generators::path(20),
            generators::complete(12),
            generators::gnp(30, 0.2, &mut rng),
            LabelledGraph::new(7),
        ] {
            let out = run_protocol(&EdgeCountProtocol, &g);
            assert_eq!(out.output.unwrap(), g.m(), "{g:?}");
            // strictly frugal: one field of ⌈log₂(n−1+1)⌉ bits
            assert!(out.stats.max_message_bits <= bits_for(g.n()) as usize);
        }
    }

    #[test]
    fn degree_sequence_matches_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::gnp(25, 0.3, &mut rng);
        let seq = run_protocol(&DegreeSequenceProtocol, &g).output.unwrap();
        for v in g.vertices() {
            assert_eq!(seq[(v - 1) as usize], g.degree(v));
        }
    }

    #[test]
    fn extremes_and_regularity() {
        let cyc = generators::cycle(11).unwrap();
        let e = run_protocol(&DegreeExtremesProtocol, &cyc).output.unwrap();
        assert_eq!(
            e,
            DegreeExtremes { min_degree: 2, max_degree: 2, regular: true, isolated: vec![] }
        );

        let star = generators::star(6).unwrap();
        let e = run_protocol(&DegreeExtremesProtocol, &star).output.unwrap();
        assert_eq!((e.min_degree, e.max_degree, e.regular), (1, 5, false));

        let mut with_isolated = generators::path(3).grow(5);
        with_isolated.add_edge(4, 5).unwrap(); // leave nobody isolated
        let e = run_protocol(&DegreeExtremesProtocol, &with_isolated).output.unwrap();
        assert!(e.isolated.is_empty());
        let lonely = generators::path(3).grow(5);
        let e = run_protocol(&DegreeExtremesProtocol, &lonely).output.unwrap();
        assert_eq!(e.isolated, vec![4, 5]);
    }

    #[test]
    fn eulerian_parity_one_bit() {
        let cyc = generators::cycle(9).unwrap(); // all even
        let out = run_protocol(&EulerianDegreeProtocol, &cyc);
        assert!(out.output.unwrap());
        assert_eq!(out.stats.max_message_bits, 1);
        let path = generators::path(9); // two odd endpoints
        assert!(!run_protocol(&EulerianDegreeProtocol, &path).output.unwrap());
    }

    #[test]
    fn fingerprint_verifies_truth_and_catches_lies() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(18, 0.25, &mut rng);
        let sums = run_protocol(&NeighbourhoodSumProtocol, &g).output.unwrap();
        assert!(verify_against_sums(&g, &sums));
        // A graph with one edge moved fails the check.
        let mut lie = g.clone();
        let e = lie.edges().next().unwrap();
        lie.remove_edge(e.0, e.1).unwrap();
        let mut other = (1..=18u32).filter(|&v| v != e.0 && v != e.1 && !lie.has_edge(e.0, v));
        let w = other.next().unwrap();
        lie.add_edge(e.0, w).unwrap();
        assert!(!verify_against_sums(&lie, &sums));
        // Wrong size fails fast.
        assert!(!verify_against_sums(&generators::path(4), &sums));
    }

    #[test]
    fn malformed_vectors_rejected_not_guessed() {
        // Spoofed degree vector with odd sum: caught by the handshake.
        let n = 4;
        let width = bits_for(n - 1);
        let spoof = |d: u64| {
            let mut w = BitWriter::new();
            w.write_bits(d, width);
            Message::from_writer(w)
        };
        let msgs = vec![spoof(1), spoof(1), spoof(1), spoof(0)];
        assert!(EdgeCountProtocol.global(n, &msgs).is_err());
        // Degree ≥ n: out of range.
        let msgs = vec![spoof(3), spoof(3), spoof(3), spoof(3)];
        assert!(EdgeCountProtocol.global(n, &msgs).is_ok());
        // wrong message count
        assert!(EdgeCountProtocol.global(5, &[Message::empty()]).is_err());
        assert!(EulerianDegreeProtocol.global(3, [Message::empty(); 1].as_ref()).is_err());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = LabelledGraph::new(0);
        assert_eq!(run_protocol(&EdgeCountProtocol, &g).output.unwrap(), 0);
        assert!(run_protocol(&EulerianDegreeProtocol, &g).output.unwrap());
        assert!(run_protocol(&DegreeSequenceProtocol, &g).output.unwrap().is_empty());
    }
}
