//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ..) { .. } }` macro form, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, integer range strategies (`a..b`, `a..=b`, `a..`),
//! tuples, `proptest::collection::vec`, `any::<T>()`, and
//! `Strategy::prop_map`.
//!
//! **No shrinking**: on failure the offending inputs are printed verbatim.
//! Case generation is deterministic per test name (override the count
//! with `ProptestConfig::with_cases` or the `PROPTEST_CASES` env var).

pub mod collection;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Config and runner
// ---------------------------------------------------------------------------

/// Runner configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Drives one `proptest!`-generated test function.
pub struct TestRunner {
    rng: StdRng,
    config: ProptestConfig,
    passed: u32,
    rejected: u32,
}

impl TestRunner {
    /// Seeded deterministically from the test name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRunner { rng: StdRng::seed_from_u64(seed), config, passed: 0, rejected: 0 }
    }

    /// Should another case be generated?
    pub fn more_cases(&self) -> bool {
        self.passed < self.config.cases
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Record one executed case (possibly a caught panic), aborting the
    /// test with context on failure.
    pub fn record_catch(
        &mut self,
        case: String,
        result: std::thread::Result<Result<(), TestCaseError>>,
    ) {
        match result {
            Ok(Ok(())) => self.passed += 1,
            Ok(Err(TestCaseError::Reject)) => {
                self.rejected += 1;
                assert!(
                    self.rejected < 65_536,
                    "proptest: too many prop_assume! rejections ({} passed)",
                    self.passed
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest case failed: {msg}\n  inputs: {case}")
            }
            Err(payload) => {
                eprintln!("proptest case panicked\n  inputs: {case}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of random values (shim: generation only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filter generated values (cases failing `f` are rejected and
    /// retried, with a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive candidates");
    }
}

/// Uniform draw helpers (62 draws a raw word; width-reduced by modulo —
/// the bias is < 2⁻¹¹ for every range in this workspace).
macro_rules! impl_int_strategies {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add((raw_wide(rng) as $wide % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // full domain
                    return lo.wrapping_add(raw_wide(rng) as $t);
                }
                lo.wrapping_add((raw_wide(rng) as $wide % span) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(raw_wide(rng) as $t);
                }
                lo.wrapping_add((raw_wide(rng) as $wide % span) as $t)
            }
        }
    )*};
}

fn raw_wide(rng: &mut StdRng) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

impl_int_strategies!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128,
    i8 => u128, i16 => u128, i32 => u128, i64 => u128, isize => u128, i128 => u128
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(A.0, B.1, C.2, D.3, E.4));

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw one value uniformly from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                raw_wide(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The main entry point: wraps property functions into `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __runner = $crate::TestRunner::new(__config, stringify!($name));
                while __runner.more_cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), __runner.rng());)+
                    let mut __case = String::new();
                    $(__case.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "), &$arg
                    ));)+
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            }
                        )
                    );
                    __runner.record_catch(__case, __result);
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failing inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
            __l, __r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Reject the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respected(a in 3u32..17, b in 5usize..=9, c in 1u64..) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!(c >= 1);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((any::<u64>(), 1u32..=64), 0..20)) {
            prop_assert!(v.len() < 20);
            for &(_, w) in &v {
                prop_assert!((1..=64).contains(&w));
            }
        }

        #[test]
        fn maps_and_assume(n in (2usize..50).prop_map(|x| x * 2)) {
            prop_assume!(n != 4);
            prop_assert!(n % 2 == 0 && n != 4);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("inputs: x ="), "message: {msg}");
    }

    #[test]
    fn signed_full_domain() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = -(1i128 << 62)..(1i128 << 62);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((-(1i128 << 62)..(1i128 << 62)).contains(&v));
        }
    }
}
