//! Property tests for `referee-wideint`, using `u128` as the reference
//! oracle where results fit, plus algebraic-law checks beyond 128 bits.

use proptest::prelude::*;
use referee_wideint::{IBig, UBig};

fn ub(v: u128) -> UBig {
    UBig::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0..u128::MAX / 2, b in 0..u128::MAX / 2) {
        prop_assert_eq!(ub(a) + ub(b), ub(a + b));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(ub(hi) - ub(lo), ub(hi - lo));
        prop_assert_eq!(ub(lo).checked_sub(&ub(hi)).is_none(), hi > lo);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(ub(a as u128) * ub(b as u128), ub(a as u128 * b as u128));
    }

    #[test]
    fn divrem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = ub(a).divrem(&ub(b)).unwrap();
        prop_assert_eq!(q, ub(a / b));
        prop_assert_eq!(r, ub(a % b));
    }

    #[test]
    fn divrem_reconstructs_large(
        a in proptest::collection::vec(any::<u64>(), 1..12),
        b in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let a = UBig::from_limbs(a);
        let b = UBig::from_limbs(b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    fn mul_distributes_over_add(
        a in proptest::collection::vec(any::<u64>(), 0..8),
        b in proptest::collection::vec(any::<u64>(), 0..8),
        c in proptest::collection::vec(any::<u64>(), 0..8),
    ) {
        let (a, b, c) = (UBig::from_limbs(a), UBig::from_limbs(b), UBig::from_limbs(c));
        prop_assert_eq!(
            a.mul_ref(&b.add_ref(&c)),
            a.mul_ref(&b).add_ref(&a.mul_ref(&c))
        );
    }

    #[test]
    fn shl_shr_round_trip(a in proptest::collection::vec(any::<u64>(), 0..6), sh in 0usize..300) {
        let a = UBig::from_limbs(a);
        prop_assert_eq!(a.shl(sh).shr(sh), a);
    }

    #[test]
    fn display_parse_round_trip(a in proptest::collection::vec(any::<u64>(), 0..6)) {
        let a = UBig::from_limbs(a);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<UBig>().unwrap(), a);
    }

    #[test]
    fn pow_agrees_with_repeated_mul(base in 0u64..1000, exp in 0u32..12) {
        let mut acc = UBig::one();
        for _ in 0..exp {
            acc = acc.mul_small(base);
        }
        prop_assert_eq!(UBig::from(base).pow(exp), acc.clone());
        prop_assert_eq!(UBig::pow_of(base, exp), acc);
    }

    #[test]
    fn ibig_matches_i128(a in -(1i128 << 62)..(1i128 << 62), b in -(1i128 << 62)..(1i128 << 62)) {
        let ia = IBig::from(a as i64);
        let ib_ = IBig::from(b as i64);
        let to_ibig = |v: i128| {
            if v < 0 {
                -IBig::from(UBig::from(v.unsigned_abs()))
            } else {
                IBig::from(UBig::from(v as u128))
            }
        };
        prop_assert_eq!(&ia + &ib_, to_ibig(a + b));
        prop_assert_eq!(&ia - &ib_, to_ibig(a - b));
        prop_assert_eq!(&ia * &ib_, to_ibig(a * b));
        prop_assert_eq!(ia.cmp(&ib_), a.cmp(&b));
    }

    #[test]
    fn bit_len_bounds_value(a in proptest::collection::vec(any::<u64>(), 0..6)) {
        let a = UBig::from_limbs(a);
        prop_assume!(!a.is_zero());
        let bl = a.bit_len();
        // 2^(bl-1) <= a < 2^bl
        prop_assert!(a >= UBig::one().shl(bl - 1));
        prop_assert!(a < UBig::one().shl(bl));
    }
}
