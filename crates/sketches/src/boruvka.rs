//! Sketch-space Borůvka, factored out of the connectivity protocol so
//! the bipartiteness (double cover), spanning-forest and
//! k-edge-connectivity protocols can reuse it.
//!
//! Input: for each of `V` logical vertices, one [`L0Sampler`] per phase
//! (fresh keys per phase). The driver sums each phase's sketches over
//! the current components (linearity ⇒ a boundary sketch), samples one
//! crossing edge per component, merges, and records the edge. Every
//! component with outgoing edges shrinks by at least half per successful
//! phase, so `⌈log₂ V⌉ + 1` phases suffice when no sample fails;
//! failures only *delay* merges and can only leave the final component
//! count too **high**, never too low (every verified sample is a real
//! edge — a wrong edge needs a 2⁻⁶⁴ fingerprint collision).

use crate::l0::{EdgeSlot, L0Sampler};
use referee_graph::dsu::Dsu;

/// Outcome of a sketch-Borůvka run.
#[derive(Debug, Clone)]
pub struct BoruvkaOutcome {
    /// Final union–find component count (≥ the true count w.h.p.; equal
    /// when `boundary_clear`).
    pub components: usize,
    /// The merge edges discovered, as `(u, v)` with 1-based vertex ids
    /// in the sketch universe. These form a forest.
    pub forest: Vec<(u32, u32)>,
    /// Phases in which at least one sample failed on a nonzero sketch
    /// candidate (diagnostic; misses may still be recovered later).
    pub stalled_phases: usize,
    /// Post-hoc certificate: every final component's summed sketch is
    /// zero in **every** phase — i.e. no component has a crossing edge
    /// left, so the partition (and forest) is exact up to the
    /// per-phase zero-test error (a nonzero vector sketching to zero in
    /// all ~log n independent phases).
    pub boundary_clear: bool,
}

/// Run Borůvka on per-vertex, per-phase sketches.
///
/// `sketches[v][p]` is vertex `v + 1`'s phase-`p` sketch. All sketches
/// of a phase must share keys (stream = phase). The slot universe is
/// `C(universe_n, 2)` edge slots over `universe_n` vertices.
pub fn boruvka_components(
    universe_n: usize,
    sketches: &[Vec<L0Sampler>],
    phases: usize,
) -> BoruvkaOutcome {
    let v_count = sketches.len();
    let mut dsu = Dsu::new(v_count);
    let mut forest = Vec::new();
    let mut stalled_phases = 0;
    for phase in 0..phases {
        if dsu.components() == 1 {
            break;
        }
        let mut comp_sketch: std::collections::HashMap<usize, L0Sampler> =
            std::collections::HashMap::new();
        for (v, node_sketches) in sketches.iter().enumerate() {
            let root = dsu.find(v);
            comp_sketch
                .entry(root)
                .and_modify(|s| s.merge(&node_sketches[phase]))
                .or_insert_with(|| node_sketches[phase].clone());
        }
        let mut progressed = false;
        let mut any_nonzero_missed = false;
        for (_root, sk) in comp_sketch {
            match sk.sample() {
                Some(slot) => {
                    // Range-check before decoding: corrupted sketches
                    // must not feed garbage into the slot inversion.
                    if slot.0 >= EdgeSlot::universe(universe_n) {
                        continue;
                    }
                    let (u, v) = slot.decode();
                    if u as usize > v_count || v as usize > v_count {
                        continue;
                    }
                    if dsu.union((u - 1) as usize, (v - 1) as usize) {
                        forest.push((u, v));
                        progressed = true;
                    }
                }
                None => {
                    if !sk.is_zero() {
                        any_nonzero_missed = true;
                    }
                }
            }
        }
        if !progressed && any_nonzero_missed {
            stalled_phases += 1;
        }
    }
    // Final-boundary certificate: sum every phase's sketches over the
    // final partition; any nonzero component sketch witnesses a missed
    // crossing edge.
    let mut boundary_clear = true;
    'check: for phase in 0..phases {
        let mut comp_sketch: std::collections::HashMap<usize, L0Sampler> =
            std::collections::HashMap::new();
        for (v, node_sketches) in sketches.iter().enumerate() {
            let root = dsu.find(v);
            comp_sketch
                .entry(root)
                .and_modify(|s| s.merge(&node_sketches[phase]))
                .or_insert_with(|| node_sketches[phase].clone());
        }
        if comp_sketch.values().any(|s| !s.is_zero()) {
            boundary_clear = false;
            break 'check;
        }
    }
    BoruvkaOutcome { components: dsu.components(), forest, stalled_phases, boundary_clear }
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::{generators, LabelledGraph, VertexId};

    fn sketch_graph(g: &LabelledGraph, seed: u64, phases: usize) -> Vec<Vec<L0Sampler>> {
        let n = g.n();
        (1..=n as VertexId)
            .map(|v| {
                (0..phases)
                    .map(|p| {
                        let mut sk = L0Sampler::new(n, seed, p as u64);
                        for &w in g.neighbourhood(v) {
                            let (a, b) = (v.min(w), v.max(w));
                            let sign = if v == a { 1 } else { -1 };
                            sk.update(EdgeSlot::encode(a, b), sign);
                        }
                        sk
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn counts_components_of_multi_component_graphs() {
        let g = generators::path(10)
            .disjoint_union(&generators::cycle(7).unwrap())
            .disjoint_union(&generators::complete(5));
        let phases = 7;
        let sketches = sketch_graph(&g, 99, phases);
        let out = boruvka_components(g.n(), &sketches, phases);
        assert_eq!(out.components, 3);
        // Forest has n − #components edges when everything merged.
        assert_eq!(out.forest.len(), g.n() - 3);
    }

    #[test]
    fn forest_edges_are_real_edges() {
        let g = generators::grid(5, 5);
        let phases = 7;
        let sketches = sketch_graph(&g, 1234, phases);
        let out = boruvka_components(g.n(), &sketches, phases);
        for &(u, v) in &out.forest {
            assert!(g.has_edge(u, v), "sampled non-edge ({u},{v})");
        }
        assert_eq!(out.components, 1);
    }

    #[test]
    fn empty_graph_all_isolated() {
        let g = LabelledGraph::new(6);
        let sketches = sketch_graph(&g, 7, 4);
        let out = boruvka_components(6, &sketches, 4);
        assert_eq!(out.components, 6);
        assert!(out.forest.is_empty());
        assert_eq!(out.stalled_phases, 0);
    }
}
