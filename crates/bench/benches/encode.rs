//! E16 (runtime side): Algorithm 3 encoding cost — "the computation can be
//! performed in O(n) local time" (Lemma 2). Sweeps n at fixed k and k at
//! fixed n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::PowerSumSketch;
use referee_graph::generators;

fn bench_encode_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/vs_n_k3");
    group.sample_size(20);
    for n in [256usize, 1024, 4096, 16384] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_k_degenerate(n, 3, 1.0, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // whole local phase: every vertex's sketch + serialization
                let mut total_bits = 0usize;
                for v in 1..=n as u32 {
                    let sk = PowerSumSketch::compute(n, v, g.neighbourhood(v), 3);
                    total_bits += sk.to_message(n, 3).len_bits();
                }
                total_bits
            })
        });
    }
    group.finish();
}

fn bench_encode_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode/vs_k_n4096");
    group.sample_size(20);
    let n = 4096usize;
    for k in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_k_degenerate(n, k, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut total_bits = 0usize;
                for v in 1..=n as u32 {
                    let sk = PowerSumSketch::compute(n, v, g.neighbourhood(v), k);
                    total_bits += sk.to_message(n, k).len_bits();
                }
                total_bits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode_vs_n, bench_encode_vs_k);
criterion_main!(benches);
