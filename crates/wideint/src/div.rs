//! Division for [`UBig`]: single-limb short division plus Knuth's
//! Algorithm D for multi-limb divisors.
//!
//! Short division drives decimal formatting (repeated division by 10^19) and
//! Newton's identities (exact division of `Σ (-1)^i p_i e_{j-i}` by `j`).
//! Algorithm D is used by the counting experiments when comparing
//! information budgets, e.g. `2^(n²/2) / 2^(c·n·log n)`.

use crate::limb::div2by1;
use crate::{UBig, WideError};
use std::ops::{Div, Rem};

impl UBig {
    /// Divide by a single limb: `(quotient, remainder)`.
    pub fn divrem_small(&self, d: u64) -> Result<(UBig, u64), WideError> {
        if d == 0 {
            return Err(WideError::DivideByZero);
        }
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let (qi, r) = div2by1(rem, self.limbs[i], d);
            q[i] = qi;
            rem = r;
        }
        Ok((UBig::from_limbs(q), rem))
    }

    /// Full division: `(self / other, self % other)`.
    ///
    /// Knuth TAOCP Vol. 2, Algorithm 4.3.1 D, with the classic two-limb
    /// quotient estimation and at most two downward corrections.
    pub fn divrem(&self, other: &UBig) -> Result<(UBig, UBig), WideError> {
        if other.is_zero() {
            return Err(WideError::DivideByZero);
        }
        if self < other {
            return Ok((UBig::zero(), self.clone()));
        }
        if other.limbs.len() == 1 {
            let (q, r) = self.divrem_small(other.limbs[0])?;
            return Ok((q, UBig::from(r)));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = other.limbs.last().unwrap().leading_zeros() as usize;
        let u_big = self.shl(shift);
        let v = other.shl(shift);
        let n = v.limbs.len();
        let mut u = u_big.limbs.clone();
        u.push(0); // extra scratch limb u[m+n]
        let m = u.len() - n - 1;
        let v_top = v.limbs[n - 1];
        let v_sub = v.limbs[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let top = ((u[j + n] as u128) << 64) | (u[j + n - 1] as u128);
            let mut qhat = top / (v_top as u128);
            let mut rhat = top % (v_top as u128);
            // Correct while the two-limb test shows overestimation.
            while qhat >> 64 != 0
                || qhat * (v_sub as u128) > ((rhat << 64) | (u[j + n - 2] as u128))
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract u[j..j+n] -= q̂ · v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * (v.limbs[i] as u128) + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - ((p as u64) as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;

            if sub < 0 {
                // q̂ was one too large (rare): add v back.
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let (s, c2) = crate::limb::adc(u[j + i], v.limbs[i], c);
                    u[j + i] = s;
                    c = c2;
                }
                u[j + n] = u[j + n].wrapping_add(c);
            }
            q[j] = qhat as u64;
        }

        let rem = UBig::from_limbs(u[..n].to_vec()).shr(shift);
        Ok((UBig::from_limbs(q), rem))
    }
}

impl Div for &UBig {
    type Output = UBig;
    fn div(self, rhs: &UBig) -> UBig {
        self.divrem(rhs).expect("division by zero").0
    }
}

impl Rem for &UBig {
    type Output = UBig;
    fn rem(self, rhs: &UBig) -> UBig {
        self.divrem(rhs).expect("division by zero").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ub(v: u128) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn small_division() {
        let (q, r) = ub(100).divrem_small(7).unwrap();
        assert_eq!((q, r), (ub(14), 2));
        let (q, r) = ub(0).divrem_small(7).unwrap();
        assert_eq!((q, r), (ub(0), 0));
    }

    #[test]
    fn divide_by_zero_is_error() {
        assert_eq!(ub(1).divrem_small(0), Err(WideError::DivideByZero));
        assert!(ub(1).divrem(&UBig::zero()).is_err());
    }

    #[test]
    fn divrem_matches_u128() {
        let vals =
            [1u128, 2, 7, u64::MAX as u128, (u64::MAX as u128) + 1, u128::MAX / 3, u128::MAX];
        for &a in &vals {
            for &b in &vals {
                let (q, r) = ub(a).divrem(&ub(b)).unwrap();
                assert_eq!(q, ub(a / b), "{a} / {b}");
                assert_eq!(r, ub(a % b), "{a} % {b}");
            }
        }
    }

    #[test]
    fn divrem_reconstructs() {
        // q*b + r == a and r < b, on multi-limb values.
        let a = UBig::from_limbs(vec![0xdead_beef, 0xfeed_face, 0x1234_5678, 0x9abc]);
        let b = UBig::from_limbs(vec![0xffff_0001, 0x7fff]);
        let (q, r) = a.divrem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = ub(3).divrem(&ub(u128::MAX)).unwrap();
        assert_eq!(q, UBig::zero());
        assert_eq!(r, ub(3));
    }

    #[test]
    fn correction_step_exercised() {
        // Divisor with small second limb triggers the qhat adjustment loop.
        let a = UBig::from_limbs(vec![0, 0, 1, u64::MAX]);
        let b = UBig::from_limbs(vec![1, 1 << 63]);
        let (q, r) = a.divrem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    fn power_of_two_division() {
        let big = UBig::from(1u64).shl(500);
        let (q, r) = big.divrem(&UBig::from(1u64).shl(123)).unwrap();
        assert_eq!(q, UBig::from(1u64).shl(377));
        assert!(r.is_zero());
    }
}
