//! Regression pin for the router's bounded-FIFO finished-session route
//! eviction (PR 3 hardening): judging more sessions than the FIFO cap
//! (4096) on one connection must evict the oldest finished routes — a
//! straggler for an *evicted* session is treated as the protocol
//! violation it is (unknown session → connection closed), while a
//! straggler for a *recently finished* session is still classified as
//! harmless straggle. Before the cap existed, the route map grew with
//! every session ever judged; this test overflows the bound and proves
//! no stale route survives.

use referee_protocol::{BitWriter, Message};
use referee_simnet::{Envelope, SessionId, Transport};
use referee_wirenet::{AuthKey, FleetClient, FleetServer};

/// Must exceed the router's `FINISHED_ROUTE_CAP` (4096).
const SESSIONS: u64 = 4200;

fn one_bit() -> Message {
    let mut w = BitWriter::new();
    w.push_bit(true);
    Message::from_writer(w)
}

#[test]
fn finished_route_fifo_evicts_and_keeps_nothing_stale() {
    let key = AuthKey::from_seed(4096);
    let server = FleetServer::spawn_sharded(key, 2).expect("bind");
    let client = FleetClient::connect(server.addr(), 1, key).expect("connect");

    // Judge more sessions than the FIFO holds, all on one connection.
    for id in 0..SESSIONS {
        client
            .verify_session(SessionId(id), 1, [(1u32, one_bit())])
            .expect("honest session verifies");
    }

    // A straggler for a *recent* finished session is harmless straggle:
    // the route is still in the FIFO, the connection must stay open.
    {
        let mut t = client.transport(SessionId(SESSIONS - 1));
        t.send(Envelope {
            session: SessionId(SESSIONS - 1),
            round: 1,
            from: 1,
            to: 0,
            payload: one_bit(),
        });
    }
    client
        .verify_session(SessionId(SESSIONS), 1, [(1u32, one_bit())])
        .expect("the connection must survive a straggler for a recent session");

    // A straggler for an *evicted* session finds no route: the router
    // must treat it as traffic for a never-announced session and close
    // the connection — the stale route did not survive the overflow.
    {
        let mut t = client.transport(SessionId(0));
        t.send(Envelope {
            session: SessionId(0),
            round: 1,
            from: 1,
            to: 0,
            payload: one_bit(),
        });
    }
    let err = client
        .verify_session(SessionId(SESSIONS + 1), 1, [(1u32, one_bit())])
        .expect_err("the connection must be poisoned after an evicted-route straggler");
    let _ = err; // any delivery failure is fine; the point is: closed, not hanging

    let stats = server.stop();
    assert_eq!(stats.verdict_frames, SESSIONS + 1);
    assert!(stats.orphan_frames >= 1, "the recent straggler must count as straggle");
    assert!(stats.decode_rejects >= 1, "the evicted straggler must be a protocol violation");
    assert_eq!(stats.mac_rejects, 0);
}
