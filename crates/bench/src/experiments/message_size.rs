//! E15 + E16: message-size scaling.
//!
//! * E16 — Lemma 2: the sketch size grows as `Θ(k² log n)`; for fixed `k`
//!   the ratio bits/log₂(n) flattens (frugal), and for fixed `n` the bits
//!   grow quadratically in `k`.
//! * E15 — footnote 1: the naive adjacency protocol is frugal exactly on
//!   bounded-degree families; its ratio diverges with Δ.

use referee_degeneracy::{lemma2_bound_bits, DegeneracyProtocol};
use referee_graph::generators;
use referee_protocol::baseline::AdjacencyListProtocol;
use referee_protocol::{FrugalityAudit, FrugalityReport};

/// E16a: bits vs n at fixed k (grid family; sizes must be 8·x).
pub fn sketch_vs_n(k: usize, sizes: &[usize]) -> FrugalityReport {
    let p = DegeneracyProtocol::new(k);
    FrugalityAudit::new(&p, sizes.iter().copied()).run(|n| generators::grid(n / 8, 8))
}

/// E16b: exact Lemma 2 bits vs k at fixed n (closed form, no simulation).
pub fn sketch_vs_k(n: usize, ks: &[usize]) -> Vec<(usize, usize, f64)> {
    ks.iter()
        .map(|&k| {
            let bits = lemma2_bound_bits(n, k);
            (k, bits, bits as f64 / (k * k) as f64)
        })
        .collect()
}

/// E15: adjacency baseline vs degree — frugal on caterpillars with fixed
/// legs, divergent as legs grow with n.
pub fn baseline_vs_degree(sizes: &[usize], legs: usize) -> FrugalityReport {
    let p = AdjacencyListProtocol;
    FrugalityAudit::new(&p, sizes.iter().copied()).run(move |n| {
        // caterpillar with `legs` legs per spine vertex: n = spine·(legs+1)
        let spine = n / (legs + 1);
        let g = generators::caterpillar(spine, legs);
        assert_eq!(g.n(), n, "choose sizes divisible by legs+1");
        g
    })
}

/// E15 (divergent side): adjacency baseline on stars (Δ = n − 1).
pub fn baseline_on_stars(sizes: &[usize]) -> FrugalityReport {
    let p = AdjacencyListProtocol;
    FrugalityAudit::new(&p, sizes.iter().copied()).run(|n| generators::star(n).expect("n ≥ 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_ratio_flattens() {
        let rep = sketch_vs_n(2, &[64, 256, 1024]);
        assert!(!rep.ratio_diverges(0.2), "{:?}", rep.rows);
        assert!(rep.worst_ratio() < 12.0);
    }

    #[test]
    fn sketch_quadratic_in_k() {
        // Against the refined model (k(k+1)/2 + k + 2)·⌈log₂(n+1)⌉ the
        // measured widths sit within ±25% at every k (the residual is
        // per-field ceiling rounding).
        let n = 1024usize;
        let logn = referee_protocol::bits_for(n) as f64;
        for (k, bits, _) in sketch_vs_k(n, &[1, 2, 4, 8]) {
            let model = ((k * (k + 1) / 2 + k + 2) as f64) * logn;
            let ratio = bits as f64 / model;
            assert!((0.75..=1.25).contains(&ratio), "k={k}: {bits} vs model {model}");
        }
    }

    #[test]
    fn baseline_flat_on_bounded_degree_divergent_on_stars() {
        let flat = baseline_vs_degree(&[64, 256, 1024], 3);
        assert!(!flat.ratio_diverges(0.2));
        let steep = baseline_on_stars(&[64, 256, 1024]);
        assert!(steep.ratio_diverges(1.0));
    }
}
