//! E4: the reduction simulations Δ-from-Γ, end-to-end, with the message
//! blow-ups stated at the end of §II:
//!
//! > if there exists a one-round protocol detecting squares (resp.,
//! > triangles, resp., long distances) … using messages of k(n) bits per
//! > node, then there exist one-round protocols reconstructing …
//! > using k(2n) (resp. 3k(n+3)) (resp. 2k(n+1)) bits.
//!
//! With the adjacency oracle as Γ, `k(m) = (deg_gadget + 1)·⌈log₂(m+1)⌉`,
//! so the expected Δ sizes are computable in closed form and compared
//! against the measured maxima.

use rand::{rngs::StdRng, SeedableRng};
use referee_graph::generators;
use referee_protocol::{bits_for, run_protocol};
use referee_reductions::oracle::{DiameterOracle, SquareOracle, TriangleOracle};
use referee_reductions::{DiameterReduction, SquareReduction, TriangleReduction};

/// One reduction measurement.
#[derive(Debug, Clone)]
pub struct BlowupRow {
    /// Reduction name.
    pub reduction: &'static str,
    /// Input size n.
    pub n: usize,
    /// Whether Δ reconstructed the input exactly.
    pub exact: bool,
    /// Measured max Δ message bits.
    pub delta_bits: usize,
    /// Paper-form prediction (see module docs).
    pub predicted_bits: usize,
    /// Bundling overhead bits beyond the prediction (gamma prefixes).
    pub overhead_bits: i64,
}

/// Run all three reductions on size-`n` members of their families.
pub fn run(n: usize, seed: u64) -> Vec<BlowupRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();

    // Theorem 1: square-free family; Δ message = Γ at size 2n on a vertex
    // of gadget degree deg+1 ⇒ (deg+2)·bits_for(2n). No bundling.
    let g = generators::random_square_free(n, &mut rng);
    let max_deg = g.max_degree();
    let out = run_protocol(&SquareReduction::new(SquareOracle), &g);
    let predicted = (max_deg + 2) * bits_for(2 * n) as usize;
    rows.push(BlowupRow {
        reduction: "Δ₁ squares (k(2n))",
        n,
        exact: out.output == g,
        delta_bits: out.stats.max_message_bits,
        predicted_bits: predicted,
        overhead_bits: out.stats.max_message_bits as i64 - predicted as i64,
    });

    // Theorem 2: arbitrary graphs; Δ bundles 3 Γ-messages at size n+3.
    let g = generators::gnp(n, 0.5, &mut rng);
    let out = run_protocol(&DiameterReduction::new(DiameterOracle), &g);
    // worst vertex: degree deg in G, +2 gadget edges ⇒ (deg+3) fields; the
    // three parts differ by one field, take 3 × the largest + prefixes.
    let max_deg = g.max_degree();
    let part = (max_deg + 3) * bits_for(n + 3) as usize;
    let predicted = 3 * part;
    rows.push(BlowupRow {
        reduction: "Δ₂ diameter (3k(n+3))",
        n,
        exact: out.output.as_ref().ok() == Some(&g),
        delta_bits: out.stats.max_message_bits,
        predicted_bits: predicted,
        overhead_bits: out.stats.max_message_bits as i64 - predicted as i64,
    });

    // Theorem 3: balanced bipartite; Δ bundles 2 Γ-messages at size n+1.
    let g = generators::random_balanced_bipartite(n, 0.4, &mut rng);
    let max_deg = g.max_degree();
    let part = (max_deg + 2) * bits_for(n + 1) as usize;
    let predicted = 2 * part;
    let out = run_protocol(&TriangleReduction::new(TriangleOracle), &g);
    rows.push(BlowupRow {
        reduction: "Δ₃ triangle (2k(n+1))",
        n,
        exact: out.output.as_ref().ok() == Some(&g),
        delta_bits: out.stats.max_message_bits,
        predicted_bits: predicted,
        overhead_bits: out.stats.max_message_bits as i64 - predicted as i64,
    });

    rows
}

/// Render rows.
pub fn to_table(rows: &[BlowupRow]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "reduction".into(),
        "n".into(),
        "exact?".into(),
        "Δ bits (measured)".into(),
        "paper-form bound".into(),
        "overhead".into(),
    ]];
    for r in rows {
        out.push(vec![
            r.reduction.into(),
            r.n.to_string(),
            r.exact.to_string(),
            r.delta_bits.to_string(),
            r.predicted_bits.to_string(),
            format!("{:+}", r.overhead_bits),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_exact_and_bounded() {
        for row in run(10, 42) {
            assert!(row.exact, "{row:?}");
            // measured ≤ prediction + logarithmic bundling overhead
            assert!(row.delta_bits <= row.predicted_bits + 3 * 32, "{row:?}");
        }
    }
}
