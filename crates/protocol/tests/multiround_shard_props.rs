//! Multi-round shard equivalence, pinned (mirroring `shard_props.rs`):
//!
//! * the sharded driver [`run_multiround_sharded`] equals the monolithic
//!   [`run_multiround`] **bit for bit** — same output, same stats — for
//!   any shard count in `1..=8` on arbitrary random graphs, for both
//!   Borůvka protocols;
//! * one round's uplink assembly is invariant under arbitrary arrival
//!   orders and merge shapes (left fold and pairwise tree), including a
//!   full encode/decode round trip of every partial;
//! * faulty per-round streams (duplicates, strays, missing nodes) yield
//!   the same canonical verdict as the monolithic one-round assembler,
//!   with the round stamp preserved through the wire layout.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use referee_graph::generators;
use referee_protocol::multiround::{
    run_multiround, BoruvkaConnectivity, BoruvkaSpanningForest,
};
use referee_protocol::referee::assemble_from_arrivals;
use referee_protocol::shard::multiround::{
    run_multiround_sharded, RoundPartialState, RoundShard,
};
use referee_protocol::shard::{route_arrival, Arrival};
use referee_protocol::{BitWriter, Message};

fn msg(value: u64, width: u32) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(value & ((1u64 << width) - 1), width);
    Message::from_writer(w)
}

/// An arrival multiset for one round of a size-`n` network: mostly one
/// uplink per node, mutated with drops, identical + conflicting
/// duplicates and out-of-range senders, in a shuffled order.
fn arrivals(n: usize, seed: u64) -> Vec<(u32, Message)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(u32, Message)> = Vec::new();
    for v in 1..=n as u32 {
        if rng.gen_bool(0.1) {
            continue; // missing node
        }
        let m = msg(rng.gen_range(0..=u64::MAX >> 16), 29);
        out.push((v, m.clone()));
        if rng.gen_bool(0.1) {
            out.push((v, m)); // identical duplicate
        } else if rng.gen_bool(0.07) {
            out.push((v, msg(rng.gen_range(0..1 << 20), 29))); // conflicting duplicate
        }
    }
    if rng.gen_bool(0.2) {
        let stray =
            if rng.gen_bool(0.3) { 0 } else { n as u32 + rng.gen_range(1..20u64) as u32 };
        out.push((stray, msg(3, 5)));
    }
    out.shuffle(&mut rng);
    out
}

/// Route one round's arrivals into `k` round shards (monolithic
/// duplicate policy), encode/decode every partial when `through_wire`,
/// then merge in a seeded order as a left fold or a pairwise tree.
fn sharded_round_assembly(
    n: usize,
    k: usize,
    round: u32,
    arrivals: &[(u32, Message)],
    seed: u64,
    pairwise: bool,
    through_wire: bool,
) -> Result<Vec<Message>, referee_protocol::DecodeError> {
    let mut shards: Vec<RoundShard> = (0..k).map(|i| RoundShard::new(n, k, i, round)).collect();
    for (sender, m) in arrivals {
        let shard = &mut shards[route_arrival(n, k, *sender)];
        if let Arrival::Duplicate { .. } = shard.ingest(*sender, m.clone()).expect("routed") {
            shard.note_duplicate(*sender);
        }
    }
    let mut partials: Vec<RoundPartialState> = shards
        .into_iter()
        .map(|s| {
            let p = s.into_partial();
            if through_wire {
                let decoded =
                    RoundPartialState::decode(n, &p.encode()).expect("own encoding decodes");
                assert_eq!(decoded, p);
                assert_eq!(decoded.round(), round);
                decoded
            } else {
                p
            }
        })
        .collect();
    partials.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x5eed));
    if pairwise {
        while partials.len() > 1 {
            let mut next = Vec::new();
            let mut it = partials.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge(b).expect("same n and round");
                }
                next.push(a);
            }
            partials = next;
        }
        partials.pop().expect("k >= 1").finish()
    } else {
        let mut acc = RoundPartialState::new(n, round);
        for p in partials {
            acc.merge(p).expect("same n and round");
        }
        acc.finish()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// One round's sharded assembly — any shard count, any arrival
    /// interleaving, any merge shape, with and without the wire codec —
    /// equals the monolithic one-round assembler exactly.
    #[test]
    fn round_assembly_equals_monolithic(
        n in 0usize..40,
        k in 1usize..=8,
        round in 1u32..200,
        seed in any::<u64>(),
    ) {
        let arr = arrivals(n, seed);
        let mono = assemble_from_arrivals(n, arr.iter().cloned());
        let fold = sharded_round_assembly(n, k, round, &arr, seed, false, false);
        let tree = sharded_round_assembly(n, k, round, &arr, seed.wrapping_add(1), true, true);
        prop_assert_eq!(&fold, &mono, "left-fold merge diverged (n={}, k={})", n, k);
        prop_assert_eq!(&tree, &mono, "pairwise-tree merge diverged (n={}, k={})", n, k);
    }

    /// The sharded multi-round driver is bit-for-bit the monolithic
    /// `run_multiround` — identical verdicts *and* stats — for every
    /// shard count in 1..=8, on arbitrary random graphs.
    #[test]
    fn sharded_driver_equals_run_multiround(
        n in 1usize..36,
        p_millis in 20usize..300,
        k in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let g = generators::gnp(
            n,
            p_millis as f64 / 1000.0,
            &mut StdRng::seed_from_u64(seed),
        );
        let cap = 4 * 8 + 8;
        let (mono, mono_stats) = run_multiround(&BoruvkaConnectivity, &g, cap);
        let (shd, shd_stats) = run_multiround_sharded(&BoruvkaConnectivity, &g, k, cap);
        prop_assert_eq!(shd.is_some(), mono.is_some());
        prop_assert_eq!(
            shd.map(|r| r.expect("honest run decodes")),
            mono.map(|r| r.expect("honest run decodes"))
        );
        prop_assert_eq!(shd_stats, mono_stats, "stats diverged at k={}", k);
    }

    /// Same pin for the certificate-producing protocol: the spanning
    /// forest is identical edge for edge under any shard count.
    #[test]
    fn sharded_forest_equals_run_multiround(
        n in 1usize..28,
        k in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let g = generators::gnp(n, 0.12, &mut StdRng::seed_from_u64(seed));
        let (mono, _) = run_multiround(&BoruvkaSpanningForest, &g, 64);
        let (shd, _) = run_multiround_sharded(&BoruvkaSpanningForest, &g, k, 64);
        prop_assert_eq!(
            shd.expect("terminates").expect("decodes"),
            mono.expect("terminates").expect("decodes")
        );
    }
}

/// A replayed partial from a different round refuses to merge — the
/// round stamp travels inside the encoded payload.
#[test]
fn replayed_partial_cannot_cross_rounds() {
    let mut s = RoundShard::new(4, 1, 0, 3);
    for v in 1..=4u32 {
        s.ingest(v, msg(v as u64, 8)).unwrap();
    }
    let p3 = s.into_partial();
    let wire = p3.encode();
    let decoded = RoundPartialState::decode(4, &wire).unwrap();
    assert_eq!(decoded.round(), 3);
    let mut acc = RoundPartialState::new(4, 4);
    assert!(acc.merge(decoded).is_err(), "round-3 partial merged into round 4");
}
