//! Multi-round extension of the model (§IV: "it would be interesting to
//! investigate properties that can(not) be decided by a frugal protocol
//! with fixed number of rounds").
//!
//! The interconnection network is `G` **plus** the referee `v₀` adjacent to
//! everything, under CONGEST semantics: in each round every node may send
//! one `O(log n)`-bit message *per incident link* — so a node talks to its
//! graph neighbours and to the referee, and the referee talks back to every
//! node, each link carrying its own message.
//!
//! Round timing (matching §I.B "perform a local computation … then send and
//! receive one message to (from) each of its neighbors"):
//!
//! 1. every node computes its outgoing messages from its current state;
//! 2. the referee consumes the uplinks and either finishes or emits one
//!    downlink per node;
//! 3. every node ingests its neighbours' messages and its downlink.
//!
//! [`BoruvkaConnectivity`] instantiates this for the paper's main open
//! question — connectivity — showing `O(log n)` rounds suffice even though
//! one round is (conjecturally) not enough: nodes flood component labels to
//! their neighbours, propose crossing edges to the referee, and the referee
//! merges them in a union–find, Borůvka style.

use crate::model::NodeView;
use crate::Message;
use referee_graph::dsu::Dsu;
use referee_graph::{LabelledGraph, VertexId};

/// What the referee does after a round.
pub enum RefereeStep<O> {
    /// Send these downlinks (index `i` goes to node `i + 1`) and continue.
    Continue(Vec<Message>),
    /// Terminate with an output.
    Done(O),
}

/// A multi-round protocol in the CONGEST-with-referee model.
pub trait MultiRoundProtocol {
    /// Referee's final answer.
    type Output;
    /// Per-node local memory.
    type NodeState;
    /// Referee's memory.
    type RefereeState;

    /// Protocol name for reports.
    fn name(&self) -> String;

    /// Initial node state (round 0, before any communication).
    fn node_init(&self, view: NodeView<'_>) -> Self::NodeState;

    /// Initial referee state; the referee knows only `n`.
    fn referee_init(&self, n: usize) -> Self::RefereeState;

    /// Node send step: messages to chosen graph neighbours and the uplink
    /// to the referee. Unlisted neighbours receive [`Message::empty`].
    fn node_send(
        &self,
        state: &Self::NodeState,
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message);

    /// Referee step on the uplink vector (`uplinks[i]` from node `i + 1`).
    fn referee_step(
        &self,
        state: &mut Self::RefereeState,
        n: usize,
        round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<Self::Output>;

    /// Node receive step: neighbour messages from this round (sorted by
    /// sender ID; empty messages included) plus the referee's downlink.
    fn node_receive(
        &self,
        state: &mut Self::NodeState,
        view: NodeView<'_>,
        round: usize,
        from_neighbours: &[(VertexId, Message)],
        from_referee: &Message,
    );
}

/// Per-run measurements of a multi-round execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundStats {
    /// Graph size.
    pub n: usize,
    /// Rounds executed (referee steps taken).
    pub rounds: usize,
    /// Max uplink size over all rounds/nodes, bits.
    pub max_uplink_bits: usize,
    /// Max downlink size over all rounds/nodes, bits.
    pub max_downlink_bits: usize,
    /// Max node→node message size, bits.
    pub max_link_bits: usize,
}

impl MultiRoundStats {
    /// The largest message anywhere divided by log₂ n.
    ///
    /// For `n ≤ 1` the divisor `log₂ n` is degenerate (0 or −∞), so the
    /// ratio is measured against 1 bit — the minimum field width
    /// [`crate::bits_for`] ever produces — instead: single-node and
    /// empty fleets report a small **finite** ratio rather than the old
    /// `f64::INFINITY` sentinel, which tripped `ratio < c` assertions in
    /// sweeps that happened to include tiny graphs.
    pub fn frugality_ratio(&self) -> f64 {
        let max = self.max_uplink_bits.max(self.max_downlink_bits).max(self.max_link_bits);
        if self.n <= 1 {
            return max as f64;
        }
        max as f64 / (self.n as f64).log2()
    }
}

/// Execute a multi-round protocol on `g`, up to `max_rounds` (safety stop).
/// Returns `None` as output if the referee never finished.
///
/// Since the sharded multi-round refactor this is literally the
/// one-shard special case of
/// [`run_multiround_sharded`](crate::shard::multiround::run_multiround_sharded):
/// every round's uplink vector is assembled through a single
/// [`RoundShard`](crate::shard::multiround::RoundShard), and splitting
/// it across any shard count reproduces this function's outputs and
/// stats bit for bit (pinned by property tests).
pub fn run_multiround<P: MultiRoundProtocol>(
    protocol: &P,
    g: &LabelledGraph,
    max_rounds: usize,
) -> (Option<P::Output>, MultiRoundStats) {
    crate::shard::multiround::run_multiround_sharded(protocol, g, 1, max_rounds)
}

// ---------------------------------------------------------------------------
// Borůvka-style connectivity in O(log n) rounds
// ---------------------------------------------------------------------------

/// Node state for [`BoruvkaConnectivity`].
#[derive(Debug, Clone)]
pub struct BoruvkaNodeState {
    /// Current component label (a vertex ID, from the referee's DSU).
    label: VertexId,
    /// Last labels heard from each neighbour (parallel to the sorted
    /// neighbour list; 0 = not heard yet).
    heard: Vec<VertexId>,
}

/// Referee state for [`BoruvkaConnectivity`].
#[derive(Debug)]
pub struct BoruvkaRefereeState {
    dsu: Dsu,
    /// Consecutive rounds without a successful merge.
    quiet_rounds: usize,
}

/// `O(log n)`-round frugal connectivity (§IV "more rounds" extension).
///
/// Every message anywhere is ≤ `5 + ⌈log₂(n+1)⌉` bits (a proposal uplink
/// carries flag + id + a 4-bit MAC tag). Termination: two consecutive
/// merge-free rounds prove the union–find components equal the true
/// components (label staleness is at most one round, so the second quiet
/// round runs on fully current labels).
///
/// The referee *validates* every uplink instead of trusting it: a
/// malformed frame (truncated, trailing bits, out-of-range proposal, MAC
/// mismatch) terminates the run with a [`DecodeError`](crate::DecodeError)
/// rather than panicking or silently merging garbage. The tag is a keyed
/// SipHash-2-4 ([`crate::mac`]) over `(round, sender, id)`, truncated to
/// the [`PROPOSAL_TAG_BITS`]-bit uplink budget: *any* corruption of the
/// id — single-bit or burst — slips through with probability at most
/// `2⁻⁴` per uplink, where the XOR-fold checksum this replaced was blind
/// to whole classes of multi-bit patterns (any pair of id bits four
/// apart). Flag flips still break the length check, and tag flips break
/// themselves, so those remain detected with certainty. Honest runs
/// never produce `Err`; use [`boruvka_connectivity`] for the unwrapped
/// convenience form.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoruvkaConnectivity;

/// MAC-tag width for proposal uplinks — the bits left in the frugality
/// budget after flag and id.
pub const PROPOSAL_TAG_BITS: u32 = 4;

/// Fixed, domain-separated MAC key for proposal uplinks. Nodes and the
/// referee live in one process here, so there is no key-exchange problem
/// to solve; a deployment that separates them provisions per-session
/// keys at the transport layer (`wirenet` does exactly that for whole
/// frames, with the full 64-bit tag).
const UPLINK_MAC_KEY: crate::MacKey = crate::MacKey(*b"boruvka-uplink-k");

/// The truncated keyed tag authenticating one proposal: binds the
/// proposed id to its sender *and* round, so a tag is never valid for
/// any other position in the run.
fn proposal_tag(round: usize, sender_1based: usize, id: u64) -> u64 {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(&(round as u64).to_le_bytes());
    buf[8..16].copy_from_slice(&(sender_1based as u64).to_le_bytes());
    buf[16..].copy_from_slice(&id.to_le_bytes());
    crate::siphash24_truncated(&UPLINK_MAC_KEY, &buf, PROPOSAL_TAG_BITS)
}

/// Append a MAC-tagged proposal (or the 1-bit "no proposal") to `w`.
fn write_proposal(
    w: &mut crate::BitWriter,
    proposal: Option<VertexId>,
    width: u32,
    round: usize,
    sender_1based: usize,
) {
    match proposal {
        Some(nb) => {
            w.push_bit(true);
            w.write_bits(nb as u64, width);
            w.write_bits(proposal_tag(round, sender_1based, nb as u64), PROPOSAL_TAG_BITS);
        }
        None => w.push_bit(false),
    }
}

/// Decode and validate one Borůvka uplink frame: `0` (no proposal) or
/// `1·id·tag` with `id ∈ 1..=n`, bit-exact length, `id ≠ self`, and a
/// verifying MAC tag.
fn decode_proposal(
    up: &Message,
    sender: usize,
    n: usize,
    round: usize,
) -> Result<Option<usize>, crate::DecodeError> {
    use crate::DecodeError;
    let width = crate::bits_for(n);
    let mut r = up.reader();
    let flag = r.read_bit()?;
    if !flag {
        if up.len_bits() != 1 {
            return Err(DecodeError::Invalid(format!(
                "node {} sent {} trailing bits after empty proposal",
                sender + 1,
                up.len_bits() - 1
            )));
        }
        return Ok(None);
    }
    let raw = r.read_bits(width)?;
    let tag = r.read_bits(PROPOSAL_TAG_BITS)?;
    if up.len_bits() != 1 + (width + PROPOSAL_TAG_BITS) as usize {
        return Err(DecodeError::Invalid(format!(
            "node {} proposal frame has wrong length",
            sender + 1
        )));
    }
    if tag != proposal_tag(round, sender + 1, raw) {
        return Err(DecodeError::Inconsistent(format!(
            "node {} proposal failed MAC verification",
            sender + 1
        )));
    }
    let nb = raw as usize;
    if nb < 1 || nb > n {
        return Err(DecodeError::OutOfRange(format!(
            "node {} proposed out-of-range neighbour {nb} (n = {n})",
            sender + 1
        )));
    }
    if nb == sender + 1 {
        return Err(DecodeError::Invalid(format!("node {nb} proposed itself")));
    }
    Ok(Some(nb))
}

impl MultiRoundProtocol for BoruvkaConnectivity {
    type Output = Result<bool, crate::DecodeError>;
    type NodeState = BoruvkaNodeState;
    type RefereeState = BoruvkaRefereeState;

    fn name(&self) -> String {
        "Borůvka connectivity (multi-round)".into()
    }

    fn node_init(&self, view: NodeView<'_>) -> BoruvkaNodeState {
        BoruvkaNodeState { label: view.id, heard: vec![0; view.degree()] }
    }

    fn referee_init(&self, n: usize) -> BoruvkaRefereeState {
        BoruvkaRefereeState { dsu: Dsu::new(n), quiet_rounds: 0 }
    }

    fn node_send(
        &self,
        state: &BoruvkaNodeState,
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message) {
        let width = crate::bits_for(view.n);
        // Broadcast my label to every neighbour.
        let label_msg = {
            let mut w = crate::BitWriter::new();
            w.write_bits(state.label as u64, width);
            Message::from_writer(w)
        };
        let to_nbrs: Vec<(VertexId, Message)> =
            view.neighbours.iter().map(|&nb| (nb, label_msg.clone())).collect();
        // Uplink: propose one neighbour whose heard label differs from mine.
        let mut w = crate::BitWriter::new();
        let proposal = view
            .neighbours
            .iter()
            .zip(&state.heard)
            .find(|&(_, &h)| h != 0 && h != state.label)
            .map(|(&nb, _)| nb);
        write_proposal(&mut w, proposal, width, round, view.id as usize);
        (to_nbrs, Message::from_writer(w))
    }

    fn referee_step(
        &self,
        state: &mut BoruvkaRefereeState,
        n: usize,
        round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<Result<bool, crate::DecodeError>> {
        let width = crate::bits_for(n);
        let mut merged_any = false;
        for (i, up) in uplinks.iter().enumerate() {
            match decode_proposal(up, i, n, round) {
                Err(e) => return RefereeStep::Done(Err(e)),
                Ok(None) => {}
                Ok(Some(nb)) => {
                    if state.dsu.union(i, nb - 1) {
                        merged_any = true;
                    }
                }
            }
        }
        if merged_any {
            state.quiet_rounds = 0;
        } else {
            state.quiet_rounds += 1;
        }
        if state.quiet_rounds >= 2 {
            return RefereeStep::Done(Ok(state.dsu.components() <= 1));
        }
        // Downlink: each node's fresh component label.
        let downlinks = (0..n)
            .map(|i| {
                let label = (state.dsu.find(i) + 1) as u64;
                let mut w = crate::BitWriter::new();
                w.write_bits(label, width);
                Message::from_writer(w)
            })
            .collect();
        RefereeStep::Continue(downlinks)
    }

    fn node_receive(
        &self,
        state: &mut BoruvkaNodeState,
        view: NodeView<'_>,
        _round: usize,
        from_neighbours: &[(VertexId, Message)],
        from_referee: &Message,
    ) {
        let width = crate::bits_for(view.n);
        for (from, msg) in from_neighbours {
            let label = msg.reader().read_bits(width).expect("label field") as VertexId;
            let idx =
                view.neighbours.binary_search(from).expect("message only from neighbours");
            state.heard[idx] = label;
        }
        state.label =
            from_referee.reader().read_bits(width).expect("downlink label") as VertexId;
    }
}

/// Convenience: decide connectivity of `g`, returning `(answer, stats)`.
/// The round cap `4·log₂(n) + 8` is comfortably above the worst case.
pub fn boruvka_connectivity(g: &LabelledGraph) -> (bool, MultiRoundStats) {
    let cap = 4 * (usize::BITS - g.n().leading_zeros()) as usize + 8;
    let (out, stats) = run_multiround(&BoruvkaConnectivity, g, cap);
    let verdict = out
        .expect("Borůvka terminates within the round cap")
        .expect("honest uplinks always decode");
    (verdict, stats)
}

// ---------------------------------------------------------------------------
// Spanning-forest variant: same rounds, richer output
// ---------------------------------------------------------------------------

/// Referee state for [`BoruvkaSpanningForest`].
#[derive(Debug)]
pub struct ForestRefereeState {
    inner: BoruvkaRefereeState,
    forest: Vec<(VertexId, VertexId)>,
}

/// The same Borůvka rounds as [`BoruvkaConnectivity`], but the referee
/// additionally records each merging edge, so the output is a full
/// spanning forest of `G` — demonstrating that the multi-round model
/// yields *certificates*, not just bits (a natural step beyond the §IV
/// decision question).
#[derive(Debug, Clone, Copy, Default)]
pub struct BoruvkaSpanningForest;

impl MultiRoundProtocol for BoruvkaSpanningForest {
    /// Spanning forest edges (canonical `u < v`, sorted), or the decode
    /// failure that aborted the run.
    type Output = Result<Vec<(VertexId, VertexId)>, crate::DecodeError>;
    type NodeState = BoruvkaNodeState;
    type RefereeState = ForestRefereeState;

    fn name(&self) -> String {
        "Borůvka spanning forest (multi-round)".into()
    }

    fn node_init(&self, view: NodeView<'_>) -> BoruvkaNodeState {
        BoruvkaConnectivity.node_init(view)
    }

    fn referee_init(&self, n: usize) -> ForestRefereeState {
        ForestRefereeState { inner: BoruvkaConnectivity.referee_init(n), forest: Vec::new() }
    }

    fn node_send(
        &self,
        state: &BoruvkaNodeState,
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message) {
        BoruvkaConnectivity.node_send(state, view, round)
    }

    fn referee_step(
        &self,
        state: &mut ForestRefereeState,
        n: usize,
        round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<Self::Output> {
        let width = crate::bits_for(n);
        let mut merged_any = false;
        for (i, up) in uplinks.iter().enumerate() {
            match decode_proposal(up, i, n, round) {
                Err(e) => return RefereeStep::Done(Err(e)),
                Ok(None) => {}
                Ok(Some(nb)) => {
                    if state.inner.dsu.union(i, nb - 1) {
                        merged_any = true;
                        let (u, v) = ((i + 1) as VertexId, nb as VertexId);
                        state.forest.push((u.min(v), u.max(v)));
                    }
                }
            }
        }
        if merged_any {
            state.inner.quiet_rounds = 0;
        } else {
            state.inner.quiet_rounds += 1;
        }
        if state.inner.quiet_rounds >= 2 {
            let mut forest = std::mem::take(&mut state.forest);
            forest.sort_unstable();
            return RefereeStep::Done(Ok(forest));
        }
        let downlinks = (0..n)
            .map(|i| {
                let label = (state.inner.dsu.find(i) + 1) as u64;
                let mut w = crate::BitWriter::new();
                w.write_bits(label, width);
                Message::from_writer(w)
            })
            .collect();
        RefereeStep::Continue(downlinks)
    }

    fn node_receive(
        &self,
        state: &mut BoruvkaNodeState,
        view: NodeView<'_>,
        round: usize,
        from_neighbours: &[(VertexId, Message)],
        from_referee: &Message,
    ) {
        BoruvkaConnectivity.node_receive(state, view, round, from_neighbours, from_referee);
    }
}

/// Compute a spanning forest via the multi-round protocol.
pub fn boruvka_spanning_forest(
    g: &LabelledGraph,
) -> (Vec<(VertexId, VertexId)>, MultiRoundStats) {
    let cap = 4 * (usize::BITS - g.n().leading_zeros()) as usize + 8;
    let (out, stats) = run_multiround(&BoruvkaSpanningForest, g, cap);
    let forest =
        out.expect("terminates within the round cap").expect("honest uplinks always decode");
    (forest, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::{algo, generators};

    #[test]
    fn connected_graphs_accepted() {
        for g in [
            generators::path(50),
            generators::cycle(33).unwrap(),
            generators::petersen(),
            generators::complete(20),
            generators::grid(6, 7),
        ] {
            let (ans, stats) = boruvka_connectivity(&g);
            assert!(ans, "connected graph rejected");
            assert!(stats.frugality_ratio() < 3.0, "ratio {}", stats.frugality_ratio());
        }
    }

    #[test]
    fn disconnected_graphs_rejected() {
        let g = generators::path(10).disjoint_union(&generators::path(7));
        let (ans, _) = boruvka_connectivity(&g);
        assert!(!ans);
        let iso = LabelledGraph::new(5);
        let (ans, _) = boruvka_connectivity(&iso);
        assert!(!ans);
    }

    #[test]
    fn matches_centralized_on_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..25 {
            let g = generators::gnp(40, 0.06, &mut rng);
            let (ans, _) = boruvka_connectivity(&g);
            assert_eq!(ans, algo::is_connected(&g), "graph {g:?}");
        }
    }

    #[test]
    fn rounds_logarithmic() {
        // A path is the slowest topology for label flooding per merge
        // round; rounds must stay well under the 4·log₂(n) + 8 cap and
        // grow sublinearly.
        let (_, s256) = boruvka_connectivity(&generators::path(256));
        let (_, s4096) = boruvka_connectivity(&generators::path(4096));
        assert!(s256.rounds <= 40, "rounds {}", s256.rounds);
        assert!(s4096.rounds <= 60, "rounds {}", s4096.rounds);
        // doubling n four times adds only a few rounds
        assert!(s4096.rounds <= s256.rounds + 20);
    }

    #[test]
    fn all_messages_are_frugal() {
        let g = generators::complete(64); // high degree stresses link count
        let (ans, stats) = boruvka_connectivity(&g);
        assert!(ans);
        let logn = 64f64.log2();
        assert!(stats.max_uplink_bits as f64 <= 2.0 * logn);
        assert!(stats.max_downlink_bits as f64 <= 2.0 * logn);
        assert!(stats.max_link_bits as f64 <= 2.0 * logn);
    }

    #[test]
    fn trivial_sizes() {
        let (ans, _) = boruvka_connectivity(&LabelledGraph::new(1));
        assert!(ans);
        let (ans, _) = boruvka_connectivity(&LabelledGraph::new(2));
        assert!(!ans);
    }

    #[test]
    fn tiny_fleets_report_finite_frugality_ratios() {
        // n ≤ 1 used to return f64::INFINITY, tripping every `< c`
        // assertion in sweeps that include tiny graphs. Now the ratio is
        // measured against 1 bit and stays small and finite.
        for n in [0usize, 1] {
            let (_, stats) = boruvka_connectivity(&LabelledGraph::new(n));
            let ratio = stats.frugality_ratio();
            assert!(ratio.is_finite(), "n={n}: ratio {ratio} must be finite");
            assert!(ratio < 3.0, "n={n}: ratio {ratio} out of the frugal band");
        }
        // Explicitly pinned values: no messages at all for n = 0, and
        // the 1-bit "no proposal" uplink for the single node.
        let (_, s0) = boruvka_connectivity(&LabelledGraph::new(0));
        assert_eq!(s0.frugality_ratio(), 0.0);
        let (_, s1) = boruvka_connectivity(&LabelledGraph::new(1));
        assert_eq!(s1.frugality_ratio(), 1.0);
    }

    #[test]
    fn spanning_forest_is_valid() {
        use rand::{rngs::StdRng, SeedableRng};
        use referee_graph::dsu::Dsu;
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..10 {
            let g = generators::gnp(50, 0.06, &mut rng);
            let (forest, stats) = boruvka_spanning_forest(&g);
            // all forest edges are real edges
            for &(u, v) in &forest {
                assert!(g.has_edge(u, v), "phantom edge {u}-{v}");
            }
            // acyclic and component-preserving
            let mut dsu = Dsu::new(g.n());
            for &(u, v) in &forest {
                assert!(dsu.union((u - 1) as usize, (v - 1) as usize), "cycle in forest");
            }
            assert_eq!(dsu.components(), algo::component_count(&g));
            assert_eq!(forest.len(), g.n() - algo::component_count(&g));
            assert!(stats.frugality_ratio() < 3.0);
        }
    }

    #[test]
    fn spanning_forest_of_tree_is_the_tree() {
        use rand::{rngs::StdRng, SeedableRng};
        let t = generators::random_tree(40, &mut StdRng::seed_from_u64(89));
        let (forest, _) = boruvka_spanning_forest(&t);
        let expect: Vec<(u32, u32)> = t.edges().map(|e| (e.0, e.1)).collect();
        assert_eq!(forest, expect);
    }
}
