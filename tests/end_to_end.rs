//! Cross-crate integration tests: full protocol rounds spanning the model,
//! the positive protocol, the reductions and the graph substrate together.

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;
use referee_one_round::protocol::baseline::AdjacencyListProtocol;
use referee_one_round::reductions::oracle::{DiameterOracle, SquareOracle, TriangleOracle};

/// The paper's headline pipeline: sparse classes → one frugal round →
/// exact topology at the referee.
#[test]
fn theorem5_across_all_named_classes() {
    let mut rng = StdRng::seed_from_u64(1);
    let cases: Vec<(&str, usize, LabelledGraph)> = vec![
        ("forest", 1, generators::random_forest(300, 0.9, &mut rng)),
        ("tree", 1, generators::random_tree(300, &mut rng)),
        ("grid (planar)", 2, generators::grid(15, 20)),
        ("cycle", 2, generators::cycle(101).unwrap()),
        ("2-tree (treewidth 2)", 2, generators::k_tree(120, 2, &mut rng)),
        ("4-tree (treewidth 4)", 4, generators::k_tree(80, 4, &mut rng)),
        ("torus", 4, generators::torus(8, 9)),
        ("hypercube Q5", 5, generators::hypercube(5)),
        ("random 3-degenerate", 3, generators::random_k_degenerate(200, 3, 0.9, &mut rng)),
        ("petersen", 3, generators::petersen()),
        ("icosahedron (planar, degeneracy exactly 5)", 5, generators::icosahedron()),
        ("octahedron (planar, degeneracy exactly 4)", 4, generators::octahedron()),
    ];
    for (label, k, g) in cases {
        let report = reconstruct_bounded_degeneracy(&g, k).expect("decodes");
        assert!(report.reconstructed(&g), "{label} (k={k}) failed");
        assert_eq!(
            report.stats.max_message_bits, report.message_bound_bits,
            "{label}: message width must equal the Lemma 2 bound"
        );
    }
}

/// Frugality separation: on a degeneracy-1 family with unbounded degree
/// (stars), the sketch stays O(log n) while the footnote-1 baseline
/// explodes linearly.
#[test]
fn sketch_beats_adjacency_baseline_on_stars() {
    let star = generators::star(2000).unwrap();
    let sketch = run_protocol(&DegeneracyProtocol::new(1), &star);
    let naive = run_protocol(&AdjacencyListProtocol, &star);
    assert_eq!(sketch.output.unwrap(), Reconstruction::Graph(star.clone()));
    assert_eq!(naive.output.unwrap(), star);
    assert!(
        naive.stats.max_message_bits > 50 * sketch.stats.max_message_bits,
        "baseline {} vs sketch {}",
        naive.stats.max_message_bits,
        sketch.stats.max_message_bits
    );
}

/// Δ-from-Γ reductions compose with the simulator across crates.
#[test]
fn all_three_reductions_round_trip() {
    let mut rng = StdRng::seed_from_u64(2);
    let sq_free = generators::random_square_free(12, &mut rng);
    assert_eq!(run_protocol(&SquareReduction::new(SquareOracle), &sq_free).output, sq_free);
    let arbitrary = generators::gnp(10, 0.5, &mut rng);
    assert_eq!(
        run_protocol(&DiameterReduction::new(DiameterOracle), &arbitrary).output.unwrap(),
        arbitrary
    );
    let bip = generators::random_balanced_bipartite(12, 0.4, &mut rng);
    assert_eq!(
        run_protocol(&TriangleReduction::new(TriangleOracle), &bip).output.unwrap(),
        bip
    );
}

/// The reduction stack is *generic over Γ*: plugging the degeneracy
/// protocol's own messages through a wrapper still works. Here Γ is a
/// decision protocol derived from full reconstruction.
#[test]
fn reduction_accepts_any_gamma_implementation() {
    /// A Γ deciding "diameter ≤ 3" built on the adjacency baseline with a
    /// different message layout than the oracle (exercise genericity).
    struct MyGamma;
    impl OneRoundProtocol for MyGamma {
        type Output = bool;
        fn name(&self) -> String {
            "custom Γ".into()
        }
        fn local(&self, view: NodeView<'_>) -> Message {
            AdjacencyListProtocol.local(view)
        }
        fn global(&self, n: usize, messages: &[Message]) -> bool {
            AdjacencyListProtocol
                .global(n, messages)
                .map(|g| algo::diameter_at_most(&g, 3))
                .unwrap_or(false)
        }
    }
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::gnp(9, 0.4, &mut rng);
    assert_eq!(run_protocol(&DiameterReduction::new(MyGamma), &g).output.unwrap(), g);
}

/// Multi-round and partition answers agree with each other and with the
/// centralized truth on the same damaged topologies.
#[test]
fn connectivity_protocols_agree() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..10 {
        let g = generators::gnp(80, 0.03, &mut rng);
        let truth = algo::is_connected(&g);
        let (boruvka, stats) = boruvka_connectivity(&g);
        assert_eq!(boruvka, truth);
        assert!(stats.frugality_ratio() < 3.0);
        for k in [2usize, 8] {
            assert_eq!(partition_connectivity(&g, k).connected, truth);
        }
    }
}

/// Forest protocol and degeneracy k=1 protocol agree on acceptance AND
/// rejection across a mixed bag of inputs.
#[test]
fn forest_and_k1_protocols_agree_everywhere() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..8 {
        let g = generators::gnp(25, 0.06, &mut rng);
        let a = run_protocol(&ForestProtocol, &g).output.unwrap();
        let b = run_protocol(&DegeneracyProtocol::new(1), &g).output.unwrap();
        assert_eq!(a, b, "graph {g:?}");
    }
}

/// Generalized degeneracy extends the reconstructible universe to dense
/// complements without extra message bits.
#[test]
fn generalized_protocol_covers_complements() {
    let mut rng = StdRng::seed_from_u64(6);
    let sparse = generators::random_k_degenerate(40, 2, 1.0, &mut rng);
    let dense = sparse.complement();
    let gen = run_protocol(&GeneralizedDegeneracyProtocol::new(2), &dense);
    let plain = run_protocol(&DegeneracyProtocol::new(2), &dense);
    assert_eq!(gen.output.unwrap(), Reconstruction::Graph(dense));
    assert_eq!(plain.output.unwrap(), Reconstruction::NotInClass);
    // identical message size (the co-sketch is derived, not sent)
    assert_eq!(gen.stats.max_message_bits, plain.stats.max_message_bits);
}

/// Frugality audit wiring: the degeneracy protocol's ratio flattens with
/// n, the adjacency baseline's diverges on cliques.
#[test]
fn audits_distinguish_frugal_from_non_frugal() {
    let sizes = [64usize, 256, 1024];
    let p = DegeneracyProtocol::new(2);
    let frugal = FrugalityAudit::new(&p, sizes).run(|n| generators::grid(n / 8, 8));
    assert!(!frugal.ratio_diverges(0.2), "{:?}", frugal.rows);

    let naive = AdjacencyListProtocol;
    let diverging = FrugalityAudit::new(&naive, sizes).run(generators::complete);
    assert!(diverging.ratio_diverges(0.5));
}
