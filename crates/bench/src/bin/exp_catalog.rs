//! E31: the **service catalog × workload families** grid — every
//! registered catalog service swept over every seeded graph family.
//!
//! Two passes:
//!
//! * **grid**: each (service, family) cell runs its sessions through
//!   the catalog entry's local replay (`CatalogEntry::run_local`, the
//!   same node+referee halves a catalog-mode `FleetServer` serves),
//!   recording sessions/s plus round/bit complexity per cell.
//! * **mixed**: `Scheduler::sweep_mixed` interleaves three services in
//!   one pool; every type-erased outcome is pinned bit-for-bit against
//!   the catalog's local replay of the same session.
//!
//! Emits `BENCH_exp_catalog.json` (one record per grid cell, extras =
//! round/bit complexity) for the bench trajectory.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_catalog`

use referee_bench::{render_table, section, write_bench_json_axis, BenchRecord};
use referee_core::catalog::standard_catalog;
use referee_degeneracy::AdaptiveDegeneracyProtocol;
use referee_graph::generators::GraphFamily;
use referee_graph::LabelledGraph;
use referee_protocol::combinators::OneRoundAsMultiRound;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_protocol::service::{encode_bool_output, encode_graph_output};
use referee_simnet::{MixedLane, Scheduler};
use referee_sketches::SketchConnectivityProtocol;
use std::time::Instant;

const CAP: usize = 64;
const SESSIONS: usize = 48;
const SEED: u64 = 31;

fn family_fleet(family: GraphFamily, sessions: usize) -> Vec<LabelledGraph> {
    (0..sessions)
        .map(|i| family.generate(14 + i % 12, SEED ^ (i as u64).rotate_left(7)))
        .collect()
}

fn main() {
    println!("# E31: catalog services × workload families");
    println!("# expectation: every (service, family) cell completes within the round cap;");
    println!("# adversarial families push their target service toward its worst-case rounds;");
    println!("# mixed-pool outcomes are bit-identical to the catalog's local replay.");

    let catalog = standard_catalog(SEED);
    let families = GraphFamily::standard();
    let scheduler = Scheduler::new(8, 8);
    let mut records: Vec<BenchRecord> = Vec::new();

    // ---- grid: every service over every family ------------------------
    for family in &families {
        let graphs = family_fleet(*family, SESSIONS);
        section(&format!("family {}: {} sessions", family.name(), SESSIONS));
        let mut rows =
            vec![["service", "sess/s", "rounds max", "uplink bits max", "link bits max"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()];
        for entry in catalog.entries() {
            let t0 = Instant::now();
            let results = scheduler.run_indexed(SESSIONS, |i| {
                entry.run_local(&graphs[i], CAP).expect("standard entries have a local half")
            });
            let wall = t0.elapsed().as_secs_f64();
            let mut rounds_max = 0usize;
            let mut uplink_max = 0usize;
            let mut link_max = 0usize;
            for (verdict, stats) in &results {
                assert!(
                    verdict.is_some(),
                    "{} on {} must finish within {CAP} rounds",
                    entry.name(),
                    family.name()
                );
                rounds_max = rounds_max.max(stats.rounds);
                uplink_max = uplink_max.max(stats.max_uplink_bits);
                link_max = link_max.max(stats.max_link_bits);
            }
            let rate = SESSIONS as f64 / wall;
            records.push(
                BenchRecord::new(
                    &format!("{}/{}", entry.name(), family.name()),
                    SESSIONS,
                    rate,
                )
                .with_extra("rounds_max", rounds_max as f64)
                .with_extra("uplink_bits_max", uplink_max as f64)
                .with_extra("link_bits_max", link_max as f64),
            );
            rows.push(vec![
                entry.name().to_string(),
                format!("{rate:.0}"),
                rounds_max.to_string(),
                uplink_max.to_string(),
                link_max.to_string(),
            ]);
        }
        println!("{}", render_table(&rows));
    }

    // ---- mixed: three services interleaved in one scheduler pool ------
    section("mixed pool: boruvka + adaptive-degeneracy + sketch-connectivity");
    let graphs =
        family_fleet(GraphFamily::BoundedTreewidth { width: 3, density: 0.8 }, SESSIONS);
    let sketch = OneRoundAsMultiRound(SketchConnectivityProtocol::new(SEED));
    let lanes = [
        MixedLane::new("boruvka", &BoruvkaConnectivity, encode_bool_output),
        MixedLane::new("adaptive-degeneracy", &AdaptiveDegeneracyProtocol, encode_graph_output),
        MixedLane::new("sketch-connectivity", &sketch, encode_bool_output),
    ];
    let t0 = Instant::now();
    let sweep = scheduler.sweep_mixed(&lanes, &graphs, CAP, None);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(sweep.aggregate.ok, SESSIONS);
    for (i, report) in sweep.reports.iter().enumerate() {
        let entry = catalog.get(&report.service).expect("lane names mirror the catalog");
        let (truth, _) = entry.run_local(&graphs[i], CAP).expect("local half");
        let truth = truth.expect("verdict");
        let got = report.outcome.as_ref().expect("delivered").as_ref().expect("verdict");
        assert_eq!(
            (got.len_bits(), got.as_bytes()),
            (truth.len_bits(), truth.as_bytes()),
            "mixed-pool verdict diverged from local replay for {} session {i}",
            report.service
        );
    }
    println!(
        "{} sessions across {} services: {:.0} sess/s, all outcomes pinned ✓",
        SESSIONS,
        lanes.len(),
        SESSIONS as f64 / wall
    );

    let json =
        write_bench_json_axis("exp_catalog", "sessions", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("catalog × family experiments completed ✓");
}
