//! E1–E3: validate the gadget iff-properties of Theorems 1–3, exhaustively
//! at small `n` and on random sweeps at larger `n`.
//!
//! Paper expectation: **zero** exceptions — these are proved equivalences,
//! so a single counterexample would falsify the reproduction.

use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, enumerate, generators, LabelledGraph};
use referee_reductions::gadgets;

/// Result of one validation sweep.
#[derive(Debug, Clone)]
pub struct GadgetRow {
    /// Which gadget (E1 = diameter, E2 = triangle, E3 = square).
    pub experiment: &'static str,
    /// Description of the graph family swept.
    pub family: String,
    /// Number of (graph, s, t) probes checked.
    pub probes: u64,
    /// Number of iff violations (must be 0).
    pub violations: u64,
}

fn check_all_pairs(
    g: &LabelledGraph,
    mut property: impl FnMut(&LabelledGraph, u32, u32) -> bool,
) -> (u64, u64) {
    let n = g.n() as u32;
    let mut probes = 0;
    let mut violations = 0;
    for s in 1..=n {
        for t in (s + 1)..=n {
            probes += 1;
            if property(g, s, t) != g.has_edge(s, t) {
                violations += 1;
            }
        }
    }
    (probes, violations)
}

/// E1: diameter gadget over all graphs (exhaustive ≤ `n_max`) + random.
pub fn validate_diameter(n_max: usize, random_n: usize, seeds: u64) -> Vec<GadgetRow> {
    let mut rows = Vec::new();
    let mut probes = 0;
    let mut violations = 0;
    for n in 2..=n_max {
        for g in enumerate::all_graphs(n) {
            let (p, v) = check_all_pairs(&g, |g, s, t| {
                algo::diameter_at_most(&gadgets::diameter_gadget(g, s, t), 3)
            });
            probes += p;
            violations += v;
        }
    }
    rows.push(GadgetRow {
        experiment: "E1",
        family: format!("ALL labelled graphs, n ≤ {n_max} (exhaustive)"),
        probes,
        violations,
    });
    let (mut probes, mut violations) = (0, 0);
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(random_n, 0.3, &mut rng);
        let (p, v) = check_all_pairs(&g, |g, s, t| {
            algo::diameter_at_most(&gadgets::diameter_gadget(g, s, t), 3)
        });
        probes += p;
        violations += v;
    }
    rows.push(GadgetRow {
        experiment: "E1",
        family: format!("G({random_n}, 0.3), {seeds} seeds"),
        probes,
        violations,
    });
    rows
}

/// E2: triangle gadget over balanced bipartite graphs.
pub fn validate_triangle(n_max: usize, random_n: usize, seeds: u64) -> Vec<GadgetRow> {
    let mut rows = Vec::new();
    let (mut probes, mut violations) = (0, 0);
    for n in 2..=n_max {
        for g in enumerate::all_balanced_bipartite(n) {
            let (p, v) = check_all_pairs(&g, |g, s, t| {
                algo::has_triangle(&gadgets::triangle_gadget(g, s, t))
            });
            probes += p;
            violations += v;
        }
    }
    rows.push(GadgetRow {
        experiment: "E2",
        family: format!("ALL balanced bipartite, n ≤ {n_max} (exhaustive)"),
        probes,
        violations,
    });
    let (mut probes, mut violations) = (0, 0);
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let g = generators::random_balanced_bipartite(random_n, 0.35, &mut rng);
        let (p, v) = check_all_pairs(&g, |g, s, t| {
            algo::has_triangle(&gadgets::triangle_gadget(g, s, t))
        });
        probes += p;
        violations += v;
    }
    rows.push(GadgetRow {
        experiment: "E2",
        family: format!("random balanced bipartite n = {random_n}, {seeds} seeds"),
        probes,
        violations,
    });
    rows
}

/// E3: square gadget over square-free graphs.
pub fn validate_square(n_max: usize, random_n: usize, seeds: u64) -> Vec<GadgetRow> {
    let mut rows = Vec::new();
    let (mut probes, mut violations) = (0, 0);
    for n in 2..=n_max {
        for g in enumerate::all_graphs(n).filter(|g| !algo::has_square(g)) {
            let (p, v) = check_all_pairs(&g, |g, s, t| {
                algo::has_square(&gadgets::square_gadget(g, s, t))
            });
            probes += p;
            violations += v;
        }
    }
    rows.push(GadgetRow {
        experiment: "E3",
        family: format!("ALL square-free graphs, n ≤ {n_max} (exhaustive)"),
        probes,
        violations,
    });
    let (mut probes, mut violations) = (0, 0);
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let g = generators::random_square_free(random_n, &mut rng);
        let (p, v) =
            check_all_pairs(&g, |g, s, t| algo::has_square(&gadgets::square_gadget(g, s, t)));
        probes += p;
        violations += v;
    }
    rows.push(GadgetRow {
        experiment: "E3",
        family: format!("random maximal square-free n = {random_n}, {seeds} seeds"),
        probes,
        violations,
    });
    rows
}

/// Render any list of gadget rows.
pub fn to_table(rows: &[GadgetRow]) -> Vec<Vec<String>> {
    let mut out =
        vec![vec!["exp".into(), "family".into(), "probes".into(), "violations".into()]];
    for r in rows {
        out.push(vec![
            r.experiment.into(),
            r.family.clone(),
            r.probes.to_string(),
            r.violations.to_string(),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweeps_have_zero_violations() {
        for rows in
            [validate_diameter(4, 8, 2), validate_triangle(4, 8, 2), validate_square(4, 8, 2)]
        {
            for r in &rows {
                assert_eq!(r.violations, 0, "{r:?}");
                assert!(r.probes > 0);
            }
        }
    }
}
