//! Workspace-wide failure injection: flip bits in protocol messages and
//! assert that no referee ever panics or silently mis-reconstructs.
//!
//! Per-crate tests already cover each decoder in isolation; these runs
//! exercise the *combinations* the per-crate tests cannot (reduction
//! protocols wrapping oracles, the sketch protocol's sampler stack) and
//! pin the global invariant: a corrupted transmission may produce an
//! error, a rejection, or — only where the encoding is redundant — the
//! original graph; never a different graph, and never a crash.

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;
use referee_one_round::protocol::referee::local_phase;
use referee_one_round::reductions::oracle::TriangleOracle;

/// Flip every bit of one message and run the global function each time.
fn flip_sweep<P, F>(protocol: &P, g: &LabelledGraph, victim: usize, mut check: F)
where
    P: OneRoundProtocol + Sync,
    F: FnMut(P::Output),
{
    let mut msgs = local_phase(protocol, g);
    let original = msgs[victim].clone();
    for bit in 0..original.len_bits() {
        msgs[victim] = original.with_bit_flipped(bit);
        check(protocol.global(g.n(), &msgs));
    }
}

#[test]
fn degeneracy_protocol_full_sweep() {
    let mut rng = StdRng::seed_from_u64(31);
    let g = generators::random_k_degenerate(12, 2, 1.0, &mut rng);
    let p = DegeneracyProtocol::new(2);
    flip_sweep(&p, &g, 5, |out| match out {
        Err(_) | Ok(Reconstruction::NotInClass) => {}
        Ok(Reconstruction::Graph(h)) => assert_eq!(h, g, "silent mis-reconstruction"),
    });
}

#[test]
fn triangle_reduction_sweep_never_panics() {
    // The reduction bundles Γ messages; corrupt bundles must surface as
    // Err (bad framing) or a graph — whose edges may legitimately differ
    // since the oracle's decision bits changed, but the call must not
    // panic and honest re-runs must still work.
    let mut rng = StdRng::seed_from_u64(32);
    let g = generators::random_balanced_bipartite(8, 0.4, &mut rng);
    let delta = TriangleReduction::new(TriangleOracle);
    let mut outcomes = (0usize, 0usize); // (errors, graphs)
    flip_sweep(&delta, &g, 3, |out| match out {
        Err(_) => outcomes.0 += 1,
        Ok(_) => outcomes.1 += 1,
    });
    assert!(outcomes.0 + outcomes.1 > 0);
    // and the honest vector still round-trips afterwards
    let honest = referee_one_round::protocol::run_protocol(&delta, &g);
    assert_eq!(honest.output.unwrap(), g);
}

#[test]
fn sketch_protocol_sweep_never_panics() {
    let g = generators::grid(4, 4);
    let p = SketchConnectivityProtocol::new(9);
    let mut msgs = local_phase(&p, &g);
    let original = msgs[7].clone();
    // sketches are long; sample a spread of bit positions
    for bit in (0..original.len_bits()).step_by(97) {
        msgs[7] = original.with_bit_flipped(bit);
        // Monte-Carlo protocol: any bool is acceptable, crashes are not.
        let _ = p.global(16, &msgs);
    }
    // truncated message must be a decode error, not a panic
    msgs[7] = Message::empty();
    assert!(p.global(16, &msgs).is_err());
}

#[test]
fn forest_protocol_full_sweep() {
    let mut rng = StdRng::seed_from_u64(33);
    let g = generators::random_tree(14, &mut rng);
    flip_sweep(&ForestProtocol, &g, 6, |out| match out {
        Err(_) | Ok(Reconstruction::NotInClass) => {}
        Ok(Reconstruction::Graph(h)) => assert_eq!(h, g, "silent mis-reconstruction"),
    });
}

#[test]
fn generalized_protocol_full_sweep() {
    let mut rng = StdRng::seed_from_u64(34);
    let dense = generators::random_k_degenerate(9, 2, 1.0, &mut rng).complement();
    let p = GeneralizedDegeneracyProtocol::new(2);
    flip_sweep(&p, &dense, 4, |out| match out {
        Err(_) | Ok(Reconstruction::NotInClass) => {}
        Ok(Reconstruction::Graph(h)) => assert_eq!(h, dense, "silent mis-reconstruction"),
    });
}

#[test]
fn truncated_and_empty_vectors_rejected_everywhere() {
    let n = 6;
    let empties = vec![Message::empty(); n];
    assert!(DegeneracyProtocol::new(2).global(n, &empties).is_err());
    assert!(ForestProtocol.global(n, &empties).is_err());
    assert!(GeneralizedDegeneracyProtocol::new(2).global(n, &empties).is_err());
    assert!(SketchConnectivityProtocol::new(1).global(n, &empties).is_err());
    // wrong vector length
    let short = vec![Message::empty(); n - 1];
    assert!(DegeneracyProtocol::new(2).global(n, &short).is_err());
}

#[test]
fn easy_protocols_sweep_error_or_plausible() {
    use referee_one_round::protocol::easy::*;
    let mut rng = StdRng::seed_from_u64(35);
    let g = generators::gnp(10, 0.3, &mut rng);
    // Degree-based protocols: a flipped degree either breaks the
    // handshake (error) or yields a *different but in-range* count — it
    // can never panic, and honest runs stay exact.
    flip_sweep(&EdgeCountProtocol, &g, 2, |out| {
        if let Ok(m) = out {
            assert!(m <= 10 * 9 / 2);
        }
    });
    flip_sweep(&EulerianDegreeProtocol, &g, 2, |out| {
        let _ = out; // 1-bit messages: both verdicts plausible, no panic
    });
    assert_eq!(
        referee_one_round::protocol::run_protocol(&EdgeCountProtocol, &g).output.unwrap(),
        g.m()
    );
}

#[test]
fn bipartiteness_sketch_sweep_never_panics() {
    let g = generators::complete_bipartite(3, 4);
    let p = SketchBipartitenessProtocol::new(11);
    let mut msgs = local_phase(&p, &g);
    let original = msgs[0].clone();
    for bit in (0..original.len_bits()).step_by(131) {
        msgs[0] = original.with_bit_flipped(bit);
        let _ = p.global(7, &msgs); // no panic; Monte-Carlo verdict free
    }
    msgs[0] = Message::empty();
    assert!(p.global(7, &msgs).is_err());
}

#[test]
fn kconn_sketch_sweep_never_panics() {
    let g = generators::cycle(8).unwrap();
    let p = SketchKConnectivityProtocol::new(12, 2);
    let mut msgs = local_phase(&p, &g);
    let original = msgs[3].clone();
    for bit in (0..original.len_bits()).step_by(173) {
        msgs[3] = original.with_bit_flipped(bit);
        if let Ok(lambda) = p.global(8, &msgs) {
            // sampled edges are verified, so the peeled union is a
            // subgraph of SOME graph with ≤ k(n−1) edges; the capped
            // answer stays in range.
            assert!(lambda <= 2);
        }
    }
    assert!(p.global(8, &vec![Message::empty(); 8]).is_err());
}

/// A transport that flips one chosen bit of one chosen uplink — the
/// multi-round, in-flight analogue of [`flip_sweep`].
struct FlipOneUplink {
    inner: referee_simnet::PerfectTransport,
    round: u32,
    from: u32,
    bit: usize,
}

impl referee_simnet::Transport for FlipOneUplink {
    fn send(&mut self, mut env: referee_simnet::Envelope) {
        if env.round == self.round
            && env.from == self.from
            && env.to == referee_simnet::REFEREE
            && self.bit < env.payload.len_bits()
        {
            env.payload = env.payload.with_bit_flipped(self.bit);
        }
        self.inner.send(env);
    }

    fn recv(&mut self) -> Option<referee_simnet::Envelope> {
        self.inner.recv()
    }

    fn counters(&self) -> referee_simnet::TransportCounters {
        self.inner.counters()
    }
}

#[test]
fn boruvka_uplink_flip_sweep_always_decode_error() {
    // The multi-round path: BoruvkaConnectivity ships checksummed
    // proposal uplinks, so EVERY single-bit corruption of an uplink must
    // end the run in a DecodeError — never a wrong verdict, never a
    // panic. Round 1 uplinks are 1-bit "no proposal" frames; round 2
    // carries real proposals (labels have been heard by then). Sweep
    // every bit of every node's uplink in both rounds.
    use referee_one_round::protocol::multiround::BoruvkaConnectivity;

    let g = generators::path(6);
    let n = g.n();
    let max_frame_bits = 1 + (bits_for(n) + 4) as usize; // flag + id + checksum
    for round in [1u32, 2] {
        for victim in 1..=n as u32 {
            for bit in 0..max_frame_bits {
                let mut transport = FlipOneUplink {
                    inner: referee_simnet::PerfectTransport::new(),
                    round,
                    from: victim,
                    bit,
                };
                let report =
                    referee_simnet::MultiRoundSession::new(&BoruvkaConnectivity, &g, 64)
                        .run(&mut transport);
                match report.outcome.expect("perfect delivery") {
                    Some(Err(_)) => {} // corruption detected: the required outcome
                    Some(Ok(verdict)) => {
                        // The flip landed past the frame end (shorter
                        // no-proposal frame): nothing was corrupted, so
                        // the honest verdict must hold.
                        assert!(
                            verdict,
                            "corrupted run produced a wrong verdict \
                             (round {round}, node {victim}, bit {bit})"
                        );
                    }
                    None => panic!("corrupted run stalled to the round cap"),
                }
            }
        }
    }
    // Sanity: the honest run accepts.
    let mut honest = referee_simnet::PerfectTransport::new();
    let report =
        referee_simnet::MultiRoundSession::new(&BoruvkaConnectivity, &g, 64).run(&mut honest);
    assert!(report.outcome.unwrap().unwrap().unwrap());
}

#[test]
fn multiround_adaptive_corrupting_transport_never_fabricates() {
    // Transport-level corruption on the adaptive multi-round protocol:
    // flipped sketch bits must surface as DecodeError (or an honest
    // reconstruction when the flip was benign) — never a different graph.
    use referee_simnet::{FaultConfig, FaultyTransport, MultiRoundSession, PerfectTransport};

    let mut rng = StdRng::seed_from_u64(41);
    let mut corrupted_runs = 0usize;
    for trial in 0..40u64 {
        let g = generators::random_tree(12, &mut rng);
        let mut transport =
            FaultyTransport::new(PerfectTransport::new(), FaultConfig::corrupting(trial, 0.4));
        let report =
            MultiRoundSession::new(&AdaptiveDegeneracyProtocol, &g, 64).run(&mut transport);
        if report.metrics.transport.corrupted > 0 {
            corrupted_runs += 1;
        }
        match report.outcome {
            Err(_) => {}           // session-level rejection
            Ok(None) => {}         // stalled to the cap: acceptable, not a lie
            Ok(Some(Err(_))) => {} // decoder-level rejection
            Ok(Some(Ok(h))) => assert_eq!(h, g, "fabricated graph under corruption"),
        }
    }
    assert!(corrupted_runs > 30, "corruption config never fired");
}

#[test]
fn adaptive_protocol_rejects_corrupt_first_round() {
    use referee_one_round::protocol::multiround::{MultiRoundProtocol, RefereeStep};
    let mut rng = StdRng::seed_from_u64(36);
    let g = generators::random_tree(10, &mut rng);
    let p = AdaptiveDegeneracyProtocol;
    // Build honest round-1 uplinks by hand, then corrupt one.
    let views: Vec<Vec<u32>> = g.vertices().map(|v| g.neighbourhood(v).to_vec()).collect();
    let mut uplinks: Vec<Message> = g
        .vertices()
        .map(|v| p.node_send(&(), NodeView::new(10, v, &views[(v - 1) as usize]), 1).1)
        .collect();
    // Honest run of round 1 on a tree terminates with the graph.
    let mut state = p.referee_init(10);
    match p.referee_step(&mut state, 10, 1, &uplinks) {
        RefereeStep::Done(Ok(h)) => assert_eq!(h, g),
        other => {
            panic!("expected Done(Ok), got {:?}", matches!(other, RefereeStep::Continue(_)))
        }
    }
    // Truncated message ⇒ decode error, never a wrong graph.
    uplinks[4] = Message::empty();
    let mut state = p.referee_init(10);
    match p.referee_step(&mut state, 10, 1, &uplinks) {
        RefereeStep::Done(Err(_)) => {}
        RefereeStep::Done(Ok(h)) => assert_eq!(h, g, "silent mis-reconstruction"),
        RefereeStep::Continue(_) => {} // stalling is acceptable, lying is not
    }
}
