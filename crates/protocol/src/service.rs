//! Protocol-agnostic **referee services**: the type-erased referee half
//! of any [`MultiRoundProtocol`] ([`WireReferee`]/[`RefereeStepper`]),
//! plus the [`ServiceCatalog`] — a named registry that lets one server
//! host many protocols concurrently (clients select a service by name
//! in their authenticated `Announce`).
//!
//! These types started life inside the `wirenet` crate, welded to its
//! Borůvka service; they live here now because *nothing* about them is
//! wire-specific — a stepper is just "referee state + `referee_step` +
//! output encoder", and any transport (in-memory, sharded, TCP) can
//! drive one. `wirenet` re-exports everything for compatibility.
//!
//! # Registering a new wire service
//!
//! ```
//! use referee_protocol::multiround::BoruvkaConnectivity;
//! use referee_protocol::service::{encode_bool_output, ServiceCatalog};
//!
//! let catalog = ServiceCatalog::new()
//!     .register("boruvka", BoruvkaConnectivity, encode_bool_output);
//! assert_eq!(catalog.index_of("boruvka"), Some(0));
//! ```
//!
//! The encoder turns the protocol's typed output into the [`Message`]
//! the verdict frame carries; ship a matching decoder to clients (see
//! [`encode_bool_output`]/[`decode_bool_output`] and
//! [`encode_graph_output`]/[`decode_graph_output`] for the two shapes
//! the workspace uses).

use crate::multiround::{
    run_multiround, BoruvkaConnectivity, MultiRoundProtocol, MultiRoundStats, RefereeStep,
};
use crate::{BitWriter, DecodeError, Message};
use referee_graph::graph6::{from_graph6, to_graph6};
use referee_graph::LabelledGraph;
use std::sync::Arc;

/// The referee half of a multi-round protocol, type-erased for
/// transports: the final output is pre-encoded into a [`Message`] (the
/// client decodes it with the matching helper, e.g.
/// [`decode_bool_output`]).
pub trait RefereeStepper: Send {
    /// One referee step on round `round`'s complete uplink vector.
    fn step(&mut self, n: usize, round: usize, uplinks: &[Message]) -> RefereeStep<Message>;
}

/// Factory for per-session referee steppers — what a referee service
/// serves. Implemented for any [`MultiRoundProtocol`] via
/// [`ProtocolReferee`].
pub trait WireReferee: Send + Sync {
    /// Fresh referee state for a size-`n` session.
    fn open(&self, n: usize) -> Box<dyn RefereeStepper>;
    /// Server-side safety stop: a session still unfinished after this
    /// many rounds is rejected (bounds referee state against stalled or
    /// hostile clients).
    fn round_cap(&self, n: usize) -> usize;
}

/// Adapts any (cloneable) [`MultiRoundProtocol`] into a [`WireReferee`]
/// by pairing it with an output encoder.
pub struct ProtocolReferee<P: MultiRoundProtocol> {
    protocol: P,
    encode: fn(&P::Output) -> Message,
}

impl<P: MultiRoundProtocol> ProtocolReferee<P> {
    /// Serve `protocol`, encoding each final output with `encode`.
    pub fn new(protocol: P, encode: fn(&P::Output) -> Message) -> ProtocolReferee<P> {
        ProtocolReferee { protocol, encode }
    }
}

struct ProtocolStepper<P: MultiRoundProtocol> {
    protocol: P,
    state: P::RefereeState,
    encode: fn(&P::Output) -> Message,
}

impl<P> RefereeStepper for ProtocolStepper<P>
where
    P: MultiRoundProtocol + Send,
    P::RefereeState: Send,
{
    fn step(&mut self, n: usize, round: usize, uplinks: &[Message]) -> RefereeStep<Message> {
        match self.protocol.referee_step(&mut self.state, n, round, uplinks) {
            RefereeStep::Done(out) => RefereeStep::Done((self.encode)(&out)),
            RefereeStep::Continue(d) => RefereeStep::Continue(d),
        }
    }
}

impl<P> WireReferee for ProtocolReferee<P>
where
    P: MultiRoundProtocol + Clone + Send + Sync + 'static,
    P::RefereeState: Send,
{
    fn open(&self, n: usize) -> Box<dyn RefereeStepper> {
        Box::new(ProtocolStepper {
            protocol: self.protocol.clone(),
            state: self.protocol.referee_init(n),
            encode: self.encode,
        })
    }

    fn round_cap(&self, n: usize) -> usize {
        // The Borůvka bound `4·log₂(n) + 8` is comfortably above every
        // protocol this workspace ships (adaptive degeneracy needs
        // `log₂(n) + 2`, chained composites at most the sum of their
        // phases); widen per deployment if a future protocol needs
        // more rounds.
        4 * (usize::BITS - n.leading_zeros()) as usize + 8
    }
}

/// The connectivity referee ([`BoruvkaConnectivity`]) as a wire
/// service; decode verdict payloads with [`decode_bool_output`].
pub fn boruvka_connectivity_service() -> Arc<dyn WireReferee> {
    Arc::new(ProtocolReferee::new(BoruvkaConnectivity, encode_bool_output))
}

// ---------------------------------------------------------------------------
// Output codecs
// ---------------------------------------------------------------------------

/// Encode a `Result<bool, DecodeError>` protocol output: `1·b` on
/// success, else `0` plus the 2-bit rejection class (the same classes
/// as the one-round verdict codec).
pub fn encode_bool_output(out: &Result<bool, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    match out {
        Ok(b) => {
            w.push_bit(true);
            w.push_bit(*b);
        }
        Err(e) => {
            w.push_bit(false);
            w.write_bits(error_class(e), 2);
        }
    }
    Message::from_writer(w)
}

/// Inverse of [`encode_bool_output`].
pub fn decode_bool_output(msg: &Message) -> Result<bool, DecodeError> {
    let mut r = msg.reader();
    if r.read_bit()? {
        let b = r.read_bit()?;
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bits after bool output".into()));
        }
        return Ok(b);
    }
    let class = r.read_bits(2)?;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after output class".into()));
    }
    Err(class_error(class))
}

/// Encode a `Result<LabelledGraph, DecodeError>` protocol output (the
/// reconstruction protocols' shape): `1`, the graph6 byte count (32
/// bits), then the graph6 bytes; else `0` plus the 2-bit rejection
/// class. graph6 is canonical per labelled graph, so equal graphs
/// encode to equal payloads — verdict comparisons stay bit-for-bit.
pub fn encode_graph_output(out: &Result<LabelledGraph, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    match out {
        Ok(g) => {
            w.push_bit(true);
            let g6 = to_graph6(g);
            w.write_bits(g6.len() as u64, 32);
            for b in g6.bytes() {
                w.write_bits(u64::from(b), 8);
            }
        }
        Err(e) => {
            w.push_bit(false);
            w.write_bits(error_class(e), 2);
        }
    }
    Message::from_writer(w)
}

/// Inverse of [`encode_graph_output`]. The payload is **prefix-free**
/// (like every codec here), so it also decodes mid-stream — chained
/// outputs concatenate these encodings back to back.
pub fn decode_graph_output(msg: &Message) -> Result<LabelledGraph, DecodeError> {
    let mut r = msg.reader();
    let out = decode_graph_part(&mut r)?;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after graph output".into()));
    }
    out
}

/// Decode one [`encode_graph_output`] unit from a reader, leaving the
/// reader positioned after it (for concatenated chain outputs). The
/// outer `Err` is a framing failure; the inner `Result` is the decoded
/// protocol output.
pub fn decode_graph_part(
    r: &mut crate::BitReader<'_>,
) -> Result<Result<LabelledGraph, DecodeError>, DecodeError> {
    if r.read_bit()? {
        let len = r.read_bits(32)? as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(r.read_bits(8)? as u8);
        }
        let s = String::from_utf8(bytes)
            .map_err(|_| DecodeError::Invalid("graph6 payload is not ASCII".into()))?;
        let g = from_graph6(&s)
            .map_err(|e| DecodeError::Invalid(format!("graph6 decode failed: {e:?}")))?;
        return Ok(Ok(g));
    }
    let class = r.read_bits(2)?;
    Ok(Err(class_error(class)))
}

/// The canonical 2-bit wire class of a [`DecodeError`] (verdicts carry
/// the class, not the message text).
pub fn error_class(e: &DecodeError) -> u64 {
    match e {
        DecodeError::Truncated => 0,
        DecodeError::OutOfRange(_) => 1,
        DecodeError::Inconsistent(_) => 2,
        DecodeError::Invalid(_) => 3,
    }
}

/// The canonical [`DecodeError`] reconstructed from its 2-bit wire
/// class.
pub fn class_error(class: u64) -> DecodeError {
    match class {
        0 => DecodeError::Truncated,
        1 => DecodeError::OutOfRange("multi-round referee: out-of-range sender".into()),
        2 => DecodeError::Inconsistent(
            "multi-round referee: duplicate or missing message".into(),
        ),
        _ => DecodeError::Invalid("multi-round referee: invalid session traffic".into()),
    }
}

// ---------------------------------------------------------------------------
// Service catalog
// ---------------------------------------------------------------------------

/// How the coordinator replays a service locally: run the full protocol
/// (both halves, in process) and return the *encoded* output — the
/// exact payload the wire verdict would carry — plus the run stats.
type LocalRun =
    Arc<dyn Fn(&LabelledGraph, usize) -> (Option<Message>, MultiRoundStats) + Send + Sync>;

/// One named service in a [`ServiceCatalog`].
#[derive(Clone)]
pub struct CatalogEntry {
    name: String,
    referee: Arc<dyn WireReferee>,
    run_local: Option<LocalRun>,
}

impl CatalogEntry {
    /// The service's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The referee factory this service serves.
    pub fn referee(&self) -> &Arc<dyn WireReferee> {
        &self.referee
    }

    /// The service's round cap at size `n`.
    pub fn round_cap(&self, n: usize) -> usize {
        self.referee.round_cap(n)
    }

    /// Open a fresh per-session stepper.
    pub fn open(&self, n: usize) -> Box<dyn RefereeStepper> {
        self.referee.open(n)
    }

    /// Run the whole protocol locally (both halves, no wire) and return
    /// the encoded output + stats — the ground truth wire verdicts are
    /// compared against. `None` for entries registered from a bare
    /// [`WireReferee`] (no node half to run).
    pub fn run_local(
        &self,
        g: &LabelledGraph,
        max_rounds: usize,
    ) -> Option<(Option<Message>, MultiRoundStats)> {
        self.run_local.as_ref().map(|f| f(g, max_rounds))
    }
}

impl std::fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("replayable", &self.run_local.is_some())
            .finish()
    }
}

/// The longest service name an `Announce` can carry (its length prefix
/// is one byte).
pub const MAX_SERVICE_NAME_BYTES: usize = 255;

/// A named registry of referee services: one multi-protocol server
/// serves every entry concurrently, with clients selecting by name in
/// their authenticated `Announce`. Indexes are stable registration
/// order — servers key per-session worker state by (connection,
/// session, service index).
#[derive(Clone, Default, Debug)]
pub struct ServiceCatalog {
    entries: Vec<CatalogEntry>,
}

impl ServiceCatalog {
    /// An empty catalog.
    pub fn new() -> ServiceCatalog {
        ServiceCatalog { entries: Vec::new() }
    }

    /// A single-service catalog wrapping a bare referee under the name
    /// `"default"` — how the single-protocol server APIs are expressed
    /// in catalog terms.
    pub fn single(referee: Arc<dyn WireReferee>) -> ServiceCatalog {
        ServiceCatalog::new().register_referee("default", referee)
    }

    fn validate_name(&self, name: &str) {
        assert!(!name.is_empty(), "service names must be non-empty");
        assert!(
            name.len() <= MAX_SERVICE_NAME_BYTES,
            "service name {name:?} exceeds {MAX_SERVICE_NAME_BYTES} bytes"
        );
        assert!(self.index_of(name).is_none(), "service {name:?} is already registered");
    }

    /// Register `protocol` under `name`, encoding outputs with
    /// `encode`. The entry is fully replayable: `run_local` runs both
    /// protocol halves in process for ground-truth comparisons.
    ///
    /// Panics on an empty, oversized, or duplicate name.
    pub fn register<P>(
        mut self,
        name: &str,
        protocol: P,
        encode: fn(&P::Output) -> Message,
    ) -> ServiceCatalog
    where
        P: MultiRoundProtocol + Clone + Send + Sync + 'static,
        P::RefereeState: Send,
    {
        self.validate_name(name);
        let local = protocol.clone();
        let run_local: LocalRun = Arc::new(move |g, max_rounds| {
            let (out, stats) = run_multiround(&local, g, max_rounds);
            (out.map(|o| encode(&o)), stats)
        });
        self.entries.push(CatalogEntry {
            name: name.to_string(),
            referee: Arc::new(ProtocolReferee::new(protocol, encode)),
            run_local: Some(run_local),
        });
        self
    }

    /// Register a bare referee under `name` (no local replay — use
    /// [`register`](ServiceCatalog::register) when the node half is
    /// available). Panics on an empty, oversized, or duplicate name.
    pub fn register_referee(
        mut self,
        name: &str,
        referee: Arc<dyn WireReferee>,
    ) -> ServiceCatalog {
        self.validate_name(name);
        self.entries.push(CatalogEntry { name: name.to_string(), referee, run_local: None });
        self
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered names, in index order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// The stable index of `name`, if registered.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// The entry registered as `name`.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.index_of(name).map(|i| &self.entries[i])
    }

    /// The entry at `index` (registration order).
    pub fn by_index(&self, index: usize) -> Option<&CatalogEntry> {
        self.entries.get(index)
    }

    /// All entries, in index order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// The largest round cap any registered service imposes at size `n`
    /// — the conservative bound shard hosts use when they don't know
    /// which service a session belongs to.
    pub fn max_round_cap(&self, n: usize) -> usize {
        self.entries.iter().map(|e| e.round_cap(n)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::generators;

    #[test]
    fn graph_output_codec_round_trips() {
        for g in [
            LabelledGraph::new(0),
            LabelledGraph::new(1),
            generators::petersen(),
            generators::grid(3, 4),
            generators::complete(7),
        ] {
            let decoded = decode_graph_output(&encode_graph_output(&Ok(g.clone()))).unwrap();
            assert_eq!(decoded, g);
        }
        for e in [
            DecodeError::Truncated,
            DecodeError::OutOfRange("a".into()),
            DecodeError::Inconsistent("b".into()),
            DecodeError::Invalid("c".into()),
        ] {
            let back = decode_graph_output(&encode_graph_output(&Err(e.clone()))).unwrap_err();
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&e));
        }
    }

    #[test]
    fn graph_part_decodes_mid_stream() {
        // Two concatenated graph outputs decode sequentially.
        let a = generators::path(5);
        let b = generators::cycle(4).unwrap();
        let mut w = BitWriter::new();
        encode_graph_output(&Ok(a.clone())).append_to(&mut w);
        encode_graph_output(&Ok(b.clone())).append_to(&mut w);
        let joint = Message::from_writer(w);
        let mut r = joint.reader();
        assert_eq!(decode_graph_part(&mut r).unwrap().unwrap(), a);
        assert_eq!(decode_graph_part(&mut r).unwrap().unwrap(), b);
        assert!(r.is_exhausted());
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let catalog = ServiceCatalog::new()
            .register("boruvka", BoruvkaConnectivity, encode_bool_output)
            .register_referee("raw", boruvka_connectivity_service());
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.names().collect::<Vec<_>>(), ["boruvka", "raw"]);
        assert_eq!(catalog.index_of("boruvka"), Some(0));
        assert_eq!(catalog.index_of("raw"), Some(1));
        assert_eq!(catalog.index_of("nope"), None);
        assert!(catalog.get("boruvka").unwrap().run_local.is_some());
        assert!(catalog.get("raw").unwrap().run_local.is_none());
        assert_eq!(catalog.max_round_cap(64), 4 * 7 + 8);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_panic() {
        let _ = ServiceCatalog::new()
            .register("x", BoruvkaConnectivity, encode_bool_output)
            .register("x", BoruvkaConnectivity, encode_bool_output);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_names_panic() {
        let _ = ServiceCatalog::new().register("", BoruvkaConnectivity, encode_bool_output);
    }

    #[test]
    fn run_local_matches_direct_run() {
        let catalog =
            ServiceCatalog::new().register("boruvka", BoruvkaConnectivity, encode_bool_output);
        let g = generators::petersen();
        let cap = 40;
        let (out, stats) = catalog.get("boruvka").unwrap().run_local(&g, cap).unwrap();
        let (direct, direct_stats) = run_multiround(&BoruvkaConnectivity, &g, cap);
        assert_eq!(out.unwrap(), encode_bool_output(&direct.unwrap()));
        assert_eq!(stats, direct_stats);
    }

    #[test]
    fn single_wraps_a_bare_referee() {
        let catalog = ServiceCatalog::single(boruvka_connectivity_service());
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.index_of("default"), Some(0));
        let stepper = catalog.by_index(0).unwrap().open(3);
        drop(stepper);
    }

    #[test]
    fn stepper_runs_a_session_end_to_end() {
        // Drive the type-erased stepper by hand on a 1-node graph: the
        // single node proposes nothing; two quiet rounds finish it.
        let svc = boruvka_connectivity_service();
        let mut stepper = svc.open(1);
        let mut w = BitWriter::new();
        w.push_bit(false);
        let none = Message::from_writer(w);
        let mut verdict = None;
        for round in 1..=svc.round_cap(1) {
            match stepper.step(1, round, std::slice::from_ref(&none)) {
                RefereeStep::Continue(d) => assert_eq!(d.len(), 1),
                RefereeStep::Done(out) => {
                    verdict = Some(out);
                    break;
                }
            }
        }
        let out = verdict.expect("terminates within the cap");
        assert_eq!(decode_bool_output(&out), Ok(true));
    }
}
