//! E18–E22: the extension experiments added on top of the paper's grid.
//!
//! * E18 — one-round public-coin **bipartiteness** via the double cover
//!   (the §IV "another natural question").
//! * E19 — one-round public-coin **k-edge-connectivity** by forest
//!   peeling (sketch linearity lets the referee edit the graph).
//! * E20 — **adaptive unknown-k degeneracy** reconstruction: doubling
//!   rounds, total bits = the one-shot sketch at the reached arity.
//! * E21 — **diameter ≤ t hardness for every t ≥ 3**: the generalized
//!   Figure 1 gadget and its 3×-blow-up reduction.
//! * E22 — the **degeneracy ≤ treewidth** chain (§I.A) measured across
//!   the planar hierarchy the paper names.

use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::adaptive::{adaptive_reconstruct, rounds_for_degeneracy};
use referee_degeneracy::{lemma2_bound_bits, DegeneracyProtocol};
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::run_protocol;
use referee_reductions::diameter_t::{DiameterTOracle, DiameterTReduction};
use referee_reductions::gadgets::diameter_t_gadget;
use referee_sketches::kconn::sketch_edge_connectivity;
use referee_sketches::{sketch_bipartiteness, SketchBipartitenessProtocol};

/// E18 rows: `(n, bits/node, agreements, runs)` across mixed random
/// graphs (some bipartite, some not).
pub fn bipartiteness_sweep(ns: &[usize], seeds: u64) -> Vec<(usize, usize, u64, u64)> {
    ns.iter()
        .map(|&n| {
            let mut agree = 0u64;
            let mut total = 0u64;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(700 + seed);
                // Alternate bipartite and unconstrained samples.
                let g = if seed % 2 == 0 {
                    generators::random_balanced_bipartite(n, 2.5 / n as f64, &mut rng)
                } else {
                    generators::gnp(n, 2.5 / n as f64, &mut rng)
                };
                total += 1;
                if sketch_bipartiteness(&g, 900 + seed) == algo::is_bipartite(&g) {
                    agree += 1;
                }
            }
            (n, SketchBipartitenessProtocol::message_bits(n), agree, total)
        })
        .collect()
}

/// E19 rows over named families: `(family, λ(G), k, protocol answer)`.
pub fn kconn_named_families(k: usize) -> Vec<(String, usize, usize, usize)> {
    let mut rng = StdRng::seed_from_u64(31);
    let cases: Vec<(String, LabelledGraph)> = vec![
        ("path(24)".into(), generators::path(24)),
        ("cycle(24)".into(), generators::cycle(24).unwrap()),
        ("grid(5,5)".into(), generators::grid(5, 5)),
        ("hypercube(4)".into(), generators::hypercube(4)),
        ("complete(8)".into(), generators::complete(8)),
        ("petersen".into(), generators::petersen()),
        ("2×K4 + bridge".into(), {
            let mut g = generators::complete(4).disjoint_union(&generators::complete(4));
            g.add_edge(4, 5).unwrap();
            g
        }),
        ("apollonian(20)".into(), generators::random_apollonian(20, &mut rng).unwrap()),
    ];
    cases
        .into_iter()
        .map(|(name, g)| {
            let lambda = algo::edge_connectivity(&g);
            let got = sketch_edge_connectivity(&g, 2011, k);
            (name, lambda, k, got)
        })
        .collect()
}

/// E19 agreement rows: `(n, k, bits/node, agreements, runs)`.
pub fn kconn_agreement_sweep(
    ns: &[usize],
    k: usize,
    seeds: u64,
) -> Vec<(usize, usize, usize, u64, u64)> {
    ns.iter()
        .map(|&n| {
            let mut agree = 0u64;
            let mut total = 0u64;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(800 + seed);
                let g = generators::gnp(n, 4.0 / n as f64, &mut rng);
                let truth = algo::edge_connectivity(&g).min(k);
                total += 1;
                if sketch_edge_connectivity(&g, 1300 + seed, k) == truth {
                    agree += 1;
                }
            }
            let bits = referee_sketches::SketchKConnectivityProtocol::new(0, k).message_bits(n);
            (n, k, bits, agree, total)
        })
        .collect()
}

/// E20 rows: `(family, degeneracy d, rounds, predicted ⌈log₂ d⌉+1,
/// k_final, total bits, one-round bits at k_final)`.
pub fn adaptive_sweep() -> Vec<(String, usize, usize, usize, usize, usize, usize)> {
    let mut rng = StdRng::seed_from_u64(41);
    let cases: Vec<(String, LabelledGraph)> = vec![
        ("tree(200)".into(), generators::random_tree(200, &mut rng)),
        ("grid(12,12)".into(), generators::grid(12, 12)),
        ("apollonian(150)".into(), generators::random_apollonian(150, &mut rng).unwrap()),
        ("5-degenerate(120)".into(), generators::random_k_degenerate(120, 5, 0.9, &mut rng)),
        ("12-degenerate(80)".into(), generators::random_k_degenerate(80, 12, 0.9, &mut rng)),
        ("complete(24)".into(), generators::complete(24)),
    ];
    cases
        .into_iter()
        .map(|(name, g)| {
            let n = g.n();
            let d = algo::degeneracy_ordering(&g).degeneracy;
            let (out, stats, k_final) = adaptive_reconstruct(&g);
            assert_eq!(out.expect("reconstructs"), g, "{name}");
            let one_round = lemma2_bound_bits(n, k_final);
            // Measure the true across-round total by replaying node 1's
            // sends (all nodes use the same fixed field widths).
            use referee_protocol::multiround::MultiRoundProtocol;
            use referee_protocol::NodeView;
            let p = referee_degeneracy::AdaptiveDegeneracyProtocol;
            let nbrs = g.neighbourhood(1);
            let total: usize = (1..=stats.rounds)
                .map(|r| p.node_send(&(), NodeView::new(n, 1, nbrs), r).1.len_bits())
                .sum();
            (name, d, stats.rounds, rounds_for_degeneracy(n, d), k_final, total, one_round)
        })
        .collect()
}

/// E21 rows: `(thresh, n, pairs, iff holds, Δ reconstructs)`.
pub fn diameter_t_sweep(
    threshs: &[u32],
    n: usize,
    seeds: u64,
) -> Vec<(u32, usize, u64, bool, bool)> {
    threshs
        .iter()
        .map(|&thresh| {
            let mut pairs = 0u64;
            let mut iff_ok = true;
            let mut recon_ok = true;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(500 + seed);
                let g = generators::gnp(n, 0.25, &mut rng);
                for s in 1..=n as u32 {
                    for t in (s + 1)..=n as u32 {
                        pairs += 1;
                        let gd = diameter_t_gadget(&g, s, t, thresh);
                        iff_ok &= algo::diameter_at_most(&gd, thresh) == g.has_edge(s, t);
                    }
                }
                let delta = DiameterTReduction::new(DiameterTOracle { thresh }, thresh);
                recon_ok &= run_protocol(&delta, &g).output.expect("oracle messages") == g;
            }
            (thresh, n, pairs, iff_ok, recon_ok)
        })
        .collect()
}

/// E22 rows: `(family, degeneracy, treewidth (exact), min-fill width,
/// one-round protocol at k = degeneracy succeeded)`.
pub fn treewidth_chain() -> Vec<(String, usize, usize, usize, bool)> {
    let mut rng = StdRng::seed_from_u64(61);
    let cases: Vec<(String, LabelledGraph)> = vec![
        ("path(14)".into(), generators::path(14)),
        ("cycle(14)".into(), generators::cycle(14).unwrap()),
        ("outerplanar(14)".into(), generators::random_outerplanar(14, &mut rng).unwrap()),
        (
            "series-parallel(14)".into(),
            generators::random_series_parallel(14, &mut rng).unwrap(),
        ),
        ("apollonian(14)".into(), generators::random_apollonian(14, &mut rng).unwrap()),
        ("grid(3,5)".into(), generators::grid(3, 5)),
        ("planar-triangulation(14)".into(), {
            generators::random_planar_triangulation(14, 40, &mut rng).unwrap()
        }),
        ("petersen".into(), generators::petersen()),
        ("wheel(12)".into(), generators::wheel(12).unwrap()),
    ];
    cases
        .into_iter()
        .map(|(name, g)| {
            let d = algo::degeneracy_ordering(&g).degeneracy;
            let tw = algo::treewidth_exact(&g);
            let mf = algo::min_fill_order(&g).width;
            let proto = DegeneracyProtocol::new(d.max(1));
            let ok = run_protocol(&proto, &g)
                .output
                .expect("honest messages")
                .graph()
                .is_some_and(|h| h == g);
            (name, d, tw, mf, ok)
        })
        .collect()
}

/// E23 rows — the positive boundary: `(protocol, n, bits/node, verdict)`
/// for the degree-statistic protocols that ARE one-round frugal.
pub fn easy_protocol_table(n: usize, seed: u64) -> Vec<(String, usize, usize, String)> {
    use referee_protocol::easy::*;
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::gnp(n, 3.0 / n as f64, &mut rng);
    let mut rows = Vec::new();

    let out = run_protocol(&EdgeCountProtocol, &g);
    rows.push((
        "edge count".into(),
        n,
        out.stats.max_message_bits,
        format!("m = {} (true {})", out.output.expect("honest"), g.m()),
    ));

    let out = run_protocol(&DegreeSequenceProtocol, &g);
    let seq = out.output.expect("honest");
    rows.push((
        "degree sequence".into(),
        n,
        out.stats.max_message_bits,
        format!("max deg {} (true {})", seq.iter().max().unwrap(), g.max_degree()),
    ));

    let out = run_protocol(&DegreeExtremesProtocol, &g);
    let e = out.output.expect("honest");
    rows.push((
        "extremes/regularity".into(),
        n,
        out.stats.max_message_bits,
        format!("δ={} Δ={} regular={}", e.min_degree, e.max_degree, e.regular),
    ));

    let out = run_protocol(&EulerianDegreeProtocol, &g);
    rows.push((
        "Eulerian parity".into(),
        n,
        out.stats.max_message_bits,
        format!("all-even = {}", out.output.expect("honest")),
    ));

    let out = run_protocol(&NeighbourhoodSumProtocol, &g);
    let sums = out.output.expect("honest");
    rows.push((
        "(deg, ΣID) fingerprint".into(),
        n,
        out.stats.max_message_bits,
        format!("verifies G: {}", verify_against_sums(&g, &sums)),
    ));
    rows
}

/// E24 rows — scale-free (Barabási–Albert) reconstruction:
/// `(n, m, hub degree Δ, Thm 5 bits at k=m, naive adjacency bits at the
/// hub, reconstructed exactly)`.
pub fn scale_free_sweep(
    ns: &[usize],
    m: usize,
    seed: u64,
) -> Vec<(usize, usize, usize, usize, usize, bool)> {
    ns.iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::barabasi_albert(n, m, &mut rng).unwrap();
            let hub = g.max_degree();
            let proto = DegeneracyProtocol::new(m);
            let out = run_protocol(&proto, &g);
            let ok = out.output.expect("honest").graph().is_some_and(|h| h == g);
            let thm5_bits = out.stats.max_message_bits;
            let naive_bits = (hub + 1) * referee_protocol::bits_for(n) as usize;
            (n, m, hub, thm5_bits, naive_bits, ok)
        })
        .collect()
}

/// E25 rows — the width triangle + colouring payoff:
/// `(family, ω−1, degeneracy d, treewidth, greedy colours (≤ d+1), χ)`.
pub fn width_triangle() -> Vec<(String, usize, usize, usize, usize, usize)> {
    let mut rng = StdRng::seed_from_u64(71);
    let cases: Vec<(String, LabelledGraph)> = vec![
        ("cycle(11)".into(), generators::cycle(11).unwrap()),
        ("petersen".into(), generators::petersen()),
        ("grid(3,4)".into(), generators::grid(3, 4)),
        ("apollonian(13)".into(), generators::random_apollonian(13, &mut rng).unwrap()),
        ("k_tree(13,3)".into(), generators::k_tree(13, 3, &mut rng)),
        ("BA(14,2)".into(), generators::barabasi_albert(14, 2, &mut rng).unwrap()),
        ("gnp(12,.35)".into(), generators::gnp(12, 0.35, &mut rng)),
        ("wheel(9)".into(), generators::wheel(9).unwrap()),
    ];
    cases
        .into_iter()
        .map(|(name, g)| {
            let omega1 = algo::clique_number(&g).saturating_sub(1);
            let d = algo::degeneracy_ordering(&g).degeneracy;
            let tw = algo::treewidth_exact(&g);
            let greedy = algo::degeneracy_coloring(&g).num_colours;
            let chi = algo::chromatic_number_exact(&g);
            (name, omega1, d, tw, greedy, chi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treewidth_chain_holds() {
        for (name, d, tw, mf, ok) in treewidth_chain() {
            assert!(d <= tw, "{name}: degeneracy {d} > treewidth {tw}");
            assert!(tw <= mf, "{name}: treewidth {tw} > min-fill {mf}");
            assert!(ok, "{name}: protocol at k = degeneracy failed");
        }
    }

    #[test]
    fn diameter_t_rows_all_pass() {
        for (thresh, _, pairs, iff_ok, recon_ok) in diameter_t_sweep(&[3, 4, 6], 7, 2) {
            assert!(pairs > 0);
            assert!(iff_ok && recon_ok, "thresh={thresh}");
        }
    }

    #[test]
    fn adaptive_rows_match_prediction() {
        for (name, _d, rounds, predicted, k_final, total, one_round) in adaptive_sweep() {
            assert_eq!(rounds, predicted, "{name}");
            assert_eq!(total, one_round, "{name}");
            assert!(k_final >= 1);
        }
    }

    #[test]
    fn easy_and_scale_free_rows_consistent() {
        for (name, _n, bits, _verdict) in easy_protocol_table(64, 5) {
            assert!(bits <= 3 * 7, "{name}: {bits} bits too large for n = 64");
        }
        for (n, m, hub, thm5, naive, ok) in scale_free_sweep(&[64, 128], 2, 5) {
            assert!(ok, "n = {n}");
            assert!(hub >= m && thm5 < naive);
        }
    }

    #[test]
    fn width_triangle_rows_hold() {
        for (name, omega1, d, tw, greedy, chi) in width_triangle() {
            assert!(omega1 <= d && d <= tw, "{name}");
            assert!(chi <= greedy && greedy <= d + 1, "{name}");
        }
    }

    #[test]
    fn sketch_sweeps_mostly_agree() {
        for (_, _, agree, total) in bipartiteness_sweep(&[20], 6) {
            assert!(agree * 100 >= total * 80);
        }
        for (_, _, _, agree, total) in kconn_agreement_sweep(&[16], 2, 6) {
            assert!(agree * 100 >= total * 80);
        }
    }
}
