//! Frame authentication: a keyed 64-bit MAC on every wire frame.
//!
//! The primitive is the workspace's hand-rolled SipHash-2-4
//! ([`referee_protocol::mac`], re-exported here) — a 128-bit-keyed PRF
//! built precisely for authenticating short messages. `wirenet` appends
//! the full 64-bit tag to every frame, so any corruption of the covered
//! region — header, addressing, payload, single bit or burst — is
//! rejected except with probability `2⁻⁶⁴` per frame.
//!
//! # Threat model
//!
//! * **Detected:** arbitrary in-flight modification of the MAC-covered
//!   region (everything after the length prefix), by a fault *or* by an
//!   active attacker without the key. Length-prefix lies are outside
//!   the MAC but caught structurally: the decoder bounds the length,
//!   cross-checks it against the payload-size field, and a wrong span
//!   fails the tag check anyway.
//! * **Absorbed upstream:** whole-frame replay carries a valid tag; the
//!   session runtime's idempotent duplicate handling (round-stamped,
//!   content-compared) makes identical replays harmless and flags
//!   conflicting ones.
//! * **Out of scope:** confidentiality (frames are cleartext), traffic
//!   analysis, denial of service, and key distribution (keys are
//!   provisioned by whoever wires up [`FleetServer`](crate::FleetServer)
//!   and [`FleetClient`](crate::FleetClient); both ends must agree).
//!
//! Tag comparison is a plain `==`, not constant-time: the adversary
//! modelled here corrupts frames, it does not time the referee.

pub use referee_protocol::mac::{siphash24, siphash24_truncated, MacKey};

/// A 128-bit frame-authentication key shared by both ends of a fleet.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey(MacKey);

impl AuthKey {
    /// A key from explicit bytes.
    pub const fn new(bytes: [u8; 16]) -> AuthKey {
        AuthKey(MacKey(bytes))
    }

    /// A deterministic demo/test key expanded from a seed (splitmix64
    /// stream). Real deployments provision random keys out of band.
    pub fn from_seed(seed: u64) -> AuthKey {
        let mut bytes = [0u8; 16];
        let mut x = seed;
        for chunk in bytes.chunks_mut(8) {
            // splitmix64 step
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        AuthKey(MacKey(bytes))
    }

    /// Derive a related key (cheap domain separation, e.g. one key per
    /// connection from a master key).
    pub fn derive(&self, tweak: u64) -> AuthKey {
        AuthKey(self.0.derive(tweak))
    }

    /// The 64-bit tag over `body`.
    pub fn tag(&self, body: &[u8]) -> u64 {
        siphash24(&self.0, body)
    }

    /// Whether `tag` authenticates `body` under this key.
    pub fn verify(&self, body: &[u8], tag: u64) -> bool {
        self.tag(body) == tag
    }

    /// The raw [`MacKey`] — the evidence layer
    /// ([`referee_protocol::evidence`]) signs and verifies transcript
    /// records under the same per-connection keys the frames themselves
    /// use, so a bundle's derivation path starts from this value.
    pub fn mac_key(&self) -> &MacKey {
        &self.0
    }
}

impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "AuthKey(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_depends_on_key_and_body() {
        let a = AuthKey::from_seed(1);
        let b = AuthKey::from_seed(2);
        let t = a.tag(b"frame body");
        assert!(a.verify(b"frame body", t));
        assert!(!a.verify(b"frame bodY", t));
        assert!(!b.verify(b"frame body", t));
    }

    #[test]
    fn from_seed_is_deterministic_and_spread() {
        assert_eq!(AuthKey::from_seed(7), AuthKey::from_seed(7));
        assert_ne!(AuthKey::from_seed(7), AuthKey::from_seed(8));
    }

    #[test]
    fn derive_separates_domains() {
        let k = AuthKey::from_seed(3);
        assert_ne!(k.derive(0).tag(b"x"), k.derive(1).tag(b"x"));
        assert_ne!(k.derive(0), k);
    }

    #[test]
    fn debug_does_not_leak() {
        assert_eq!(format!("{:?}", AuthKey::from_seed(9)), "AuthKey(..)");
    }
}
