//! E9 (ablation): the paper's Lemma 3 lookup-table decoder vs the
//! algebraic Newton decoder.
//!
//! Expectation: table *construction* blows up combinatorially in n and k
//! (`O(n^k)` entries) while per-query lookups are fast; the Newton decoder
//! needs no preprocessing and stays polynomial, so it wins everywhere the
//! table cannot even be built.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rand::{seq::SliceRandom, Rng};
use referee_degeneracy::{NeighbourhoodDecoder, NewtonDecoder, TableDecoder};
use referee_wideint::UBig;

fn sums_of(ids: &[u32], k: usize) -> Vec<UBig> {
    (1..=k)
        .map(|p| {
            let mut acc = UBig::zero();
            for &i in ids {
                acc.add_assign_ref(&UBig::pow_of(i as u64, p as u32));
            }
            acc
        })
        .collect()
}

fn random_subset(n: usize, d: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut pool: Vec<u32> = (1..=n as u32).collect();
    pool.shuffle(rng);
    let mut s: Vec<u32> = pool[..d].to_vec();
    s.sort_unstable();
    s
}

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/table_build_k3");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| TableDecoder::new(n, 3).expect("within budget").entries())
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/query_k3");
    group.sample_size(30);
    let k = 3usize;
    for n in [32usize, 256, 2048] {
        let mut rng = StdRng::seed_from_u64(3);
        let queries: Vec<(usize, Vec<UBig>)> = (0..64)
            .map(|_| {
                let d = rng.gen_range(0..=k);
                let ids = random_subset(n, d, &mut rng);
                (d, sums_of(&ids, k))
            })
            .collect();
        // Newton: no preprocessing, polynomial per query.
        group.bench_with_input(BenchmarkId::new("newton", n), &n, |b, &n| {
            b.iter(|| {
                for (d, sums) in &queries {
                    NewtonDecoder.decode(n, *d, sums).expect("valid sums");
                }
            })
        });
        // Table: only where buildable (n = 2048, k = 3 would need ~1.4e9
        // entries — that cliff IS the ablation's finding).
        if let Ok(table) = TableDecoder::new(n, k) {
            group.bench_with_input(BenchmarkId::new("table", n), &n, |b, &n| {
                b.iter(|| {
                    for (d, sums) in &queries {
                        table.decode(n, *d, sums).expect("valid sums");
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table_build, bench_query);
criterion_main!(benches);
