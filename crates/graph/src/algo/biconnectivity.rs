//! Articulation points, bridges and 2-edge-connected components
//! (iterative Tarjan low-link, `O(n + m)`).
//!
//! The paper's central open question (§IV) is one-round *connectivity*;
//! its robustness refinements — which single failures disconnect the
//! network — are what a practitioner monitoring an interconnection
//! network actually asks. These routines are the centralized ground
//! truth used by the failure-injection experiments and the
//! `network_monitoring` example: a bridge is exactly an edge whose loss
//! splits a component, and an articulation point a node whose loss does.
//!
//! All traversals are iterative (explicit stacks): the experiments run
//! on paths of length 10⁵, which would overflow the call stack with a
//! recursive DFS.

use crate::{Edge, LabelledGraph, VertexId};

/// Result of the low-link pass over one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biconnectivity {
    /// Articulation points (cut vertices), ascending.
    pub articulation_points: Vec<VertexId>,
    /// Bridges (cut edges) in canonical order.
    pub bridges: Vec<Edge>,
    /// `two_edge_component[i]` = 0-based label of the 2-edge-connected
    /// component of vertex `i + 1` (components = classes of the
    /// "connected after any single edge deletion" relation).
    pub two_edge_component: Vec<u32>,
}

impl Biconnectivity {
    /// Number of distinct 2-edge-connected components.
    pub fn two_edge_component_count(&self) -> usize {
        self.two_edge_component.iter().copied().max().map_or(0, |m| m as usize + 1)
    }

    /// Is `v` an articulation point?
    pub fn is_articulation(&self, v: VertexId) -> bool {
        self.articulation_points.binary_search(&v).is_ok()
    }

    /// Is `{u, v}` a bridge?
    pub fn is_bridge(&self, u: VertexId, v: VertexId) -> bool {
        self.bridges.binary_search(&Edge::new(u, v)).is_ok()
    }
}

/// Compute articulation points, bridges and 2-edge-connected components
/// in one iterative DFS sweep.
pub fn biconnectivity(g: &LabelledGraph) -> Biconnectivity {
    let n = g.n();
    let mut disc = vec![0u32; n]; // discovery time + 1 (0 = unvisited)
    let mut low = vec![0u32; n];
    let mut parent = vec![usize::MAX; n];
    let mut child_count = vec![0u32; n];
    let mut is_art = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 1u32;

    // Iterative DFS. Each frame: (vertex, index into its neighbour list).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != 0 {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, 0));
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let nbrs = g.neighbourhood((v + 1) as VertexId);
            if *idx < nbrs.len() {
                let w = (nbrs[*idx] - 1) as usize;
                *idx += 1;
                if disc[w] == 0 {
                    parent[w] = v;
                    child_count[v] += 1;
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    stack.push((w, 0));
                } else if w != parent[v] {
                    // Back/cross edge in undirected DFS: a back edge.
                    low[v] = low[v].min(disc[w]);
                }
                // A parallel path to the parent cannot exist (simple
                // graph), so skipping exactly one parent occurrence is
                // sound.
            } else {
                stack.pop();
                let p = parent[v];
                if p != usize::MAX {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        bridges.push(Edge::new((v + 1) as VertexId, (p + 1) as VertexId));
                    }
                    if p != root && low[v] >= disc[p] {
                        is_art[p] = true;
                    }
                }
            }
        }
        if child_count[root] >= 2 {
            is_art[root] = true;
        }
    }

    bridges.sort_unstable();
    let articulation_points: Vec<VertexId> =
        (0..n).filter(|&v| is_art[v]).map(|v| (v + 1) as VertexId).collect();

    // 2-edge-connected components: connected components after removing
    // bridges. Union along every non-bridge edge.
    let mut dsu = crate::dsu::Dsu::new(n);
    for e in g.edges() {
        if bridges.binary_search(&e).is_err() {
            dsu.union((e.0 - 1) as usize, (e.1 - 1) as usize);
        }
    }
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut two_edge_component = vec![0u32; n];
    for (v, slot) in two_edge_component.iter_mut().enumerate() {
        let root = dsu.find(v);
        if label[root] == u32::MAX {
            label[root] = next;
            next += 1;
        }
        *slot = label[root];
    }

    Biconnectivity { articulation_points, bridges, two_edge_component }
}

/// Convenience: just the bridges.
pub fn bridges(g: &LabelledGraph) -> Vec<Edge> {
    biconnectivity(g).bridges
}

/// Convenience: just the articulation points.
pub fn articulation_points(g: &LabelledGraph) -> Vec<VertexId> {
    biconnectivity(g).articulation_points
}

/// Is `g` 2-edge-connected (connected, ≥ 2 vertices, and no bridge)?
pub fn is_two_edge_connected(g: &LabelledGraph) -> bool {
    g.n() >= 2 && crate::algo::is_connected(g) && bridges(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{component_count, is_connected};
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute force: v is an articulation point iff deleting it increases
    /// the component count (among the remaining vertices).
    fn brute_articulation(g: &LabelledGraph) -> Vec<VertexId> {
        let base = component_count(g);
        g.vertices()
            .filter(|&v| {
                let keep: Vec<VertexId> = g.vertices().filter(|&u| u != v).collect();
                let (sub, _) = g.induced_subgraph(&keep);
                // Deleting an isolated vertex removes a component; any
                // other deletion keeps the count unless the vertex cuts.
                component_count(&sub) > if g.degree(v) == 0 { base - 1 } else { base }
            })
            .collect()
    }

    /// Brute force: an edge is a bridge iff deleting it splits a
    /// component.
    fn brute_bridges(g: &LabelledGraph) -> Vec<Edge> {
        let base = component_count(g);
        g.edges()
            .filter(|e| {
                let mut h = g.clone();
                h.remove_edge(e.0, e.1).unwrap();
                component_count(&h) > base
            })
            .collect()
    }

    #[test]
    fn path_is_all_bridges() {
        let g = generators::path(6);
        let b = biconnectivity(&g);
        assert_eq!(b.bridges.len(), 5);
        assert_eq!(b.articulation_points, vec![2, 3, 4, 5]);
        assert_eq!(b.two_edge_component_count(), 6);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn cycle_has_none() {
        let g = generators::cycle(8).unwrap();
        let b = biconnectivity(&g);
        assert!(b.bridges.is_empty());
        assert!(b.articulation_points.is_empty());
        assert_eq!(b.two_edge_component_count(), 1);
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn barbell_cut_structure() {
        // Two triangles joined by a bridge 3-4.
        let g = LabelledGraph::from_edges(
            6,
            [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)],
        )
        .unwrap();
        let b = biconnectivity(&g);
        assert_eq!(b.bridges, vec![Edge(3, 4)]);
        assert!(b.is_bridge(4, 3));
        assert_eq!(b.articulation_points, vec![3, 4]);
        assert!(b.is_articulation(3) && !b.is_articulation(1));
        assert_eq!(b.two_edge_component_count(), 2);
        assert_eq!(b.two_edge_component[0], b.two_edge_component[2]);
        assert_ne!(b.two_edge_component[0], b.two_edge_component[3]);
    }

    #[test]
    fn star_centre_is_articulation() {
        let g = generators::star(7).unwrap();
        let b = biconnectivity(&g);
        assert_eq!(b.articulation_points, vec![1]);
        assert_eq!(b.bridges.len(), 6);
    }

    #[test]
    fn root_with_two_children_detected() {
        // DFS roots need the special two-children rule: vertex 1 is the
        // centre of a path 2-1-3 when DFS starts at 1.
        let g = LabelledGraph::from_edges(3, [(1, 2), (1, 3)]).unwrap();
        assert_eq!(articulation_points(&g), vec![1]);
    }

    #[test]
    fn empty_and_trivial() {
        assert!(biconnectivity(&LabelledGraph::new(0)).bridges.is_empty());
        let b = biconnectivity(&LabelledGraph::new(3));
        assert!(b.articulation_points.is_empty());
        assert_eq!(b.two_edge_component_count(), 3);
        assert!(!is_two_edge_connected(&LabelledGraph::new(1)));
        assert!(!is_two_edge_connected(&LabelledGraph::new(3)));
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        for g in crate::enumerate::all_graphs(5) {
            let b = biconnectivity(&g);
            assert_eq!(b.articulation_points, brute_articulation(&g), "{g:?}");
            assert_eq!(b.bridges, brute_bridges(&g), "{g:?}");
        }
    }

    #[test]
    fn matches_brute_force_on_random() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..30 {
            let g = generators::gnp(12, 0.18, &mut rng);
            let b = biconnectivity(&g);
            assert_eq!(b.articulation_points, brute_articulation(&g), "trial {trial}");
            assert_eq!(b.bridges, brute_bridges(&g), "trial {trial}");
        }
    }

    #[test]
    fn two_edge_components_respect_bridge_deletion() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::gnp(30, 0.08, &mut rng);
        let b = biconnectivity(&g);
        // After deleting all bridges, component structure == labels.
        let mut h = g.clone();
        for e in &b.bridges {
            h.remove_edge(e.0, e.1).unwrap();
        }
        let comps = crate::algo::components(&h);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(
                    comps[u] == comps[v],
                    b.two_edge_component[u] == b.two_edge_component[v],
                    "{u} {v}"
                );
            }
        }
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        // 100k-vertex path: the iterative DFS must not recurse.
        let g = generators::path(100_000);
        let b = biconnectivity(&g);
        assert_eq!(b.bridges.len(), 99_999);
        assert_eq!(b.articulation_points.len(), 99_998);
        assert!(is_connected(&g));
    }
}
