//! One-round public-coin **k-edge-connectivity** by forest peeling
//! (extension E19).
//!
//! Ahn–Guha–McGregor's second trick: linearity lets the referee *edit*
//! the sketched graph after the round is over. Each node ships `k`
//! independent groups of connectivity sketches. The referee:
//!
//! 1. extracts a spanning forest `F₁` from group 1 (sketch-Borůvka);
//! 2. **subtracts** `F₁`'s edges from group 2's sketches — it knows the
//!    public hash keys, so it can compute each deleted edge's
//!    contribution to both endpoint sketches and cancel it — and
//!    extracts `F₂`, a spanning forest of `G − F₁`;
//! 3. … and so on through `F_k`.
//!
//! The union `H = F₁ ∪ … ∪ F_k` (≤ `k(n−1)` edges) preserves every cut
//! of `G` up to size `k`: a cut of size `c ≤ k` loses at most one edge
//! to each forest that crosses it, and a forest only fails to cross when
//! previous forests already exhausted the cut — so
//! `min(λ(H), k) = min(λ(G), k)`. The referee finishes with an exact
//! Stoer–Wagner min cut on the sparse `H`.
//!
//! One round, `O(k · log³ n)` bits per node, Monte-Carlo (sampler misses
//! can truncate a forest, which can only *under*-merge and therefore
//! under-report connectivity — never over-report it, because every
//! sampled edge is genuine).

use crate::boruvka::boruvka_components;
use crate::l0::{EdgeSlot, L0Sampler};
use referee_graph::{algo, LabelledGraph, VertexId};
use referee_protocol::{BitWriter, DecodeError, Message, NodeView, OneRoundProtocol};

/// Stream salt for the k-connectivity sketch groups.
const KCONN_SALT: u64 = 0xface_0000;

/// The public-coin one-round k-edge-connectivity protocol: the referee
/// learns `min(λ(G), k)` from one `O(k log³ n)`-bit message per node.
#[derive(Debug, Clone, Copy)]
pub struct SketchKConnectivityProtocol {
    /// Shared seed (public coins).
    pub seed: u64,
    /// Connectivity threshold: the answer is `min(λ(G), k)`.
    pub k: usize,
}

impl SketchKConnectivityProtocol {
    /// Protocol deciding connectivity up to threshold `k ≥ 1`.
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k >= 1, "threshold must be ≥ 1");
        SketchKConnectivityProtocol { seed, k }
    }

    /// Borůvka phase budget (with slack for sampler misses).
    pub fn phases_for(n: usize) -> u32 {
        (usize::BITS - n.max(1).leading_zeros()) + 4
    }

    /// Exact per-node message bits: `k` groups × phases × sketch size.
    pub fn message_bits(&self, n: usize) -> usize {
        self.k * Self::phases_for(n) as usize * L0Sampler::levels_for(n) as usize * 3 * 64
    }

    fn stream(&self, group: usize, phase: u32, n: usize) -> u64 {
        KCONN_SALT + (group as u64) * Self::phases_for(n) as u64 + phase as u64
    }
}

impl OneRoundProtocol for SketchKConnectivityProtocol {
    /// `Ok(min(λ(G), k))`, or a decode error on malformed messages.
    type Output = Result<usize, DecodeError>;

    fn name(&self) -> String {
        format!("public-coin {}-edge-connectivity (seed {})", self.k, self.seed)
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n = view.n;
        let mut w = BitWriter::new();
        for group in 0..self.k {
            for phase in 0..Self::phases_for(n) {
                let mut sk = L0Sampler::new(n, self.seed, self.stream(group, phase, n));
                for &nb in view.neighbours {
                    let (u, v) = (view.id.min(nb), view.id.max(nb));
                    let sign = if view.id == u { 1 } else { -1 };
                    sk.update(EdgeSlot::encode(u, v), sign);
                }
                sk.write(&mut w);
            }
        }
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        if n < 2 {
            return Ok(0);
        }
        let phases = Self::phases_for(n) as usize;
        // groups[g][v][p]
        let mut groups: Vec<Vec<Vec<L0Sampler>>> =
            vec![vec![Vec::with_capacity(phases); n]; self.k];
        for (v, msg) in messages.iter().enumerate() {
            let mut r = msg.reader();
            for (g, group) in groups.iter_mut().enumerate() {
                for phase in 0..phases as u32 {
                    group[v].push(L0Sampler::read(
                        &mut r,
                        n,
                        self.seed,
                        self.stream(g, phase, n),
                    )?);
                }
            }
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing sketch bits".into()));
            }
        }

        // Peel k forests, editing later groups as edges are removed.
        let mut union = LabelledGraph::new(n);
        let mut removed: Vec<(VertexId, VertexId)> = Vec::new();
        for group in groups.iter_mut().take(self.k) {
            // Subtract previously removed edges from this group.
            for &(u, v) in &removed {
                let slot = EdgeSlot::encode(u, v);
                for sk in group[(u - 1) as usize].iter_mut() {
                    sk.update(slot, -1);
                }
                for sk in group[(v - 1) as usize].iter_mut() {
                    sk.update(slot, 1);
                }
            }
            let outcome = boruvka_components(n, group, phases);
            if outcome.forest.is_empty() {
                break; // nothing left to peel
            }
            for &(u, v) in &outcome.forest {
                union.add_edge_if_absent(u, v).map_err(|e| {
                    DecodeError::Inconsistent(format!("peeled edge invalid: {e}"))
                })?;
                removed.push((u.min(v), u.max(v)));
            }
        }
        Ok(algo::edge_connectivity(&union).min(self.k))
    }
}

/// Convenience: run the protocol, returning `min(λ(G), k)`.
///
/// ```
/// use referee_graph::generators;
/// use referee_sketches::kconn::sketch_edge_connectivity;
/// let cube = generators::hypercube(3); // λ = 3
/// assert_eq!(sketch_edge_connectivity(&cube, 2011, 2), 2); // capped
/// assert_eq!(sketch_edge_connectivity(&cube, 2011, 4), 3); // exact
/// ```
pub fn sketch_edge_connectivity(g: &LabelledGraph, seed: u64, k: usize) -> usize {
    referee_protocol::run_protocol(&SketchKConnectivityProtocol::new(seed, k), g)
        .output
        .expect("honest messages decode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::generators;

    #[test]
    fn known_families_at_various_thresholds() {
        let cases: Vec<(LabelledGraph, usize)> = vec![
            (generators::path(12), 1),
            (generators::cycle(12).unwrap(), 2),
            (generators::complete(7), 6),
            (generators::hypercube(3), 3),
            (generators::complete_bipartite(3, 4), 3),
        ];
        for (g, lambda) in cases {
            for k in 1..=4usize {
                let got = sketch_edge_connectivity(&g, 2011, k);
                assert_eq!(got, lambda.min(k), "{g:?} at k={k}");
            }
        }
    }

    #[test]
    fn disconnected_reports_zero() {
        let g = generators::path(6).disjoint_union(&generators::cycle(5).unwrap());
        for k in 1..=3usize {
            assert_eq!(sketch_edge_connectivity(&g, 3, k), 0, "k={k}");
        }
        assert_eq!(sketch_edge_connectivity(&LabelledGraph::new(4), 1, 2), 0);
        assert_eq!(sketch_edge_connectivity(&LabelledGraph::new(1), 1, 2), 0);
    }

    #[test]
    fn bridge_detected_as_lambda_one() {
        // Two K4s joined by one bridge: λ = 1 even though both sides are
        // 3-edge-connected.
        let mut g = generators::complete(4).disjoint_union(&generators::complete(4));
        g.add_edge(4, 5).unwrap();
        assert_eq!(sketch_edge_connectivity(&g, 7, 3), 1);
    }

    #[test]
    fn agreement_with_centralized_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut total = 0;
        let mut agree = 0;
        for seed in 0..25u64 {
            let g = generators::gnp(20, 0.25, &mut rng);
            let truth = algo::edge_connectivity(&g);
            let k = 3;
            total += 1;
            if sketch_edge_connectivity(&g, 4000 + seed, k) == truth.min(k) {
                agree += 1;
            }
        }
        assert!(agree * 100 >= total * 90, "agreement {agree}/{total} below 90%");
    }

    #[test]
    fn never_over_reports() {
        // One-sided error direction: sampled edges are genuine, so the
        // peeled union is a subgraph of G and λ(H) ≤ λ(G).
        let mut rng = StdRng::seed_from_u64(12);
        for seed in 0..20u64 {
            let g = generators::gnp(16, 0.3, &mut rng);
            let truth = algo::edge_connectivity(&g);
            let got = sketch_edge_connectivity(&g, 5000 + seed, 4);
            assert!(got <= truth.min(4), "over-reported: {got} > {truth}");
        }
    }

    #[test]
    fn message_bits_linear_in_k() {
        let p1 = SketchKConnectivityProtocol::new(1, 1);
        let p4 = SketchKConnectivityProtocol::new(1, 4);
        assert_eq!(p4.message_bits(256), 4 * p1.message_bits(256));
    }

    #[test]
    fn malformed_messages_rejected() {
        let p = SketchKConnectivityProtocol::new(3, 2);
        assert!(p.global(4, &vec![Message::empty(); 4]).is_err());
    }

    #[test]
    #[should_panic(expected = "threshold must be ≥ 1")]
    fn zero_threshold_rejected() {
        let _ = SketchKConnectivityProtocol::new(1, 0);
    }
}
