//! Wire-level observability: atomic counters shared between the reactor,
//! the transports, and whoever reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one endpoint (a client's connection pool or a
/// server). All methods are lock-free; read a coherent-enough view with
/// [`WireMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct WireMetrics {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    mac_rejects: AtomicU64,
    decode_rejects: AtomicU64,
    backpressure_stalls: AtomicU64,
    tampered: AtomicU64,
    orphan_frames: AtomicU64,
    connections: AtomicU64,
    partial_frames: AtomicU64,
    verdict_frames: AtomicU64,
    downlink_frames: AtomicU64,
    shard_reconnects: AtomicU64,
    replayed_frames: AtomicU64,
}

macro_rules! bump {
    ($name:ident) => {
        pub(crate) fn $name(&self, by: u64) {
            self.$name.fetch_add(by, Ordering::Relaxed);
        }
    };
}

impl WireMetrics {
    bump!(frames_sent);
    bump!(frames_received);
    bump!(bytes_sent);
    bump!(bytes_received);
    bump!(mac_rejects);
    bump!(decode_rejects);
    bump!(backpressure_stalls);
    bump!(tampered);
    bump!(orphan_frames);
    bump!(connections);
    bump!(partial_frames);
    bump!(verdict_frames);
    bump!(downlink_frames);
    bump!(shard_reconnects);
    bump!(replayed_frames);

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            mac_rejects: self.mac_rejects.load(Ordering::Relaxed),
            decode_rejects: self.decode_rejects.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            tampered: self.tampered.load(Ordering::Relaxed),
            orphan_frames: self.orphan_frames.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            partial_frames: self.partial_frames.load(Ordering::Relaxed),
            verdict_frames: self.verdict_frames.load(Ordering::Relaxed),
            downlink_frames: self.downlink_frames.load(Ordering::Relaxed),
            shard_reconnects: self.shard_reconnects.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of [`WireMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Frames queued for transmission (after any tampering).
    pub frames_sent: u64,
    /// Frames received, authenticated and decoded.
    pub frames_received: u64,
    /// Wire bytes queued for transmission.
    pub bytes_sent: u64,
    /// Wire bytes read off sockets.
    pub bytes_received: u64,
    /// Frames rejected by MAC verification.
    pub mac_rejects: u64,
    /// Frames rejected for structural reasons (version, length,
    /// payload canonicality).
    pub decode_rejects: u64,
    /// Backpressure events. On a client: sends that had to wait for a
    /// congested write buffer to drain. On a server: throttling
    /// episodes where reading from a peer was paused until its echo
    /// buffer drained.
    pub backpressure_stalls: u64,
    /// Frames deliberately corrupted by the fault-injection hook.
    pub tampered: u64,
    /// Authenticated frames that arrived for a session no longer (or
    /// never) registered — late echoes after session teardown.
    pub orphan_frames: u64,
    /// Connections ever opened.
    pub connections: u64,
    /// Sharded referee only: cross-shard `PartialState` frames
    /// exchanged between shard workers.
    pub partial_frames: u64,
    /// Sharded referee only: session verdicts issued.
    pub verdict_frames: u64,
    /// Multi-round referee only: per-round downlink frames streamed
    /// back to clients.
    pub downlink_frames: u64,
    /// Remote placement only: (re)connections a coordinator proxy made
    /// to its shard host — 1 per proxy for a clean run, more after
    /// shard-host loss.
    pub shard_reconnects: u64,
    /// Remote placement only: journaled frames resent to a reconnected
    /// shard host (announcements excluded).
    pub replayed_frames: u64,
}

impl std::fmt::Display for WireSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {} | frames {}/{} | bytes {}/{} | mac-rejects {} | decode-rejects {} | \
             stalls {} | tampered {} | orphans {} | partials {} | verdicts {} | downlinks {} \
             | shard-reconnects {} | replays {}",
            self.connections,
            self.frames_sent,
            self.frames_received,
            self.bytes_sent,
            self.bytes_received,
            self.mac_rejects,
            self.decode_rejects,
            self.backpressure_stalls,
            self.tampered,
            self.orphan_frames,
            self.partial_frames,
            self.verdict_frames,
            self.downlink_frames,
            self.shard_reconnects,
            self.replayed_frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let m = WireMetrics::default();
        m.frames_sent(3);
        m.bytes_received(100);
        m.mac_rejects(1);
        let s = m.snapshot();
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.bytes_received, 100);
        assert_eq!(s.mac_rejects, 1);
        assert_eq!(s.frames_received, 0);
        assert!(format!("{s}").contains("mac-rejects 1"));
    }
}
