#![warn(missing_docs)]
//! `referee-one-round` — umbrella crate of the workspace reproducing
//! Becker et al., *Adding a referee to an interconnection network: What
//! can(not) be computed in one round* (IPDPS 2011).
//!
//! Everything is re-exported from [`referee_core`]; see that crate (and
//! `README.md` / `DESIGN.md` at the repository root) for the full map.
//! The runnable binaries live in `examples/` and the experiment
//! regenerators in `crates/bench`.

pub use referee_core::*;
