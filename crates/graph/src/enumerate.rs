//! Exhaustive enumeration of labelled graphs at small `n`.
//!
//! The counting argument of Lemma 1 compares `log₂ g(n)` — the number of
//! labelled graphs in a family — against the frugal message budget
//! `O(n log n)`. For `n ≤ 7` there are at most 2^21 labelled graphs, so the
//! families can be counted *exactly* by enumeration. Graphs are encoded as
//! edge bitmasks over the C(n,2) canonical edge slots, giving an iterator
//! that materializes [`LabelledGraph`]s lazily.

use crate::{LabelledGraph, VertexId};

/// Number of edge slots, C(n, 2).
pub fn edge_slots(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// The canonical edge order used by masks: (1,2), (1,3), …, (1,n), (2,3), …
pub fn slot_edges(n: usize) -> Vec<(VertexId, VertexId)> {
    let mut v = Vec::with_capacity(edge_slots(n));
    for u in 1..=n as VertexId {
        for w in (u + 1)..=n as VertexId {
            v.push((u, w));
        }
    }
    v
}

/// Materialize the graph for an edge mask (bit `i` set ⇔ the `i`-th slot
/// edge is present).
pub fn graph_from_mask(n: usize, mask: u64, slots: &[(VertexId, VertexId)]) -> LabelledGraph {
    let mut g = LabelledGraph::new(n);
    let mut bits = mask;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let (u, v) = slots[i];
        g.add_edge(u, v).expect("slot edge valid");
    }
    g
}

/// Recover the edge mask of a graph (inverse of [`graph_from_mask`]).
pub fn mask_from_graph(g: &LabelledGraph, slots: &[(VertexId, VertexId)]) -> u64 {
    let mut mask = 0u64;
    for (i, &(u, v)) in slots.iter().enumerate() {
        if g.has_edge(u, v) {
            mask |= 1 << i;
        }
    }
    mask
}

/// Iterator over **all** labelled graphs on `n` vertices (2^C(n,2) of
/// them). Panics if `C(n,2) > 63`, i.e. `n > 11`; exhaustive experiments
/// use `n ≤ 8`.
pub fn all_graphs(n: usize) -> impl Iterator<Item = LabelledGraph> {
    let slots = slot_edges(n);
    let bits = edge_slots(n);
    assert!(bits <= 63, "all_graphs infeasible beyond n = 11 (C(n,2) > 63)");
    (0u64..(1u64 << bits)).map(move |mask| graph_from_mask(n, mask, &slots))
}

/// Count the labelled graphs on `n` vertices satisfying `pred`, without
/// retaining them. Returns `(matching, total)`.
pub fn count_graphs(n: usize, mut pred: impl FnMut(&LabelledGraph) -> bool) -> (u64, u64) {
    let total = 1u64 << edge_slots(n);
    let mut matching = 0u64;
    for g in all_graphs(n) {
        if pred(&g) {
            matching += 1;
        }
    }
    (matching, total)
}

/// Enumerate all *balanced bipartite* labelled graphs of Theorem 3: parts
/// `{1..⌈n/2⌉}` and `{⌈n/2⌉+1..n}`, all 2^(⌈n/2⌉·⌊n/2⌋) subsets of the
/// cross edges.
pub fn all_balanced_bipartite(n: usize) -> impl Iterator<Item = LabelledGraph> {
    let half = n.div_ceil(2);
    let cross: Vec<(VertexId, VertexId)> = (1..=half as VertexId)
        .flat_map(|u| ((half + 1) as VertexId..=n as VertexId).map(move |v| (u, v)))
        .collect();
    let bits = cross.len();
    assert!(bits <= 63, "bipartite enumeration infeasible at this n");
    (0u64..(1u64 << bits)).map(move |mask| {
        let mut g = LabelledGraph::new(n);
        let mut b = mask;
        while b != 0 {
            let i = b.trailing_zeros() as usize;
            b &= b - 1;
            let (u, v) = cross[i];
            g.add_edge(u, v).expect("cross edge valid");
        }
        g
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn slot_count_and_order() {
        assert_eq!(edge_slots(4), 6);
        assert_eq!(slot_edges(4), vec![(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]);
        assert_eq!(edge_slots(0), 0);
        assert_eq!(edge_slots(1), 0);
    }

    #[test]
    fn mask_round_trip() {
        let slots = slot_edges(5);
        for mask in [0u64, 1, 0b1010, (1 << 10) - 1] {
            let g = graph_from_mask(5, mask, &slots);
            assert_eq!(mask_from_graph(&g, &slots), mask);
        }
    }

    #[test]
    fn all_graphs_count() {
        assert_eq!(all_graphs(0).count(), 1);
        assert_eq!(all_graphs(1).count(), 1);
        assert_eq!(all_graphs(2).count(), 2);
        assert_eq!(all_graphs(3).count(), 8);
        assert_eq!(all_graphs(4).count(), 64);
    }

    #[test]
    fn known_small_counts() {
        // labelled connected graphs on 4 vertices: 38 (OEIS A001187)
        let (conn, total) = count_graphs(4, algo::is_connected);
        assert_eq!((conn, total), (38, 64));
        // labelled forests on 4 vertices: 38 too? No: A001858(4) = 38.
        let (forests, _) = count_graphs(4, algo::is_forest);
        assert_eq!(forests, 38);
        // labelled triangle-free graphs on 4 vertices: A006785-labelled? Check
        // by complementary logic instead: graphs with a triangle on 4 vertices.
        let (tri, _) = count_graphs(4, algo::has_triangle);
        // 4 triangles alone × subsets of remaining 3 edges minus overlaps —
        // trust brute force: verify against an independent direct scan.
        let mut expect = 0;
        for g in all_graphs(4) {
            let mut found = false;
            for a in 1..=4u32 {
                for b in (a + 1)..=4 {
                    for c in (b + 1)..=4 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            found = true;
                        }
                    }
                }
            }
            if found {
                expect += 1;
            }
        }
        assert_eq!(tri, expect);
    }

    #[test]
    fn square_free_counts_small() {
        // n = 4: graphs containing a C4. Total 64; count square-free exactly.
        let (sf, total) = count_graphs(4, |g| !algo::has_square(g));
        assert_eq!(total, 64);
        // Cross-check: C4 needs ≥ 4 edges; count directly via count_squares.
        let (with_sq, _) = count_graphs(4, |g| algo::count_squares(g) > 0);
        assert_eq!(sf + with_sq, 64);
        // 3 labelled 4-cycles exist on 4 vertices; every supergraph of one
        // contains a square. Inclusion–exclusion on the three C4s (each pair
        // of distinct C4s unions to all 6 edges = K4):
        // |A∪B∪C| = 3·2^2 - 3·1 + 1 = 10 ⇒ square-free = 54.
        assert_eq!(sf, 54);
    }

    #[test]
    fn balanced_bipartite_enumeration() {
        // n = 4: parts {1,2} | {3,4}, 2^4 = 16 graphs
        let graphs: Vec<_> = all_balanced_bipartite(4).collect();
        assert_eq!(graphs.len(), 16);
        for g in &graphs {
            assert!(algo::bipartite::respects_balanced_split(g));
        }
        // odd n = 5: parts {1,2,3} | {4,5}, 2^6 graphs
        assert_eq!(all_balanced_bipartite(5).count(), 64);
    }
}
