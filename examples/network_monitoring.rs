//! A systems-flavoured scenario: central monitoring of a sparse
//! interconnection network — the motivation of the paper's introduction
//! ("which properties of a distributed network can be computed from a few
//! amount of local information provided by its nodes?").
//!
//! A monitoring service (the referee) is attached to every switch of a
//! datacenter-like sparse fabric. Once, at boot, each switch uploads an
//! O(log n)-bit sketch; from then on the monitor answers topology queries
//! centrally, detects class violations, and — for the one property a
//! single round (conjecturally) cannot give, arbitrary-graph connectivity
//! under failures — falls back to the O(log n)-round protocol of §IV.
//!
//! Run with: `cargo run --release --example network_monitoring`

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Fabric: a 3-degenerate random topology on 500 switches (think
    // "planar-ish wiring with a few shortcut links").
    let n = 500;
    let fabric = generators::random_k_degenerate(n, 3, 0.95, &mut rng);
    println!("fabric: {n} switches, {} links, max degree {}", fabric.m(), fabric.max_degree());

    // --- One round: topology upload -----------------------------------------
    let protocol = DegeneracyProtocol::new(3);
    let outcome = run_protocol(&protocol, &fabric);
    let stats = &outcome.stats;
    println!(
        "upload: {} bits per switch ({:.1}×log₂ n); referee decode took {:.1} ms",
        stats.max_message_bits,
        stats.frugality_ratio(),
        stats.global_seconds * 1e3
    );
    let topo = match outcome.output.unwrap() {
        Reconstruction::Graph(g) => g,
        Reconstruction::NotInClass => unreachable!("fabric is 3-degenerate by construction"),
    };
    assert_eq!(topo, fabric);

    // --- Central queries, free after reconstruction -------------------------
    println!(
        "monitor: connected={} components={} diameter={:?}",
        algo::is_connected(&topo),
        algo::component_count(&topo),
        algo::diameter(&topo).finite()
    );

    // --- Contrast: what the naive baseline would cost -----------------------
    let naive =
        run_protocol(&referee_one_round::protocol::baseline::AdjacencyListProtocol, &fabric);
    println!(
        "baseline (footnote 1, full adjacency): {} bits/switch vs sketch's {} — {}× saving at Δ = {}",
        naive.stats.max_message_bits,
        stats.max_message_bits,
        naive.stats.max_message_bits / stats.max_message_bits.max(1),
        fabric.max_degree()
    );

    // --- Failure drill: links die, is the fabric still connected? ----------
    // Connectivity of an *arbitrary* damaged graph in one round is the
    // paper's open question; with a few rounds it is easy (§IV). Simulate
    // random link failures and run the Borůvka multi-round protocol.
    let mut damaged = fabric.clone();
    let edges: Vec<Edge> = damaged.edges().collect();
    for (i, e) in edges.iter().enumerate() {
        if i % 3 == 0 {
            damaged.remove_edge(e.0, e.1).unwrap();
        }
    }
    let (alive, mstats) = boruvka_connectivity(&damaged);
    println!(
        "failure drill: dropped {} links → connected={alive} \
         (decided in {} rounds, ≤{} bits per message, vs ⌈log₂ n⌉ = {})",
        edges.len() / 3 + 1,
        mstats.rounds,
        mstats.max_uplink_bits.max(mstats.max_downlink_bits).max(mstats.max_link_bits),
        bits_for(n),
    );
    assert_eq!(alive, algo::is_connected(&damaged));

    // --- Alternative: one round, public coins (AGM sketches) ---------------
    // If the switches share a random seed, connectivity is decidable in a
    // single round at polylog bits — the E17 extension probing the paper's
    // open question.
    let sk_ans = sketch_connectivity(&damaged, 0xC0FFEE);
    println!(
        "sketch protocol: one round, {} bits/switch → connected={sk_ans}{}",
        SketchConnectivityProtocol::message_bits(n),
        if sk_ans == alive { " (agrees)" } else { " (Monte-Carlo miss)" },
    );

    // --- Alternative: partition the fleet into racks ------------------------
    // §IV's remark: if switches within a rack can gossip freely, k racks
    // decide connectivity in ONE round with O(k log n) bits per switch.
    for racks in [4usize, 16] {
        let out = partition_connectivity(&damaged, racks);
        assert_eq!(out.connected, algo::is_connected(&damaged));
        println!(
            "rack-partition protocol: {racks:>2} racks → one round, \
             {} bits/switch (bound {})",
            out.max_message_bits, out.bound_bits
        );
    }
}
