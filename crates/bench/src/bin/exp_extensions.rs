//! E18–E22: extension experiments layered on the paper's grid.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_extensions`

use referee_bench::experiments::extensions;
use referee_bench::section;

fn main() {
    println!("# Extensions: public-coin protocols, adaptive rounds, generalized hardness");

    section("E18 — one-round public-coin bipartiteness via the double cover (cc(B) = 2·cc(G))");
    println!("n\tbits/node\tagreements\truns");
    for (n, bits, agree, total) in extensions::bipartiteness_sweep(&[16, 24, 32, 48], 10) {
        println!("{n}\t{bits}\t{agree}\t{total}");
        assert!(agree * 100 >= total * 90);
    }
    println!(
        "→ with shared randomness, the §IV \"natural question\" (bipartiteness) is also\n\
         one-round decidable at polylog bits; the deterministic conjecture is about coins."
    );

    section("E19a — k-edge-connectivity by forest peeling: named families (k = 3)");
    println!("family\tλ(G)\tk\tprotocol min(λ,k)");
    for (name, lambda, k, got) in extensions::kconn_named_families(3) {
        println!("{name}\t{lambda}\t{k}\t{got}");
        assert_eq!(got, lambda.min(k), "{name}");
    }

    section("E19b — k-edge-connectivity agreement on G(n, 4/n), k = 3");
    println!("n\tk\tbits/node\tagreements\truns");
    for (n, k, bits, agree, total) in extensions::kconn_agreement_sweep(&[16, 24, 32], 3, 10) {
        println!("{n}\t{k}\t{bits}\t{agree}\t{total}");
    }
    println!(
        "→ sketch linearity lets the referee delete recovered forests after the round\n\
              and keep sampling: one round certifies cuts up to k."
    );

    section("E20 — adaptive degeneracy reconstruction with UNKNOWN k (doubling rounds)");
    println!(
        "family\td\trounds\t⌈log₂d⌉+1\tk_final\ttotal bits/node\tone-shot bits at k_final"
    );
    for (name, d, rounds, predicted, k_final, total, one_round) in extensions::adaptive_sweep()
    {
        println!("{name}\t{d}\t{rounds}\t{predicted}\t{k_final}\t{total}\t{one_round}");
        assert_eq!(rounds, predicted);
        assert_eq!(total, one_round);
    }
    println!(
        "→ nobody knew k: the doubling schedule pays ⌈log₂ d⌉+1 rounds and ships exactly\n\
         the bits the one-round Theorem 5 protocol would have sent at k_final < 2d."
    );

    section("E21 — diameter ≤ t is hard for EVERY t ≥ 3 (generalized Figure 1)");
    println!("t\tn\tpairs\tiff holds\tΔ reconstructs");
    for (t, n, pairs, iff_ok, recon_ok) in extensions::diameter_t_sweep(&[3, 4, 5, 6, 8], 9, 3)
    {
        println!("{t}\t{n}\t{pairs}\t{iff_ok}\t{recon_ok}");
        assert!(iff_ok && recon_ok);
    }
    println!(
        "→ the pendant-path gadget keeps the 3-form neighbourhood property, so the\n\
              3× one-round reduction applies verbatim at every threshold."
    );

    section(
        "E22 — the §I.A chain: degeneracy ≤ treewidth ≤ min-fill, across the planar hierarchy",
    );
    println!("family\tdegeneracy\ttreewidth\tmin-fill width\tThm 5 protocol at k=degeneracy");
    for (name, d, tw, mf, ok) in extensions::treewidth_chain() {
        println!("{name}\t{d}\t{tw}\t{mf}\t{ok}");
        assert!(d <= tw && tw <= mf && ok);
    }
    println!(
        "→ every family the paper names reconstructs at k = its degeneracy, which the\n\
              measured treewidth chain upper-bounds exactly as §I.A claims."
    );

    section("E23 — the positive boundary: degree-statistic protocols ARE one-round frugal (n = 500)");
    println!("protocol\tbits/node\tverdict");
    for (name, _n, bits, verdict) in extensions::easy_protocol_table(500, 99) {
        println!("{name}\t{bits}\t{verdict}");
        assert!(bits <= 3 * referee_protocol::bits_for(500) as usize);
    }
    println!(
        "→ any aggregate of locally computable O(log n)-bit statistics is decidable;\n\
              §II shows adjacency STRUCTURE is not — that is the boundary."
    );

    section("E24 — scale-free topologies (Barabási–Albert, m = 3): hubs vs Theorem 5");
    println!("n\thub Δ\tThm5 bits (k=3)\tnaive hub bits\texact");
    for (n, _m, hub, thm5, naive, ok) in extensions::scale_free_sweep(&[200, 800, 3200], 3, 17)
    {
        println!("{n}\t{hub}\t{thm5}\t{naive}\t{ok}");
        assert!(ok && thm5 < naive);
    }
    println!(
        "→ degeneracy stays m while hubs grow ~√n: the power-sum sketch beats the\n\
              footnote-1 adjacency upload by a widening factor on realistic topologies."
    );

    section("E25 — the width triangle and the colouring payoff");
    println!("family\tω−1\tdegeneracy d\ttreewidth\tgreedy colours\tχ exact");
    for (name, omega1, d, tw, greedy, chi) in extensions::width_triangle() {
        println!("{name}\t{omega1}\t{d}\t{tw}\t{greedy}\t{chi}");
        assert!(omega1 <= d && d <= tw, "{name}: width chain broken");
        assert!(chi <= greedy && greedy <= d + 1, "{name}: colouring chain broken");
    }
    println!(
        "→ ω−1 ≤ degeneracy ≤ treewidth on every family; the elimination order the\n\
              referee recovers colours the network with ≤ d+1 colours in one pass."
    );
}
