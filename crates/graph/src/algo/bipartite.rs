//! Bipartiteness testing by BFS 2-colouring.
//!
//! Theorem 3's reduction reconstructs bipartite graphs with parts
//! `{1..n/2}` and `{n/2+1..n}`; §IV asks whether bipartiteness itself is
//! frugally decidable in one round and relates it to bipartite
//! connectivity. Both need a trusted centralized bipartiteness oracle,
//! which this module provides.

use crate::csr::Csr;
use crate::{LabelledGraph, VertexId};

/// A certified 2-colouring: `side[i]` ∈ {0, 1} for vertex `i + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartition {
    /// Side of each vertex (index `id - 1`).
    pub side: Vec<u8>,
}

impl Bipartition {
    /// Vertices on side 0, ascending IDs.
    pub fn left(&self) -> Vec<VertexId> {
        self.side
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == 0)
            .map(|(i, _)| (i + 1) as VertexId)
            .collect()
    }

    /// Vertices on side 1, ascending IDs.
    pub fn right(&self) -> Vec<VertexId> {
        self.side
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == 1)
            .map(|(i, _)| (i + 1) as VertexId)
            .collect()
    }
}

/// Attempt to 2-colour `G`; `None` iff an odd cycle exists.
///
/// Isolated vertices and fresh components start on side 0, so the output
/// is deterministic (useful for snapshot-style tests).
pub fn bipartition(g: &LabelledGraph) -> Option<Bipartition> {
    let csr = Csr::from_graph(g);
    let n = csr.n();
    let mut side = vec![u8::MAX; n];
    let mut queue = Vec::new();
    for s in 0..n {
        if side[s] != u8::MAX {
            continue;
        }
        side[s] = 0;
        queue.clear();
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &v in csr.neighbours(u) {
                let v = v as usize;
                if side[v] == u8::MAX {
                    side[v] = 1 - side[u];
                    queue.push(v as u32);
                } else if side[v] == side[u] {
                    return None;
                }
            }
        }
    }
    Some(Bipartition { side })
}

/// The predicate "G is bipartite".
pub fn is_bipartite(g: &LabelledGraph) -> bool {
    bipartition(g).is_some()
}

/// Check whether `G` is bipartite **with the fixed parts** `{1..⌈n/2⌉}` and
/// `{⌈n/2⌉+1..n}` used by Theorem 3: every edge must cross the split.
pub fn respects_balanced_split(g: &LabelledGraph) -> bool {
    let half = g.n().div_ceil(2) as VertexId;
    g.edges().all(|e| (e.0 <= half) != (e.1 <= half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn even_cycle_bipartite() {
        let g = generators::cycle(6).unwrap();
        let b = bipartition(&g).expect("even cycle is bipartite");
        assert_eq!(b.left(), vec![1, 3, 5]);
        assert_eq!(b.right(), vec![2, 4, 6]);
        assert!(is_bipartite(&g));
    }

    #[test]
    fn odd_cycle_not_bipartite() {
        let g = generators::cycle(5).unwrap();
        assert!(bipartition(&g).is_none());
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn empty_and_edgeless() {
        assert!(is_bipartite(&LabelledGraph::new(0)));
        let g = LabelledGraph::new(4);
        let b = bipartition(&g).unwrap();
        assert_eq!(b.side, vec![0, 0, 0, 0]);
    }

    #[test]
    fn disconnected_mixed() {
        // one bipartite component + one odd cycle ⇒ not bipartite
        let mut g = generators::cycle(3).unwrap().grow(6);
        g.add_edge(4, 5).unwrap();
        g.add_edge(5, 6).unwrap();
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn balanced_split_predicate() {
        // Edges crossing {1,2} | {3,4}
        let g = LabelledGraph::from_edges(4, [(1, 3), (2, 4), (1, 4)]).unwrap();
        assert!(respects_balanced_split(&g));
        let g2 = LabelledGraph::from_edges(4, [(1, 2)]).unwrap();
        assert!(!respects_balanced_split(&g2));
    }

    #[test]
    fn complete_bipartite_generator_is_bipartite() {
        let g = generators::complete_bipartite(3, 4);
        assert!(is_bipartite(&g));
        assert_eq!(g.m(), 12);
    }
}
