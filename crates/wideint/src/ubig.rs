//! [`UBig`]: unsigned arbitrary-precision integer.
//!
//! Representation: little-endian `Vec<u64>` limbs with the *normalization
//! invariant* that the most significant limb is non-zero; zero is the empty
//! vector. Every constructor and arithmetic routine restores this invariant,
//! so `==` and `cmp` are plain limb comparisons.

use crate::WideError;

/// Unsigned arbitrary-precision integer (little-endian `u64` limbs).
///
/// See the [crate docs](crate) for why this exists. The API is deliberately
/// small: exactly what the power-sum encoder (Algorithm 3 of the paper), the
/// Newton-identity decoder and the counting experiments (Lemma 1) need.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl UBig {
    /// The value 0.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Construct from raw little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Borrow the little-endian limbs (normalized; empty means zero).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of bits in the binary representation (0 for zero).
    ///
    /// This is the quantity Lemma 2 of the paper bounds: a power sum
    /// `b_p ≤ n^{p+1}` has `bit_len ≤ (p+1)·log2(n) + 1`.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|w| (w >> off) & 1 == 1)
    }

    /// Convert to `u64` if it fits.
    pub fn to_u64(&self) -> Result<u64, WideError> {
        match self.limbs.len() {
            0 => Ok(0),
            1 => Ok(self.limbs[0]),
            _ => Err(WideError::Overflow),
        }
    }

    /// Convert to `u128` if it fits.
    pub fn to_u128(&self) -> Result<u128, WideError> {
        match self.limbs.len() {
            0 => Ok(0),
            1 => Ok(self.limbs[0] as u128),
            2 => Ok((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => Err(WideError::Overflow),
        }
    }

    /// Left shift by `sh` bits.
    pub fn shl(&self, sh: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let (limb_sh, bit_sh) = (sh / 64, sh % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_sh + 1];
        for (i, &w) in self.limbs.iter().enumerate() {
            if bit_sh == 0 {
                out[i + limb_sh] |= w;
            } else {
                out[i + limb_sh] |= w << bit_sh;
                out[i + limb_sh + 1] |= w >> (64 - bit_sh);
            }
        }
        UBig::from_limbs(out)
    }

    /// Right shift by `sh` bits (towards zero).
    pub fn shr(&self, sh: usize) -> UBig {
        let (limb_sh, bit_sh) = (sh / 64, sh % 64);
        if limb_sh >= self.limbs.len() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_sh);
        for i in limb_sh..self.limbs.len() {
            let mut w = self.limbs[i] >> bit_sh;
            if bit_sh != 0 {
                if let Some(&next) = self.limbs.get(i + 1) {
                    w |= next << (64 - bit_sh);
                }
            }
            out.push(w);
        }
        UBig::from_limbs(out)
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(v as u64)
    }
}

impl From<usize> for UBig {
    fn from(v: usize) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Normalized ⇒ longer limb vector means strictly larger value.
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from(0u64), UBig::zero());
        assert_eq!(UBig::from_limbs(vec![0, 0, 0]), UBig::zero());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_matches_u128() {
        for v in [1u128, 2, 3, 255, 256, u64::MAX as u128, 1 << 100, u128::MAX] {
            assert_eq!(UBig::from(v).bit_len(), (128 - v.leading_zeros()) as usize);
        }
    }

    #[test]
    fn ordering_matches_u128() {
        let vals = [0u128, 1, 2, u64::MAX as u128, 1 << 64, (1 << 64) + 1, u128::MAX];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(UBig::from(a).cmp(&UBig::from(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn round_trip_u128() {
        for v in [0u128, 1, 12345, u64::MAX as u128 + 17, u128::MAX] {
            assert_eq!(UBig::from(v).to_u128().unwrap(), v);
        }
    }

    #[test]
    fn to_u64_overflow() {
        assert_eq!(UBig::from(u128::MAX).to_u64(), Err(WideError::Overflow));
        assert_eq!(UBig::from(42u64).to_u64(), Ok(42));
    }

    #[test]
    fn shifts_match_u128() {
        let v = 0x0123_4567_89ab_cdefu128 | (0xfeed_u128 << 64);
        for sh in [0usize, 1, 7, 63, 64, 65, 100] {
            if sh < 128 && (v << sh) >> sh == v {
                assert_eq!(UBig::from(v).shl(sh).to_u128().unwrap(), v << sh, "shl {sh}");
            }
            assert_eq!(UBig::from(v).shr(sh).to_u128().unwrap(), v >> sh.min(127), "shr {sh}");
        }
        assert_eq!(UBig::zero().shl(1000), UBig::zero());
        assert_eq!(UBig::from(1u64).shr(1), UBig::zero());
    }

    #[test]
    fn bit_access() {
        let v = UBig::from(0b1010u64);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(64 * 3)); // out of range is false
        let big = UBig::from(1u64).shl(200);
        assert!(big.bit(200));
        assert!(!big.bit(199));
    }
}
