//! Real-socket integration: fleets of `simnet` sessions driven over
//! loopback TCP, pinned bit-for-bit against in-memory runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_simnet::{
    MultiRoundSession, OneRoundSession, PerfectTransport, Scheduler, SessionId,
};
use referee_wirenet::{AuthKey, FleetClient, FleetServer, TamperConfig};

fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(8 + i % 20, 0.25, &mut rng)).collect()
}

/// One-round sessions multiplexed over 3 connections, driven from the
/// multi-threaded scheduler, must produce exactly the outcomes of
/// in-memory perfect-transport runs — and the server must have seen
/// every envelope, rejecting nothing.
#[test]
fn one_round_fleet_matches_in_memory() {
    let key = AuthKey::from_seed(11);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 3, key).unwrap();
    let fleet = graphs(96, 42);

    let wire: Vec<_> = Scheduler::new(8, 4).run_indexed(fleet.len(), |i| {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        OneRoundSession::new(&EdgeCountProtocol, &fleet[i]).with_session(id).run(&mut transport)
    });

    let mut expected_frames = 0u64;
    for (i, (report, g)) in wire.iter().zip(&fleet).enumerate() {
        let mut perfect = PerfectTransport::new();
        let memory = OneRoundSession::new(&EdgeCountProtocol, g).run(&mut perfect);
        assert_eq!(
            report.outcome.as_ref().unwrap().as_ref().unwrap(),
            memory.outcome.as_ref().unwrap().as_ref().unwrap(),
            "session {i} disagrees with the in-memory run"
        );
        assert_eq!(
            report.metrics.stats.total_message_bits,
            memory.metrics.stats.total_message_bits
        );
        expected_frames += g.n() as u64;
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert_eq!(server_stats.frames_received, expected_frames, "server missed envelopes");
    assert_eq!(server_stats.frames_sent, expected_frames, "server echoed short");
    assert_eq!(server_stats.mac_rejects, 0);
    assert_eq!(server_stats.decode_rejects, 0);
    assert_eq!(server_stats.connections, 3);
    assert_eq!(client_stats.frames_sent, expected_frames);
    assert_eq!(client_stats.frames_received, expected_frames);
    assert_eq!(client_stats.mac_rejects, 0);
}

/// Multi-round Borůvka over the wire: verdicts, round counts and
/// message-size stats all match the in-memory session, and match the
/// centralized truth.
#[test]
fn multi_round_fleet_matches_in_memory() {
    let key = AuthKey::from_seed(12);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 2, key).unwrap();
    let fleet = graphs(24, 77);

    let wire: Vec<_> = Scheduler::new(4, 2).run_indexed(fleet.len(), |i| {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        MultiRoundSession::new(&BoruvkaConnectivity, &fleet[i], 64)
            .with_session(id)
            .run(&mut transport)
    });

    for (i, (report, g)) in wire.iter().zip(&fleet).enumerate() {
        let mut perfect = PerfectTransport::new();
        let memory = MultiRoundSession::new(&BoruvkaConnectivity, g, 64).run(&mut perfect);
        let wire_verdict = report.outcome.as_ref().unwrap().as_ref().unwrap().as_ref().unwrap();
        let memory_verdict =
            memory.outcome.as_ref().unwrap().as_ref().unwrap().as_ref().unwrap();
        assert_eq!(wire_verdict, memory_verdict, "session {i}");
        assert_eq!(*wire_verdict, algo::is_connected(g), "session {i} vs centralized");
        assert_eq!(report.stats, memory.stats, "session {i} stats");
    }

    let server_stats = server.stop();
    assert_eq!(server_stats.mac_rejects, 0);
    assert!(server_stats.frames_received > 0);
}

/// Deliberate wire corruption: with one session per connection and every
/// third frame tampered, every session's first tampered frame reaches
/// the server while its connection is alive and MUST be caught by MAC
/// verification (poisoning the connection); every session then fails
/// cleanly — no corrupted frame is ever accepted, nothing hangs.
#[test]
fn tampered_frames_are_all_mac_rejected() {
    let key = AuthKey::from_seed(13);
    let server = FleetServer::spawn(key).unwrap();
    let sessions = 8usize;
    let client = FleetClient::connect(server.addr(), sessions, key)
        .unwrap()
        .with_tamper(TamperConfig { flip_every: 3 });
    let fleet = graphs(sessions, 3);

    for (i, g) in fleet.iter().enumerate() {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        let report =
            OneRoundSession::new(&EdgeCountProtocol, g).with_session(id).run(&mut transport);
        assert!(
            report.outcome.is_err(),
            "session {i} survived a poisoned connection: {:?}",
            report.outcome
        );
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered >= sessions as u64, "tamper hook never fired");
    // Exactly one MAC reject per connection: the first tampered frame is
    // caught, the connection is poisoned, nothing after it is read.
    assert_eq!(server_stats.mac_rejects, sessions as u64);
    assert_eq!(server_stats.decode_rejects, 0);
    // Every frame the server *did* accept was untampered and echoed.
    assert_eq!(server_stats.frames_received, server_stats.frames_sent);
}

/// A key mismatch between the two ends is total: the very first frame
/// poisons the connection, and the session rejects instead of hanging.
#[test]
fn key_mismatch_fails_closed() {
    let server = FleetServer::spawn(AuthKey::from_seed(14)).unwrap();
    let client = FleetClient::connect(server.addr(), 1, AuthKey::from_seed(15)).unwrap();
    let g = generators::grid(3, 3);
    let id = SessionId(0);
    let mut transport = client.transport(id);
    let report =
        OneRoundSession::new(&EdgeCountProtocol, &g).with_session(id).run(&mut transport);
    assert!(report.outcome.is_err(), "mismatched keys must fail the session");
    let server_stats = server.stop();
    assert_eq!(server_stats.mac_rejects, 1);
    assert_eq!(server_stats.frames_sent, 0, "nothing may be echoed unauthenticated");
}

/// Dropping a transport retires its demux lane: the session id becomes
/// reusable, so a long-lived client neither leaks lanes nor panics on
/// reuse.
#[test]
fn session_ids_are_reusable_after_transport_drop() {
    let key = AuthKey::from_seed(17);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(2, 4);
    for run in 0..3 {
        let id = SessionId(42);
        let mut transport = client.transport(id); // would panic if the lane leaked
        let report =
            OneRoundSession::new(&EdgeCountProtocol, &g).with_session(id).run(&mut transport);
        assert_eq!(report.outcome.unwrap().unwrap(), g.m(), "run {run}");
    }
    assert_eq!(server.stop().mac_rejects, 0);
}

/// A session driven over the wire with a mismatched session id on its
/// transport rejects as a demux fault (the session-id validation in the
/// runtime), rather than absorbing another session's traffic.
#[test]
fn cross_session_delivery_is_rejected() {
    let key = AuthKey::from_seed(16);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(2, 3);
    // Session believes it is id 5; transport is bound to id 9, so every
    // envelope comes back stamped 9 and the session must reject it.
    let mut transport = client.transport(SessionId(9));
    let report = OneRoundSession::new(&EdgeCountProtocol, &g)
        .with_session(SessionId(5))
        .run(&mut transport);
    let err = report.outcome.unwrap_err();
    assert!(format!("{err}").contains("demux"), "unexpected error: {err}");
    server.stop();
}
