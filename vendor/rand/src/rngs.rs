//! Generator implementations: [`StdRng`] (xoshiro256++ here, not ChaCha12).

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used to expand 64-bit seeds into full state.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The workspace's standard seeded generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = [0u64; 4];
        let mut x = seed;
        for slot in &mut s {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            *slot = splitmix64(x);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility with call sites that pick the small
/// generator explicitly.
pub type SmallRng = StdRng;
