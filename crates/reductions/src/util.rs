//! Shared plumbing for the reduction protocols.
//!
//! The diameter and triangle reductions bundle several `Γ^l` outputs into
//! one `Δ^l` message ("the message sent to the referee is the triple
//! (m⁰, mˢ, mᵗ)"). Since `Γ` messages are opaque bit strings of arbitrary
//! length, the bundle is serialized as Elias-gamma length prefixes
//! followed by the raw bits — an overhead of `O(log |m|)` bits per part,
//! which preserves frugality (the paper simply notes the bundle is "three
//! times as big"; our accounting is exact).

use referee_protocol::{BitReader, BitWriter, DecodeError, Message};

/// Concatenate messages with self-delimiting length prefixes.
pub fn bundle(parts: &[Message]) -> Message {
    let mut w = BitWriter::new();
    for part in parts {
        // +1 so the empty message is encodable (gamma needs ≥ 1).
        w.write_gamma(part.len_bits() as u64 + 1);
        let mut r = part.reader();
        for _ in 0..part.len_bits() {
            w.push_bit(r.read_bit().expect("within length"));
        }
    }
    Message::from_writer(w)
}

/// Split a bundle back into exactly `count` messages.
pub fn unbundle(msg: &Message, count: usize) -> Result<Vec<Message>, DecodeError> {
    let mut r = msg.reader();
    let mut parts = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.read_gamma()? - 1;
        let mut w = BitWriter::new();
        for _ in 0..len {
            w.push_bit(r.read_bit()?);
        }
        parts.push(Message::from_writer(w));
    }
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid(format!(
            "bundle has {} trailing bits",
            r.remaining()
        )));
    }
    Ok(parts)
}

/// Copy a reader's remaining bits (test helper for reassembling messages).
pub fn copy_bits(
    r: &mut BitReader<'_>,
    w: &mut BitWriter,
    count: usize,
) -> Result<(), DecodeError> {
    for _ in 0..count {
        w.push_bit(r.read_bit()?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(value: u64, width: u32) -> Message {
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        Message::from_writer(w)
    }

    #[test]
    fn bundle_round_trip() {
        let parts = vec![msg(5, 3), Message::empty(), msg(u64::MAX, 64), msg(0, 1)];
        let b = bundle(&parts);
        assert_eq!(unbundle(&b, 4).unwrap(), parts);
    }

    #[test]
    fn bundle_size_overhead_is_logarithmic() {
        let part = msg(12345, 20);
        let b = bundle(&[part.clone(), part.clone(), part.clone()]);
        // 3 × (20 payload + gamma(21) = 9 bits) = 87
        assert_eq!(b.len_bits(), 3 * (20 + 9));
    }

    #[test]
    fn unbundle_wrong_count_fails() {
        let b = bundle(&[msg(1, 1), msg(2, 2)]);
        assert!(unbundle(&b, 1).is_err()); // trailing bits
        assert!(unbundle(&b, 3).is_err()); // truncated
    }

    #[test]
    fn empty_bundle() {
        let b = bundle(&[]);
        assert_eq!(b.len_bits(), 0);
        assert_eq!(unbundle(&b, 0).unwrap(), Vec::<Message>::new());
    }
}
