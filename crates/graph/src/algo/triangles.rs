//! Triangle (K3) detection and counting.
//!
//! Theorem 3: no one-round frugal protocol decides triangle-freeness. The
//! reduction's gadget `G'_{s,t}` contains a triangle iff `{s,t} ∈ E(G)`
//! (for bipartite `G`); validating that experimentally needs fast exact
//! triangle detection, implemented here with the standard
//! degeneracy-ordered neighbour-intersection method, O(m · α(G)).

use crate::algo::degeneracy::degeneracy_ordering;
use crate::csr::Csr;
use crate::{LabelledGraph, VertexId};

/// Orient edges by elimination rank and intersect forward neighbourhoods.
fn oriented_forward_lists(g: &LabelledGraph) -> Vec<Vec<u32>> {
    let ord = degeneracy_ordering(g);
    let n = g.n();
    // rank[i] = position of vertex i+1 in removal order
    let mut rank = vec![0u32; n];
    for (pos, &v) in ord.order.iter().enumerate() {
        rank[(v - 1) as usize] = pos as u32;
    }
    let csr = Csr::from_graph(g);
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        for &j in csr.neighbours(i) {
            if rank[j as usize] > rank[i] {
                fwd[i].push(j);
            }
        }
        fwd[i].sort_unstable();
    }
    fwd
}

fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Exact number of triangles in `G`.
pub fn count_triangles(g: &LabelledGraph) -> u64 {
    let fwd = oriented_forward_lists(g);
    let mut count = 0u64;
    for (i, fi) in fwd.iter().enumerate() {
        for &j in fi {
            count += sorted_intersection_count(fi, &fwd[j as usize]) as u64;
        }
        let _ = i;
    }
    count
}

/// Does `G` contain a triangle? Early-exits on the first witness.
pub fn has_triangle(g: &LabelledGraph) -> bool {
    find_triangle(g).is_some()
}

/// Find one triangle `(a, b, c)` with `a < b < c`, if any.
pub fn find_triangle(g: &LabelledGraph) -> Option<(VertexId, VertexId, VertexId)> {
    let fwd = oriented_forward_lists(g);
    for (i, fi) in fwd.iter().enumerate() {
        for &j in fi {
            let fj = &fwd[j as usize];
            let (mut a, mut b) = (0, 0);
            while a < fi.len() && b < fj.len() {
                match fi[a].cmp(&fj[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let mut tri = [(i as u32) + 1, j + 1, fi[a] + 1];
                        tri.sort_unstable();
                        return Some((tri[0], tri[1], tri[2]));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_detected() {
        let g = LabelledGraph::from_edges(3, [(1, 2), (2, 3), (1, 3)]).unwrap();
        assert!(has_triangle(&g));
        assert_eq!(count_triangles(&g), 1);
        assert_eq!(find_triangle(&g), Some((1, 2, 3)));
    }

    #[test]
    fn bipartite_has_none() {
        let g = generators::complete_bipartite(4, 5);
        assert!(!has_triangle(&g));
        assert_eq!(count_triangles(&g), 0);
        assert_eq!(find_triangle(&g), None);
    }

    #[test]
    fn complete_graph_count() {
        // K6 has C(6,3) = 20 triangles
        let g = generators::complete(6);
        assert_eq!(count_triangles(&g), 20);
    }

    #[test]
    fn square_is_triangle_free() {
        let g = generators::cycle(4).unwrap();
        assert!(!has_triangle(&g));
    }

    #[test]
    fn count_matches_brute_force_on_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let g = generators::gnp(18, 0.3, &mut rng);
            let mut brute = 0u64;
            for a in 1..=18u32 {
                for b in (a + 1)..=18 {
                    for c in (b + 1)..=18 {
                        if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                            brute += 1;
                        }
                    }
                }
            }
            assert_eq!(count_triangles(&g), brute, "graph {g:?}");
            assert_eq!(has_triangle(&g), brute > 0);
        }
    }

    #[test]
    fn empty_graphs() {
        assert!(!has_triangle(&LabelledGraph::new(0)));
        assert!(!has_triangle(&LabelledGraph::new(5)));
        assert_eq!(count_triangles(&LabelledGraph::new(5)), 0);
    }
}
