#![warn(missing_docs)]
//! The negative results of Becker et al. (IPDPS 2011), §II, made
//! *executable*.
//!
//! The paper's impossibility proofs all share one engine: from a
//! hypothetical one-round frugal protocol `Γ` deciding a property, build a
//! one-round protocol `Δ` that **reconstructs** a graph family too large
//! for the message budget (Lemma 1). Nothing in those constructions is
//! non-constructive — given any concrete `Γ` (frugal or not), `Δ` is a
//! perfectly runnable protocol. This crate implements:
//!
//! * [`gadgets`] — the auxiliary graphs `G'_{s,t}` of Theorems 1–3
//!   (including Figures 1 and 2) with exhaustively validated iff
//!   properties;
//! * [`square`] / [`diameter`] / [`triangle`] — the protocols `Δ` of
//!   Algorithms 1 and 2 and Theorem 3, parameterized by any `Γ`;
//! * [`oracle`] — concrete (non-frugal) `Γ` instantiations used to
//!   validate the simulations end-to-end and to measure the stated
//!   message blow-ups (`k(2n)`, `3·k(n+3)`, `2·k(n+1)`);
//! * [`counting`] — Lemma 1: exact family counts vs the
//!   `2^{c·n·log n}` message-vector budget;
//! * [`collision`] — the pigeonhole made concrete: exhibits two distinct
//!   graphs a given sketch cannot tell apart;
//! * [`bipartiteness`] — the §IV "ongoing work" reduction: a frugal
//!   one-round bipartiteness protocol yields a frugal one-round protocol
//!   for connectivity *of bipartite graphs*.

pub mod bipartiteness;
pub mod collision;
pub mod counting;
pub mod gadgets;
pub mod oracle;
pub mod square;
pub mod triangle;
pub mod util;

// `diameter` is a keyword-free module name but clashes stylistically with
// the algo function; keep the module path explicit.
pub mod diameter;
pub mod diameter_t;

pub use bipartiteness::BipartiteConnectivityReduction;
pub use collision::find_collision;
pub use diameter::DiameterReduction;
pub use diameter_t::{DiameterTOracle, DiameterTReduction};
pub use oracle::{DiameterOracle, InducedSquareOracle, SquareOracle, TriangleOracle};
pub use square::SquareReduction;
pub use triangle::TriangleReduction;
