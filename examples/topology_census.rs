//! A topology census: reconstruct a zoo of network families with the
//! *adaptive* driver (doubling k until the recognition protocol accepts)
//! and tabulate the frugality cost of each.
//!
//! This is the practical face of the paper's recognition remark: the
//! referee never needs to be told what kind of network it is talking to —
//! it discovers the sparsity class and the exact topology together.
//!
//! Run with: `cargo run --release --example topology_census`

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 256usize;

    let zoo: Vec<(&str, LabelledGraph)> = vec![
        ("random tree", generators::random_tree(n, &mut rng)),
        ("caterpillar (high Δ, sparse)", generators::caterpillar(64, 3)),
        ("16×16 grid (planar)", generators::grid(16, 16)),
        ("torus 16×16", generators::torus(16, 16)),
        ("hypercube Q8", generators::hypercube(8)),
        ("3-tree (treewidth 3)", generators::k_tree(n, 3, &mut rng)),
        ("random 5-degenerate", generators::random_k_degenerate(n, 5, 0.9, &mut rng)),
        ("random 3-regular", generators::random_regular(n, 3, &mut rng).unwrap()),
        ("scale-free BA (m = 3)", generators::barabasi_albert(n, 3, &mut rng).unwrap()),
        ("apollonian (maximal planar)", generators::random_apollonian(n, &mut rng).unwrap()),
        ("outerplanar polygon", generators::random_outerplanar(n, &mut rng).unwrap()),
        ("series-parallel", generators::random_series_parallel(n, &mut rng).unwrap()),
        ("G(n, 1/2) — dense, out of class", generators::gnp(n, 0.5, &mut rng)),
    ];

    println!(
        "{:<34} {:>5} {:>7} {:>9} {:>9} {:>11} {:>10}",
        "family", "m", "Δ", "true k", "found k", "bits/node", "attempts"
    );
    for (name, g) in zoo {
        let truth = algo::degeneracy_ordering(&g).degeneracy;
        let report = reconstruct_adaptive(&g, 16).expect("honest messages");
        let found =
            report.k_used.map(|k| k.to_string()).unwrap_or_else(|| "> 16 (reject)".into());
        println!(
            "{:<34} {:>5} {:>7} {:>9} {:>9} {:>11} {:>10}",
            name,
            g.m(),
            g.max_degree(),
            truth,
            found,
            report.report.stats.max_message_bits,
            format!("{:?}", report.attempts),
        );
        if let Some(k) = report.k_used {
            assert!(report.report.reconstructed(&g));
            assert!(k < 2 * truth.max(1), "doubling overshoots by < 2×");
        } else {
            assert!(truth > 16);
        }
    }

    println!(
        "\nEvery in-class family was reconstructed exactly; the dense graph was\n\
         rejected rather than guessed — the recognition test of §III in action.\n\
         Note the caterpillar: max degree 5 but degeneracy 1, so the sketch costs\n\
         tree-rate bits where the naive adjacency upload would pay for Δ."
    );
}
