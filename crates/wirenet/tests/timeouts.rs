//! Wire-deadline regression tests: a stalled or silent server must
//! surface as an **error within the configured deadline**, never as a
//! hang. The deadlines used to be hardcoded consts
//! (`HELLO_TIMEOUT`/`VERDICT_TIMEOUT`); they are now client
//! configuration ([`WireTimeouts`]) with environment overrides, so slow
//! CI hosts and long multi-round sessions can widen them — and these
//! tests can narrow them to prove the bound is real.

use referee_protocol::{BitWriter, Message};
use referee_simnet::{Envelope, SessionId};
use referee_wirenet::{encode_wire_frame, AuthKey, FleetClient, FrameKind, WireTimeouts};
use std::io::Write;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// A server that accepts but never speaks: `connect` must fail with
/// `TimedOut` once the (short) Hello deadline passes, instead of
/// blocking for the default 10 s.
#[test]
fn silent_server_trips_the_hello_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Never accepted, never spoken to — the TCP handshake still
    // completes out of the listen backlog, so the client reaches the
    // Hello wait.
    let timeouts =
        WireTimeouts { hello: Duration::from_millis(200), verdict: Duration::from_secs(30) };
    let t0 = Instant::now();
    let err = FleetClient::connect_with(addr, 1, AuthKey::from_seed(40), timeouts).unwrap_err();
    let elapsed = t0.elapsed();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(elapsed >= Duration::from_millis(200), "returned before the deadline");
    assert!(elapsed < Duration::from_secs(5), "deadline not honoured: {elapsed:?}");
    drop(listener);
}

/// A server that completes the Hello handshake and then stalls forever:
/// `verify_session` must error once the (short) verdict deadline
/// passes — the old fixed 30 s wait is now configurable, and the bound
/// is proven tight here.
#[test]
fn stalled_server_trips_the_verdict_deadline() {
    let key = AuthKey::from_seed(41);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Speak the handshake like a real server (Hello under the base
        // key, naming connection 1) …
        let hello = Envelope {
            session: SessionId(0),
            round: 0,
            from: 1,
            to: 0,
            payload: Message::empty(),
        };
        stream.write_all(&encode_wire_frame(&key, FrameKind::Hello, &hello)).unwrap();
        // … then stall: read nothing, answer nothing, but keep the
        // connection open so the client cannot blame a dead socket.
        std::thread::sleep(Duration::from_secs(20));
        drop(stream);
    });

    let timeouts =
        WireTimeouts { hello: Duration::from_secs(5), verdict: Duration::from_millis(300) };
    let client = FleetClient::connect_with(addr, 1, key, timeouts).unwrap();
    let msg = |v: u64| {
        let mut w = BitWriter::new();
        w.write_bits(v, 8);
        Message::from_writer(w)
    };
    let t0 = Instant::now();
    let err = client
        .verify_session(SessionId(1), 2, vec![(1, msg(1)), (2, msg(2))])
        .expect_err("a stalled server must not verify anything");
    let elapsed = t0.elapsed();
    assert!(format!("{err}").contains("deadline"), "expected a deadline error, got: {err}");
    assert!(elapsed >= Duration::from_millis(300), "returned before the deadline");
    assert!(elapsed < Duration::from_secs(10), "deadline not honoured: {elapsed:?}");
    drop(client);
    // The stalling thread is joined on its own schedule; detach it.
    drop(stall);
}
