//! [`LabelledGraph`]: the simple undirected labelled graph of the paper's
//! model (§I.B), with 1-based vertex IDs `1..=n`.
//!
//! Storage is a sorted adjacency vector per vertex, which keeps memory
//! `O(n + m)` (the forest experiments run at `n = 10^5`) while still giving
//! `O(log deg)` adjacency tests and cache-friendly neighbour scans.

use crate::{BitSet, GraphError, VertexId};

/// An undirected edge, stored with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(pub VertexId, pub VertexId);

impl Edge {
    /// Canonical form: endpoints sorted ascending.
    pub fn new(u: VertexId, v: VertexId) -> Self {
        if u <= v {
            Edge(u, v)
        } else {
            Edge(v, u)
        }
    }
}

/// A simple undirected labelled graph on vertices `1..=n`.
///
/// This is the `G = (V, E)` of the paper: each node of the interconnection
/// network knows its own ID, the set of its neighbours' IDs, and `n`.
/// [`LabelledGraph::neighbourhood`] returns exactly that knowledge.
#[derive(Clone, PartialEq, Eq)]
pub struct LabelledGraph {
    n: usize,
    /// `adj[i]` = sorted neighbour IDs of vertex `i + 1`.
    adj: Vec<Vec<VertexId>>,
    m: usize,
}

impl LabelledGraph {
    /// The empty graph on `n` vertices (IDs `1..=n`).
    pub fn new(n: usize) -> Self {
        LabelledGraph { n, adj: vec![Vec::new(); n], m: 0 }
    }

    /// Build from an edge list; duplicate edges are an error.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        let mut g = LabelledGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges `m = |E|`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Iterate all vertex IDs `1..=n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        1..=self.n as VertexId
    }

    fn check(&self, v: VertexId) -> Result<usize, GraphError> {
        if v == 0 || v as usize > self.n {
            Err(GraphError::VertexOutOfRange { id: v, n: self.n })
        } else {
            Ok((v - 1) as usize)
        }
    }

    /// Add edge `{u, v}`. Errors on self-loops, out-of-range IDs and
    /// duplicates (the model's graphs are simple).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let (ui, vi) = (self.check(u)?, self.check(v)?);
        match self.adj[ui].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge(u.min(v), u.max(v))),
            Err(pos) => self.adj[ui].insert(pos, v),
        }
        let pos = self.adj[vi].binary_search(&u).unwrap_err();
        self.adj[vi].insert(pos, u);
        self.m += 1;
        Ok(())
    }

    /// Add edge `{u, v}` if absent; returns whether it was inserted.
    pub fn add_edge_if_absent(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Remove edge `{u, v}`; returns whether it was present.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        let (ui, vi) = (self.check(u)?, self.check(v)?);
        match self.adj[ui].binary_search(&v) {
            Ok(pos) => {
                self.adj[ui].remove(pos);
                let pos2 = self.adj[vi].binary_search(&u).expect("symmetric adjacency");
                self.adj[vi].remove(pos2);
                self.m -= 1;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Adjacency test.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == 0 || v == 0 || u as usize > self.n || v as usize > self.n {
            return false;
        }
        self.adj[(u - 1) as usize].binary_search(&v).is_ok()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[(v - 1) as usize].len()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sorted neighbour IDs of `v` — precisely the local knowledge
    /// `{ID(y) | y ∈ N_G(v)}` each node holds in the model.
    pub fn neighbourhood(&self, v: VertexId) -> &[VertexId] {
        &self.adj[(v - 1) as usize]
    }

    /// Neighbourhood as an incidence [`BitSet`] over bit positions
    /// `id - 1` for `id ∈ 1..=n` (the vector `x` of Algorithm 3).
    pub fn neighbourhood_bitset(&self, v: VertexId) -> BitSet {
        let mut bs = BitSet::new(self.n);
        for &w in self.neighbourhood(v) {
            bs.set((w - 1) as usize);
        }
        bs
    }

    /// Iterate all edges in canonical `(u < v)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(move |(i, nbrs)| {
            let u = (i + 1) as VertexId;
            nbrs.iter().copied().filter(move |&v| v > u).map(move |v| Edge(u, v))
        })
    }

    /// The complement graph (used by the generalized-degeneracy protocol,
    /// §III's closing remark).
    pub fn complement(&self) -> LabelledGraph {
        let mut g = LabelledGraph::new(self.n);
        for u in 1..=self.n as VertexId {
            let nbrs = &self.adj[(u - 1) as usize];
            let mut it = nbrs.iter().copied().peekable();
            for v in (u + 1)..=self.n as VertexId {
                while it.peek().is_some_and(|&w| w < v) {
                    it.next();
                }
                if it.peek() != Some(&v) {
                    g.add_edge(u, v).expect("complement edge valid");
                }
            }
        }
        g
    }

    /// The subgraph induced by `keep` (IDs are *relabelled* to `1..=k`
    /// following the ascending order of `keep`). Returns the mapping
    /// `new_id -> old_id` alongside.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (LabelledGraph, Vec<VertexId>) {
        let mut ids: Vec<VertexId> = keep.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let mut index = vec![0u32; self.n + 1]; // old id -> new id (0 = absent)
        for (new0, &old) in ids.iter().enumerate() {
            index[old as usize] = (new0 + 1) as VertexId;
        }
        let mut g = LabelledGraph::new(ids.len());
        for &old_u in &ids {
            for &old_v in self.neighbourhood(old_u) {
                if old_v > old_u && index[old_v as usize] != 0 {
                    g.add_edge(index[old_u as usize], index[old_v as usize])
                        .expect("induced edge valid");
                }
            }
        }
        (g, ids)
    }

    /// Disjoint union: vertices of `other` are shifted by `self.n()`.
    pub fn disjoint_union(&self, other: &LabelledGraph) -> LabelledGraph {
        let shift = self.n as VertexId;
        let mut g = LabelledGraph::new(self.n + other.n);
        for e in self.edges() {
            g.add_edge(e.0, e.1).expect("left edges valid");
        }
        for e in other.edges() {
            g.add_edge(e.0 + shift, e.1 + shift).expect("right edges valid");
        }
        g
    }

    /// Grow the vertex set to `new_n ≥ n`, keeping all edges (the gadget
    /// constructions of §II add fresh vertices `n+1, n+2, …`).
    pub fn grow(&self, new_n: usize) -> LabelledGraph {
        assert!(new_n >= self.n, "grow cannot shrink");
        let mut g = self.clone();
        g.n = new_n;
        g.adj.resize(new_n, Vec::new());
        g
    }

    /// Total degree sum (= 2m); sanity handle for the handshake lemma.
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Relabel vertices: `perm[i]` is the **new** ID of old vertex `i + 1`
    /// (`perm` must be a permutation of `1..=n`).
    ///
    /// In this model "graph" always means *labelled* graph — protocols
    /// genuinely depend on IDs (power sums change under relabelling!), so
    /// relabelling is the natural way to test that dependence.
    pub fn relabel(&self, perm: &[VertexId]) -> LabelledGraph {
        assert_eq!(perm.len(), self.n, "permutation size mismatch");
        let mut seen = vec![false; self.n + 1];
        for &p in perm {
            assert!(p >= 1 && p as usize <= self.n && !seen[p as usize], "not a permutation");
            seen[p as usize] = true;
        }
        let mut g = LabelledGraph::new(self.n);
        for e in self.edges() {
            g.add_edge(perm[(e.0 - 1) as usize], perm[(e.1 - 1) as usize])
                .expect("permuted edge valid");
        }
        g
    }
}

impl std::fmt::Debug for LabelledGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LabelledGraph(n={}, m={}, edges=[", self.n, self.m)?;
        for (i, e) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}-{}", e.0, e.1)?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> LabelledGraph {
        LabelledGraph::from_edges(4, [(1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = LabelledGraph::new(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let g = path4();
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(0, 1)); // out-of-range is just "no edge"
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbourhood(2), &[1, 3]);
        assert_eq!(g.degree_sum(), 2 * g.m());
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        let mut g = LabelledGraph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
        assert!(matches!(g.add_edge(1, 4), Err(GraphError::VertexOutOfRange { id: 4, n: 3 })));
        assert!(matches!(g.add_edge(0, 1), Err(GraphError::VertexOutOfRange { id: 0, .. })));
    }

    #[test]
    fn rejects_duplicates_strictly() {
        let mut g = LabelledGraph::new(3);
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.add_edge(2, 1), Err(GraphError::DuplicateEdge(1, 2)));
        assert_eq!(g.add_edge_if_absent(2, 1), Ok(false));
        assert_eq!(g.add_edge_if_absent(2, 3), Ok(true));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn remove_edge() {
        let mut g = path4();
        assert_eq!(g.remove_edge(2, 3), Ok(true));
        assert_eq!(g.remove_edge(2, 3), Ok(false));
        assert_eq!(g.m(), 2);
        assert!(!g.has_edge(2, 3));
        assert_eq!(g.neighbourhood(2), &[1]);
    }

    #[test]
    fn edges_canonical_order() {
        let g = LabelledGraph::from_edges(4, [(3, 1), (4, 2), (2, 1)]).unwrap();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![Edge(1, 2), Edge(1, 3), Edge(2, 4)]);
    }

    #[test]
    fn neighbourhood_bitset_matches() {
        let g = path4();
        let bs = g.neighbourhood_bitset(2);
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![0, 2]); // ids 1 and 3
        assert_eq!(bs.len(), 4);
    }

    #[test]
    fn complement_of_path() {
        let g = path4();
        let c = g.complement();
        assert_eq!(c.m(), 6 - 3);
        assert!(c.has_edge(1, 3) && c.has_edge(1, 4) && c.has_edge(2, 4));
        assert!(!c.has_edge(1, 2));
        // complement is an involution
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = path4();
        let (sub, map) = g.induced_subgraph(&[4, 2, 3]);
        assert_eq!(map, vec![2, 3, 4]);
        assert_eq!(sub.n(), 3);
        // old edges 2-3 and 3-4 become 1-2 and 2-3
        assert!(sub.has_edge(1, 2) && sub.has_edge(2, 3));
        assert_eq!(sub.m(), 2);
    }

    #[test]
    fn disjoint_union_shifts() {
        let g = path4();
        let h = LabelledGraph::from_edges(2, [(1, 2)]).unwrap();
        let u = g.disjoint_union(&h);
        assert_eq!(u.n(), 6);
        assert_eq!(u.m(), 4);
        assert!(u.has_edge(5, 6));
        assert!(!u.has_edge(4, 5));
    }

    #[test]
    fn grow_adds_isolated_vertices() {
        let g = path4().grow(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(7), 0);
        assert!(!g.has_edge(4, 5));
    }

    #[test]
    fn edge_canonical_constructor() {
        assert_eq!(Edge::new(5, 2), Edge(2, 5));
        assert_eq!(Edge::new(2, 5), Edge(2, 5));
    }

    #[test]
    fn relabel_permutes_edges() {
        let g = path4(); // 1-2-3-4
        let h = g.relabel(&[4, 3, 2, 1]); // reverse labels
        assert_eq!(h.m(), 3);
        assert!(h.has_edge(4, 3) && h.has_edge(3, 2) && h.has_edge(2, 1));
        // reversing a path yields the same labelled graph here (palindrome)
        assert_eq!(h, g);
        // a non-palindromic permutation changes the labelled graph
        let h2 = g.relabel(&[2, 1, 3, 4]);
        assert_ne!(h2, g);
        assert!(h2.has_edge(1, 3));
        // double application of an involution restores the original
        assert_eq!(h2.relabel(&[2, 1, 3, 4]), g);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        path4().relabel(&[1, 1, 2, 3]);
    }
}
