//! Property tests: gadget iffs on random graphs and reduction round-trips
//! with oracle inner protocols.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, generators};
use referee_protocol::run_protocol;
use referee_reductions::oracle::{
    BipartitenessOracle, DiameterOracle, SquareOracle, TriangleOracle,
};
use referee_reductions::{
    gadgets, BipartiteConnectivityReduction, DiameterReduction, SquareReduction,
    TriangleReduction,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn diameter_gadget_iff_random(n in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.35, &mut rng);
        for s in 1..=n as u32 {
            for t in (s + 1)..=n as u32 {
                prop_assert_eq!(
                    algo::diameter_at_most(&gadgets::diameter_gadget(&g, s, t), 3),
                    g.has_edge(s, t)
                );
            }
        }
    }

    #[test]
    fn triangle_gadget_iff_on_triangle_free(n in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_balanced_bipartite(n, 0.4, &mut rng);
        for s in 1..=n as u32 {
            for t in (s + 1)..=n as u32 {
                prop_assert_eq!(
                    algo::has_triangle(&gadgets::triangle_gadget(&g, s, t)),
                    g.has_edge(s, t)
                );
            }
        }
    }

    #[test]
    fn square_reduction_round_trips(n in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_square_free(n, &mut rng);
        let delta = SquareReduction::new(SquareOracle);
        prop_assert_eq!(run_protocol(&delta, &g).output, g);
    }

    #[test]
    fn diameter_reduction_round_trips_on_anything(n in 2usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.5, &mut rng);
        let delta = DiameterReduction::new(DiameterOracle);
        prop_assert_eq!(run_protocol(&delta, &g).output.unwrap(), g);
    }

    #[test]
    fn triangle_reduction_round_trips(n in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_balanced_bipartite(n, 0.4, &mut rng);
        let delta = TriangleReduction::new(TriangleOracle);
        prop_assert_eq!(run_protocol(&delta, &g).output.unwrap(), g);
    }

    #[test]
    fn bipartite_connectivity_matches(n in 2usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_balanced_bipartite(n, 0.3, &mut rng);
        let delta = BipartiteConnectivityReduction::new(BipartitenessOracle);
        prop_assert_eq!(
            run_protocol(&delta, &g).output.unwrap(),
            algo::is_connected(&g)
        );
    }
}

// ---------------------------------------------------------------------------
// Extension-layer properties: the generalized diameter-t reduction
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generalized gadget's iff, over random graphs, pairs and
    /// thresholds simultaneously.
    #[test]
    fn diameter_t_gadget_iff(n in 2usize..11, seed in any::<u64>(), t in 3u32..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.35, &mut rng);
        for s in 1..=n as u32 {
            for u in (s + 1)..=n as u32 {
                let gadget = gadgets::diameter_t_gadget(&g, s, u, t);
                prop_assert_eq!(
                    algo::diameter_at_most(&gadget, t),
                    g.has_edge(s, u)
                );
            }
        }
    }

    /// Δ built from the diam≤t oracle reconstructs arbitrary graphs for
    /// every threshold.
    #[test]
    fn diameter_t_reduction_round_trip(n in 2usize..9, seed in any::<u64>(), t in 3u32..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.4, &mut rng);
        let delta = referee_reductions::DiameterTReduction::new(
            referee_reductions::DiameterTOracle { thresh: t }, t);
        prop_assert_eq!(run_protocol(&delta, &g).output.unwrap(), g);
    }
}

// ---------------------------------------------------------------------------
// OneRoundAsMultiRound equivalence: every one-round protocol this crate
// defines — oracles, sketches and reductions — rides the multi-round
// adapter without changing its answer.
// ---------------------------------------------------------------------------

use referee_graph::LabelledGraph;
use referee_protocol::combinators::OneRoundAsMultiRound;
use referee_protocol::multiround::run_multiround;
use referee_protocol::OneRoundProtocol;
use referee_reductions::collision::{DegreeSumSketch, ModularSumSketch};
use referee_reductions::diameter_t::DiameterTOracle;
use referee_reductions::oracle::InducedSquareOracle;
use referee_reductions::DiameterTReduction;

fn adapter_matches_native<P>(p: &P, g: &LabelledGraph)
where
    P: OneRoundProtocol + Sync,
    P::Output: PartialEq + std::fmt::Debug,
{
    let native = run_protocol(p, g).output;
    let (adapted, stats) = run_multiround(&OneRoundAsMultiRound(p), g, 4);
    assert_eq!(adapted.expect("adapter finishes in one step"), native, "{}", p.name());
    assert_eq!(stats.rounds, 1, "{}", p.name());
    assert_eq!(stats.max_link_bits, 0, "{}", p.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn oracles_and_sketches_ride_the_multiround_adapter_unchanged(
        n in 2usize..9,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.35, &mut rng);
        adapter_matches_native(&TriangleOracle, &g);
        adapter_matches_native(&SquareOracle, &g);
        adapter_matches_native(&InducedSquareOracle, &g);
        adapter_matches_native(&DiameterOracle, &g);
        adapter_matches_native(&BipartitenessOracle, &g);
        adapter_matches_native(&DiameterTOracle { thresh: 3 }, &g);
        adapter_matches_native(&DegreeSumSketch, &g);
        adapter_matches_native(&ModularSumSketch { bits: 2 }, &g);
    }

    #[test]
    fn reductions_ride_the_multiround_adapter_unchanged(
        n in 2usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.35, &mut rng);
        adapter_matches_native(&TriangleReduction::new(TriangleOracle), &g);
        adapter_matches_native(&SquareReduction::new(SquareOracle), &g);
        adapter_matches_native(&DiameterReduction::new(DiameterOracle), &g);
        adapter_matches_native(
            &DiameterTReduction::new(DiameterTOracle { thresh: 3 }, 3),
            &g,
        );
        adapter_matches_native(
            &BipartiteConnectivityReduction::new(BipartitenessOracle),
            &g,
        );
    }
}
